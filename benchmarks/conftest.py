"""Shared benchmark configuration.

Benchmarks run at reduced scale so a full ``pytest benchmarks/
--benchmark-only`` finishes on a laptop CPU. Environment knobs:

- ``REPRO_BENCH_SCALE``   corpus scale (default 0.05 ≈ 700 articles;
  the paper's crawl is scale 1.0 ≈ 14k articles)
- ``REPRO_BENCH_THETAS``  comma-separated sampling ratios (default 0.1,0.5,1.0;
  the paper sweeps 0.1..1.0)
- ``REPRO_BENCH_FOLDS``   CV folds actually run (default 1; paper runs 10)

Rendered tables for every reproduced figure/table are written to
``results/`` at the repo root.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.data import GeneratorConfig, PolitiFactGenerator

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
BENCH_THETAS = tuple(
    float(x) for x in os.environ.get("REPRO_BENCH_THETAS", "0.1,0.5,1.0").split(",")
)
BENCH_FOLDS = int(os.environ.get("REPRO_BENCH_FOLDS", "1"))
BENCH_SEED = 7

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def bench_dataset():
    """The corpus every benchmark evaluates on."""
    config = GeneratorConfig(scale=BENCH_SCALE, seed=BENCH_SEED)
    return PolitiFactGenerator(config).generate()


@pytest.fixture(scope="session")
def bench_split(bench_dataset):
    from repro.graph.sampling import tri_splits

    return next(
        tri_splits(
            sorted(bench_dataset.articles),
            sorted(bench_dataset.creators),
            sorted(bench_dataset.subjects),
            k=10,
            seed=0,
        )
    )


_SWEEP_CACHE = {}


@pytest.fixture(scope="session")
def bench_sweep(bench_dataset):
    """One θ-sweep over all six methods, shared by Figure 4 and Figure 5.

    Cached at session scope: the sweep is the expensive part; the two
    figures are different renderings of the same cells (exactly as in the
    paper, where one evaluation populates both figures).
    """
    if "sweep" not in _SWEEP_CACHE:
        from repro.experiments import default_methods, run_sweep

        _SWEEP_CACHE["sweep"] = run_sweep(
            bench_dataset,
            default_methods(fast=True),
            thetas=BENCH_THETAS,
            folds=BENCH_FOLDS,
            seed=0,
        )
    return _SWEEP_CACHE["sweep"]


def save_artifact(name: str, content: str) -> Path:
    """Write a rendered table/figure to results/<name>."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(content + "\n")
    return path


def save_bench_run(name: str, report: dict, config: dict = None,
                   series: dict = None):
    """Persist one benchmark both ways: artifact file + run record.

    Writes the historical ``results/<name>`` JSON snapshot *and* a
    ``kind="benchmark"`` :class:`repro.obs.RunRecord` in the run registry
    (``$REPRO_RUNS_DIR`` or ``results/runs``), so two benchmark runs can be
    regression-gated with ``repro obs diff``. Scalar metrics are lifted
    from the top level of ``report``; nested dicts stay artifact-only.
    Returns ``(artifact_path, run_record)``.
    """
    from repro.obs import RunRegistry

    path = save_artifact(name, json.dumps(report, indent=2))
    metrics = {
        key: float(value)
        for key, value in report.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    registry = RunRegistry(
        os.environ.get("REPRO_RUNS_DIR", "") or RESULTS_DIR / "runs"
    )
    slug = name.rsplit(".", 1)[0].lower()
    record = registry.record(
        kind="benchmark",
        config=dict(config or {}),
        metrics=metrics,
        series=series,
        run_id=registry.new_run_id(slug),
        notes=f"artifact {path.name}",
    )
    return path, record
