"""Ablation benchmark: neighbor aggregation (paper's mean vs attention).

The GDU pools neighbor states with an unweighted mean in the paper;
this bench compares that against the GAT-style attention extension
(``FakeDetectorConfig(aggregation="attention")``).
"""

from repro.core import FakeDetector, FakeDetectorConfig
from repro.metrics import BinaryMetrics

from conftest import save_artifact

BASE = dict(
    epochs=45, explicit_dim=80, vocab_size=2000, max_seq_len=20,
    embed_dim=12, rnn_hidden=16, latent_dim=12, gdu_hidden=24, seed=5,
)


def test_aggregation_ablation(bench_dataset, bench_split, benchmark):
    rows = {}

    def run_all():
        for kind in ("mean", "attention"):
            config = FakeDetectorConfig(**BASE, aggregation=kind)
            detector = FakeDetector(config).fit(bench_dataset, bench_split)

            def binary(entity_kind, store, test_ids):
                preds = detector.predict(entity_kind)
                labeled = [e for e in test_ids if store[e].label is not None]
                y_true = [store[e].label.binary for e in labeled]
                y_pred = [int(preds[e] >= 3) for e in labeled]
                return BinaryMetrics.compute(y_true, y_pred)

            rows[kind] = (
                binary("article", bench_dataset.articles, bench_split.articles.test),
                binary("creator", bench_dataset.creators, bench_split.creators.test),
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["Aggregation ablation (bi-class accuracy, held-out fold)"]
    lines.append(f"{'strategy':<12s} {'art-acc':>8s} {'art-f1':>8s} {'cre-acc':>8s}")
    for kind, (art, cre) in rows.items():
        lines.append(f"{kind:<12s} {art.accuracy:>8.3f} {art.f1:>8.3f} {cre.accuracy:>8.3f}")
    rendered = "\n".join(lines)
    save_artifact("ablation_aggregation.txt", rendered)
    print()
    print(rendered)

    for kind, (art, _) in rows.items():
        assert art.accuracy > 0.4, f"{kind} degenerate"
