"""Ablation benchmark: latent-feature encoder family (GRU vs RNN vs LSTM vs CNN).

The paper uses GRU cells for the latent branch (§4.1.2) and cites Kim's
sentence CNN as the inspiration for latent feature extraction; this bench
swaps the encoder while holding everything else fixed.
"""

from repro.core import FakeDetector, FakeDetectorConfig
from repro.metrics import BinaryMetrics

from conftest import save_artifact

BASE = dict(
    epochs=45, explicit_dim=80, vocab_size=2000, max_seq_len=20,
    embed_dim=12, rnn_hidden=16, latent_dim=12, gdu_hidden=24, seed=5,
)

ENCODERS = ("gru", "rnn", "lstm", "cnn")


def test_encoder_ablation(bench_dataset, bench_split, benchmark):
    rows = {}

    def run_all():
        for cell in ENCODERS:
            config = FakeDetectorConfig(**BASE, rnn_cell=cell)
            detector = FakeDetector(config).fit(bench_dataset, bench_split)
            preds = detector.predict("article")
            test = bench_split.articles.test
            y_true = [bench_dataset.articles[a].label.binary for a in test]
            y_pred = [int(preds[a] >= 3) for a in test]
            rows[cell] = BinaryMetrics.compute(y_true, y_pred)
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["Latent encoder ablation (bi-class article metrics, held-out fold)"]
    lines.append(f"{'encoder':<8s} {'acc':>7s} {'f1':>7s} {'prec':>7s} {'recall':>7s}")
    for cell, m in rows.items():
        lines.append(
            f"{cell:<8s} {m.accuracy:>7.3f} {m.f1:>7.3f} "
            f"{m.precision:>7.3f} {m.recall:>7.3f}"
        )
    rendered = "\n".join(lines)
    save_artifact("ablation_encoder.txt", rendered)
    print()
    print(rendered)

    for cell, m in rows.items():
        assert m.accuracy > 0.4, f"{cell} encoder degenerate: {m.accuracy}"
