"""Ablation benchmark: the GDU gates and graph diffusion.

DESIGN.md §5 calls out the gate structure and the diffusion wiring as the
design choices to ablate. Each variant trains on the same split; held-out
article/creator accuracy is reported and archived.
"""

import dataclasses

import numpy as np

from repro.core import FakeDetector, FakeDetectorConfig
from repro.metrics import BinaryMetrics

from conftest import save_artifact

BASE = dict(
    epochs=45, explicit_dim=80, vocab_size=2000, max_seq_len=20,
    embed_dim=12, rnn_hidden=16, latent_dim=12, gdu_hidden=24, seed=5,
)

VARIANTS = {
    "full": {},
    "no-forget-gate": {"use_forget_gate": False},
    "no-adjust-gate": {"use_adjust_gate": False},
    "no-selection-gates": {"use_selection_gates": False},
    "no-gates-at-all": {
        "use_forget_gate": False,
        "use_adjust_gate": False,
        "use_selection_gates": False,
    },
    "no-diffusion": {"use_diffusion": False},
    "1-diffusion-round": {"diffusion_iterations": 1},
    "3-diffusion-rounds": {"diffusion_iterations": 3},
}


def _binary_accuracy(detector, dataset, kind, store, test_ids):
    preds = detector.predict(kind)
    labeled = [e for e in test_ids if store[e].label is not None]
    y_true = [store[e].label.binary for e in labeled]
    y_pred = [int(preds[e] >= 3) for e in labeled]
    return BinaryMetrics.compute(y_true, y_pred).accuracy


def test_gdu_ablation(bench_dataset, bench_split, benchmark):
    rows = {}

    def run_all():
        for name, overrides in VARIANTS.items():
            config = FakeDetectorConfig(**{**BASE, **overrides})
            detector = FakeDetector(config).fit(bench_dataset, bench_split)
            rows[name] = (
                _binary_accuracy(
                    detector, bench_dataset, "article",
                    bench_dataset.articles, bench_split.articles.test,
                ),
                _binary_accuracy(
                    detector, bench_dataset, "creator",
                    bench_dataset.creators, bench_split.creators.test,
                ),
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["GDU / diffusion ablation (bi-class accuracy on held-out fold)"]
    lines.append(f"{'variant':<22s} {'article':>8s} {'creator':>8s}")
    for name, (art, cre) in rows.items():
        lines.append(f"{name:<22s} {art:>8.3f} {cre:>8.3f}")
    rendered = "\n".join(lines)
    save_artifact("ablation_gdu.txt", rendered)
    print()
    print(rendered)

    # Sanity: every variant trains to something non-degenerate.
    for name, (art, cre) in rows.items():
        assert 0.3 <= art <= 1.0, f"{name}: article acc {art}"

    # Diffusion must help creators (their text is weak, their graph strong).
    full_cre = rows["full"][1]
    no_diff_cre = rows["no-diffusion"][1]
    assert full_cre >= no_diff_cre - 0.05, (
        f"diffusion hurt creators: full={full_cre:.3f} no-diff={no_diff_cre:.3f}"
    )
