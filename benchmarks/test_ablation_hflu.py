"""Ablation benchmark: HFLU feature families (explicit vs latent).

The paper motivates the *hybrid* unit: explicit bag-of-words features carry
the Fig 1(b)/(c) word signal, the GRU latent features capture sequence
patterns. This bench trains explicit-only, latent-only and hybrid models on
the same split.
"""

from repro.core import FakeDetector, FakeDetectorConfig
from repro.metrics import BinaryMetrics

from conftest import save_artifact

BASE = dict(
    epochs=45, explicit_dim=80, vocab_size=2000, max_seq_len=20,
    embed_dim=12, rnn_hidden=16, latent_dim=12, gdu_hidden=24, seed=5,
)

VARIANTS = {
    "hybrid (full HFLU)": {},
    "explicit-only": {"use_latent_features": False},
    "latent-only": {"use_explicit_features": False},
}


def test_hflu_ablation(bench_dataset, bench_split, benchmark):
    rows = {}

    def run_all():
        for name, overrides in VARIANTS.items():
            config = FakeDetectorConfig(**{**BASE, **overrides})
            detector = FakeDetector(config).fit(bench_dataset, bench_split)
            preds = detector.predict("article")
            test = bench_split.articles.test
            y_true = [bench_dataset.articles[a].label.binary for a in test]
            y_pred = [int(preds[a] >= 3) for a in test]
            rows[name] = BinaryMetrics.compute(y_true, y_pred)
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["HFLU feature ablation (bi-class article metrics, held-out fold)"]
    lines.append(f"{'variant':<22s} {'acc':>7s} {'f1':>7s} {'prec':>7s} {'recall':>7s}")
    for name, m in rows.items():
        lines.append(
            f"{name:<22s} {m.accuracy:>7.3f} {m.f1:>7.3f} "
            f"{m.precision:>7.3f} {m.recall:>7.3f}"
        )
    rendered = "\n".join(lines)
    save_artifact("ablation_hflu.txt", rendered)
    print()
    print(rendered)

    for name, m in rows.items():
        assert m.accuracy > 0.4, f"{name} degenerate: {m.accuracy}"
