"""Micro-benchmarks of the computational substrate.

These time the primitives the full experiments are built from: the GDU
forward/backward pass, the GRU sequence encoder, graph aggregation, SGNS
steps and the linear SVM. Useful for spotting performance regressions in
the autodiff engine.
"""

import numpy as np
import pytest

from repro.autograd import GRUEncoder, Tensor
from repro.autograd import functional as F
from repro.autograd.sparse import gather_segment_mean
from repro.baselines import LinearSVM, NegativeSampler, SkipGramModel
from repro.core import GDU


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


class TestGDUBench:
    def test_gdu_forward(self, benchmark, rng):
        gdu = GDU(input_dim=96, hidden_dim=32, rng=rng)
        x = Tensor(rng.standard_normal((512, 96)))
        z = Tensor(rng.standard_normal((512, 32)))
        t = Tensor(rng.standard_normal((512, 32)))
        benchmark(lambda: gdu(x, z, t))

    def test_gdu_forward_backward(self, benchmark, rng):
        gdu = GDU(input_dim=96, hidden_dim=32, rng=rng)
        x = Tensor(rng.standard_normal((512, 96)))
        z = Tensor(rng.standard_normal((512, 32)))
        t = Tensor(rng.standard_normal((512, 32)))

        def step():
            gdu.zero_grad()
            (gdu(x, z, t) ** 2).sum().backward()

        benchmark(step)


class TestGRUBench:
    def test_gru_encode_batch(self, benchmark, rng):
        enc = GRUEncoder(vocab_size=2000, embed_dim=16, hidden_size=24, output_size=16, rng=rng)
        seqs = rng.integers(1, 2000, size=(256, 20))
        benchmark(lambda: enc(seqs))

    def test_gru_encode_backward(self, benchmark, rng):
        enc = GRUEncoder(vocab_size=2000, embed_dim=16, hidden_size=24, output_size=16, rng=rng)
        seqs = rng.integers(1, 2000, size=(128, 20))
        targets = rng.integers(0, 6, size=128)
        head = Tensor(rng.standard_normal((16, 6)))

        def step():
            enc.zero_grad()
            F.cross_entropy(enc(seqs) @ head, targets).backward()

        benchmark(step)


class TestGraphOpsBench:
    def test_gather_segment_mean(self, benchmark, rng):
        src = Tensor(rng.standard_normal((2000, 32)))
        gather = rng.integers(0, 2000, size=7000)
        seg = rng.integers(0, 1500, size=7000)
        benchmark(lambda: gather_segment_mean(src, gather, seg, 1500))


class TestBaselineBench:
    def test_sgns_epoch(self, benchmark, rng):
        model = SkipGramModel(num_nodes=1000, dim=32, seed=0)
        sampler = NegativeSampler(np.ones(1000))
        centers = rng.integers(0, 1000, size=20000)
        contexts = rng.integers(0, 1000, size=20000)
        benchmark.pedantic(
            lambda: model.train_pairs(centers, contexts, sampler, epochs=1),
            rounds=3, iterations=1,
        )

    def test_linear_svm_fit(self, benchmark, rng):
        features = rng.standard_normal((600, 80))
        labels = rng.integers(0, 6, size=600)
        benchmark.pedantic(
            lambda: LinearSVM(num_classes=6, epochs=100).fit(features, labels),
            rounds=3, iterations=1,
        )


class TestTrainingStepBench:
    def test_fakedetector_epoch(self, benchmark, bench_dataset, bench_split):
        """One full-batch training epoch of the complete model."""
        from repro.autograd import optim
        from repro.core import (
            FakeDetectorConfig,
            FakeDetectorModel,
            build_features,
            build_graph_index,
        )

        config = FakeDetectorConfig(
            epochs=1, explicit_dim=80, vocab_size=2000, max_seq_len=20,
            embed_dim=12, rnn_hidden=16, latent_dim=12, gdu_hidden=24,
        )
        features = build_features(
            bench_dataset,
            bench_split.articles.train,
            bench_split.creators.train,
            bench_split.subjects.train,
            explicit_dim=config.explicit_dim,
            vocab_size=config.vocab_size,
            max_seq_len=config.max_seq_len,
        )
        graph = build_graph_index(bench_dataset, features)
        model = FakeDetectorModel(
            config,
            rng=np.random.default_rng(0),
            explicit_dims={
                "article": features.articles.explicit.shape[1],
                "creator": features.creators.explicit.shape[1],
                "subject": features.subjects.explicit.shape[1],
            },
        )
        optimizer = optim.Adam(list(model.parameters()), lr=0.01)
        labels = features.articles.labels

        def epoch():
            logits = model(features, graph)
            loss = F.cross_entropy(logits["article"], labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()

        benchmark.pedantic(epoch, rounds=3, iterations=1)
