"""Convergence experiment: loss/accuracy vs training epochs.

Not a paper figure, but the standard sanity artifact for a training-system
reproduction: verifies the joint objective decreases monotonically-ish and
held-out accuracy saturates rather than diverging.
"""

import numpy as np

from repro.core import FakeDetector, FakeDetectorConfig

from conftest import save_artifact

CHECKPOINTS = (5, 15, 30, 60)


def test_convergence(bench_dataset, bench_split, benchmark):
    rows = []

    def run():
        for epochs in CHECKPOINTS:
            config = FakeDetectorConfig(
                epochs=epochs, explicit_dim=80, vocab_size=2000, max_seq_len=20,
                embed_dim=12, rnn_hidden=16, latent_dim=12, gdu_hidden=24, seed=3,
            )
            det = FakeDetector(config).fit(bench_dataset, bench_split)
            preds = det.predict("article")
            test = bench_split.articles.test
            acc = float(
                np.mean(
                    [
                        (bench_dataset.articles[a].label.binary) == int(preds[a] >= 3)
                        for a in test
                    ]
                )
            )
            rows.append((epochs, det.record.total[-1], acc))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Convergence: epochs vs train loss vs held-out bi-class accuracy"]
    lines.append(f"{'epochs':>7s} {'loss':>8s} {'test-acc':>9s}")
    for epochs, loss, acc in rows:
        lines.append(f"{epochs:>7d} {loss:>8.3f} {acc:>9.3f}")
    rendered = "\n".join(lines)
    save_artifact("convergence.txt", rendered)
    print()
    print(rendered)

    # Training loss must strictly decrease with budget.
    losses = [loss for _, loss, _ in rows]
    assert losses == sorted(losses, reverse=True), losses
    # Accuracy at the largest budget must beat the smallest budget's.
    assert rows[-1][2] >= rows[0][2] - 0.05


def test_minibatch_convergence(bench_dataset, bench_split, benchmark):
    """Minibatch training converges on the same corpus (scalability path)."""

    def run():
        config = FakeDetectorConfig(
            epochs=8, batch_size=128, explicit_dim=80, vocab_size=2000,
            max_seq_len=20, embed_dim=12, rnn_hidden=16, latent_dim=12,
            gdu_hidden=24, seed=3,
        )
        return FakeDetector(config).fit(bench_dataset, bench_split)

    det = benchmark.pedantic(run, rounds=1, iterations=1)
    assert det.record.total[-1] < det.record.total[0]
    save_artifact(
        "convergence_minibatch.txt",
        "Minibatch (batch=128) loss per epoch:\n"
        + "\n".join(f"  epoch {i + 1:2d}: {v:.4f}" for i, v in enumerate(det.record.total)),
    )
