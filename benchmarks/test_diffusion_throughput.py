"""Full-graph diffusion throughput: fused gdu_layer vs the unrolled GDU tape.

``BENCH_training`` times whole fits, where the HFLU recurrence dominates.
This benchmark isolates what PR 10 adds on top: the fused **GDU** kernel
(``repro.autograd.kernels.gdu_layer``) that collapses the ~25-node unrolled
gate/candidate/mixture subgraph into one tape node per GDU call, and the
**no-tape** forward mode used by the serving path. On the standard bench
corpus, with one trained checkpoint shared between modes, it measures:

- **full-graph pass** (gated): one ``forward_with_states`` over the entire
  News-HSN — the pass ``InferenceSession`` runs at startup and the one a
  dynamic-graph deployment re-runs on every update — fused vs unrolled.
  The two arms are timed interleaved (so machine-load spikes hit both) and
  the gated statistic is the **median of the pairwise per-iteration
  ratios**, which is robust to a single noisy iteration in a way
  best-of-N ratios are not; it must clear ``SPEEDUP_BUDGET``×;
- **diffusion tape nodes** (gated): op-profiler forward-call counts around
  ``model.diffuse`` alone (HFLU features precomputed off-tape), which must
  shrink by at least ``TAPE_REDUCTION_BUDGET``×;
- **training-shaped pass** (informational): forward + article
  cross-entropy + ``backward``, where the shared fused-GRU BPTT bounds the
  end-to-end win (that regime is gated by ``BENCH_training`` already);
- **no-tape forward** (informational): the same full-graph forward inside
  ``repro.autograd.no_tape``, the mode ``InferenceSession`` runs in.

Equivalence is asserted in-benchmark: both modes load the same state dict
and must produce logits within 1e-12 and the same article loss — a
speedup that moves the numbers would be a bug, not a win.

Writes ``results/BENCH_diffusion.json`` and a ``kind="benchmark"`` run
record so ``repro obs diff`` can regression-gate future kernel changes.
"""

from __future__ import annotations

import dataclasses
import os
import time

import numpy as np
import pytest

from conftest import BENCH_SEED, save_bench_run

from repro.autograd import Tensor, no_tape
from repro.autograd import functional as F
from repro.core import FakeDetector, FakeDetectorConfig
from repro.core.model import FakeDetectorModel
from repro.obs import OpProfiler

REPEATS = int(os.environ.get("REPRO_BENCH_DIFFUSION_REPEATS", "9"))
SPEEDUP_BUDGET = 2.0
TAPE_REDUCTION_BUDGET = 2.0
EPOCHS = 2


@pytest.fixture(scope="module")
def trained(bench_dataset, bench_split):
    """One short fit (fused) whose checkpoint both modes share.

    ``diffusion_iterations=4`` weights the pass toward the diffusion loop
    under measure (the paper sweeps the round count; the fixed HFLU encode
    is the same work in both arms and is gated by ``BENCH_training``).
    """
    config = FakeDetectorConfig(
        epochs=EPOCHS, explicit_dim=60, vocab_size=2000, max_seq_len=16,
        diffusion_iterations=4, seed=BENCH_SEED, fused_kernels=True,
    )
    return FakeDetector(config).fit(bench_dataset, bench_split)


def _clone_model(detector: FakeDetector, fused: bool) -> FakeDetectorModel:
    """A fresh model in the requested mode holding the trained weights."""
    config = dataclasses.replace(detector.config, fused_kernels=fused)
    explicit_dims = {
        "article": detector.features.articles.explicit.shape[1],
        "creator": detector.features.creators.explicit.shape[1],
        "subject": detector.features.subjects.explicit.shape[1],
    }
    model = FakeDetectorModel(
        config, rng=np.random.default_rng(config.seed),
        explicit_dims=explicit_dims,
    )
    model.load_state_dict(detector.model.state_dict())
    model.eval()
    return model


def _labeled_articles(detector: FakeDetector) -> np.ndarray:
    return np.flatnonzero(detector.features.articles.labels >= 0)


def _timed_forward(model, detector, untaped: bool = False):
    """One timed full-graph forward; returns (seconds, logits)."""
    start = time.perf_counter()
    if untaped:
        with no_tape():
            logits, _ = model.forward_with_states(
                detector.features, detector.graph
            )
    else:
        logits, _ = model.forward_with_states(detector.features, detector.graph)
    return time.perf_counter() - start, logits


def _best_forward_seconds(model, detector, untaped: bool = False):
    """Best-of-REPEATS full-graph forward; returns (seconds, logits)."""
    best, logits = np.inf, None
    for _ in range(REPEATS):
        seconds, logits = _timed_forward(model, detector, untaped)
        best = min(best, seconds)
    return best, logits


def _best_train_pass_seconds(model, detector, rows) -> float:
    """Best-of-REPEATS forward + article loss + backward (informational)."""
    labels = detector.features.articles.labels[rows]
    best = np.inf
    for _ in range(REPEATS):
        start = time.perf_counter()
        logits, _ = model.forward_with_states(detector.features, detector.graph)
        loss = F.cross_entropy(logits["article"][rows], labels)
        loss.backward()
        model.zero_grad()
        best = min(best, time.perf_counter() - start)
    return best


def _article_loss(detector, logits, rows) -> float:
    labels = detector.features.articles.labels[rows]
    return float(F.cross_entropy(Tensor(logits["article"].data[rows]), labels).data)


def _diffusion_tape_nodes(model, detector) -> float:
    """Forward tape-op invocations of the diffusion portion alone."""
    features, graph = detector.features, detector.graph
    with no_tape():
        x_n = model.hflu_article(features.articles.explicit, features.articles.sequences)
        x_u = model.hflu_creator(features.creators.explicit, features.creators.sequences)
        x_s = model.hflu_subject(features.subjects.explicit, features.subjects.sequences)
    x_n = Tensor(x_n.data, requires_grad=True)
    x_u = Tensor(x_u.data, requires_grad=True)
    x_s = Tensor(x_s.data, requires_grad=True)
    with OpProfiler() as profiler:
        model.diffuse(x_n, x_u, x_s, graph)
    return float(
        sum(entry["calls"] for entry in profiler.snapshot()["forward"].values())
    )


def test_diffusion_throughput(trained, bench_dataset):
    rows = _labeled_articles(trained)
    fused = _clone_model(trained, fused=True)
    unrolled = _clone_model(trained, fused=False)

    # Interleave the two arms so machine-load spikes hit both equally, and
    # warm each model (allocator, caches) before the timed repeats.
    _timed_forward(fused, trained)
    _timed_forward(unrolled, trained)
    fused_times, unrolled_times = [], []
    fused_logits = unrolled_logits = None
    for _ in range(REPEATS):
        seconds, fused_logits = _timed_forward(fused, trained)
        fused_times.append(seconds)
        seconds, unrolled_logits = _timed_forward(unrolled, trained)
        unrolled_times.append(seconds)
    fused_secs = float(np.median(fused_times))
    unrolled_secs = float(np.median(unrolled_times))
    speedup = float(np.median(np.array(unrolled_times) / np.array(fused_times)))

    # Equivalence: same checkpoint, same numbers, in every head.
    max_diff = 0.0
    for kind in fused_logits:
        diff = np.abs(fused_logits[kind].data - unrolled_logits[kind].data)
        max_diff = max(max_diff, float(diff.max()))
        np.testing.assert_allclose(
            fused_logits[kind].data, unrolled_logits[kind].data,
            rtol=0, atol=1e-12,
        )
    fused_loss = _article_loss(trained, fused_logits, rows)
    unrolled_loss = _article_loss(trained, unrolled_logits, rows)
    np.testing.assert_allclose(fused_loss, unrolled_loss, rtol=1e-12, atol=0)

    fused_nodes = _diffusion_tape_nodes(fused, trained)
    unrolled_nodes = _diffusion_tape_nodes(unrolled, trained)
    reduction = unrolled_nodes / max(1.0, fused_nodes)

    notape_secs, _ = _best_forward_seconds(fused, trained, untaped=True)
    fused_train_secs = _best_train_pass_seconds(fused, trained, rows)
    unrolled_train_secs = _best_train_pass_seconds(unrolled, trained, rows)

    report = {
        "repeats": REPEATS,
        "timing_statistic": "median of interleaved pairwise ratios",
        "num_articles": bench_dataset.num_articles,
        "diffusion_iterations": trained.config.diffusion_iterations,
        "fused_pass_seconds": fused_secs,
        "unrolled_pass_seconds": unrolled_secs,
        "speedup": speedup,
        "speedup_budget": SPEEDUP_BUDGET,
        "fused_diffusion_tape_nodes": fused_nodes,
        "unrolled_diffusion_tape_nodes": unrolled_nodes,
        "diffusion_tape_node_reduction": reduction,
        "tape_reduction_budget": TAPE_REDUCTION_BUDGET,
        "no_tape_pass_seconds": notape_secs,
        "fused_train_pass_seconds": fused_train_secs,
        "unrolled_train_pass_seconds": unrolled_train_secs,
        "train_pass_speedup": unrolled_train_secs / fused_train_secs,
        "loss_fused": fused_loss,
        "loss_unrolled": unrolled_loss,
        "logits_max_abs_diff": max_diff,
        "losses_equivalent": True,
    }
    save_bench_run(
        "BENCH_diffusion.json",
        report,
        config={
            "epochs": EPOCHS, "seed": BENCH_SEED, "max_seq_len": 16,
            "explicit_dim": 60, "vocab_size": 2000,
        },
    )

    assert reduction >= TAPE_REDUCTION_BUDGET, report
    assert speedup >= SPEEDUP_BUDGET, report
