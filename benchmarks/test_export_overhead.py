"""Exporter and memory-profiler overhead on a real training run.

The continuous-observability layer adds two always-on candidates whose cost
must be budgeted before anyone leaves them enabled in production runs:

- **exporter**: ``FakeDetector.fit`` while a :class:`PeriodicExporter`
  flushes the global registry to a Prometheus textfile every 250 ms — the
  scrape path runs off-thread, so the budget is <10% over baseline;
- **memory**: fit under a running :class:`MemoryProfiler` — every tape op
  pays a dict upsert plus a ``weakref.finalize`` registration, real work
  budgeted at <60% (the documented cost of turning ``--profile-memory`` on;
  it is a diagnosis tool, not an always-on default).

Timings take the min over ``REPRO_BENCH_EXPORT_REPEATS`` runs (default 3).
Writes ``results/BENCH_export.json`` through the run registry, so two
benchmark runs are diffable with ``repro obs diff``.
"""

from __future__ import annotations

import os
import time

from conftest import BENCH_SEED, save_bench_run

from repro.core import FakeDetector, FakeDetectorConfig
from repro.obs import MemoryProfiler, PeriodicExporter, get_registry

REPEATS = int(os.environ.get("REPRO_BENCH_EXPORT_REPEATS", "3"))
EXPORTER_BUDGET = 1.10   # off-thread flushing: <10% over baseline
MEMORY_BUDGET = 1.60     # per-op accounting + weakrefs: <60% (opt-in tool)
EXPORT_INTERVAL = 0.25


def _fit_seconds(bench_dataset, bench_split) -> float:
    config = FakeDetectorConfig(
        epochs=4, explicit_dim=60, vocab_size=2000, max_seq_len=16,
        seed=BENCH_SEED, log_every=0,
    )
    detector = FakeDetector(config)
    start = time.perf_counter()
    detector.fit(bench_dataset, bench_split)
    return time.perf_counter() - start


def test_export_overhead(bench_dataset, bench_split, tmp_path):
    baseline_runs, exporter_runs, memory_runs = [], [], []
    flushes = 0
    peak_live_mib = 0.0
    # Interleaved legs, as in the other overhead benches: machine-wide
    # drift biases all three equally; min-of-repeats drops noisy runs.
    for i in range(REPEATS):
        baseline_runs.append(_fit_seconds(bench_dataset, bench_split))

        exporter = PeriodicExporter(
            get_registry(), tmp_path / f"bench_{i}.prom",
            interval=EXPORT_INTERVAL,
        )
        with exporter:
            exporter_runs.append(_fit_seconds(bench_dataset, bench_split))
        flushes = exporter.flushes

        with MemoryProfiler() as profiler:
            memory_runs.append(_fit_seconds(bench_dataset, bench_split))
        peak_live_mib = profiler.peak_live_bytes / (1024.0 * 1024.0)

    baseline = min(baseline_runs)
    exporter_s = min(exporter_runs)
    memory_s = min(memory_runs)

    report = {
        "repeats": REPEATS,
        "fit_epochs": 4,
        "export_interval_seconds": EXPORT_INTERVAL,
        "baseline_seconds": baseline,
        "exporter_seconds": exporter_s,
        "memory_seconds": memory_s,
        "exporter_ratio": exporter_s / baseline,
        "memory_ratio": memory_s / baseline,
        "exporter_budget": EXPORTER_BUDGET,
        "memory_budget": MEMORY_BUDGET,
        "exporter_flushes_last_run": flushes,
        "peak_live_mib_last_run": peak_live_mib,
    }
    save_bench_run("BENCH_export.json", report)

    assert exporter_s / baseline < EXPORTER_BUDGET, report
    assert memory_s / baseline < MEMORY_BUDGET, report
    assert peak_live_mib > 0.0, report
