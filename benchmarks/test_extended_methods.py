"""Benchmark: extension baselines (node2vec, GCN) vs the paper's six methods.

One θ=0.5 cell over all eight methods, as a quick league table; the full
figures use the paper's original method set.
"""

import numpy as np

from repro.experiments import extended_methods
from repro.graph.sampling import tri_splits

from conftest import save_artifact


def test_extended_method_league(bench_dataset, benchmark):
    split = next(
        tri_splits(
            sorted(bench_dataset.articles), sorted(bench_dataset.creators),
            sorted(bench_dataset.subjects), k=10, seed=0,
        )
    )
    rng = np.random.default_rng(0)
    sub = split.subsample_train(0.5, rng)
    rows = {}

    def run():
        for name, factory in extended_methods(fast=True).items():
            model = factory(0)
            model.fit(bench_dataset, sub)
            preds = model.predict("article")
            test = split.articles.test
            acc = float(
                np.mean(
                    [
                        (bench_dataset.articles[a].label.binary) == int(preds[a] >= 3)
                        for a in test
                    ]
                )
            )
            rows[name] = acc
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Extended method league (bi-class article accuracy, θ=0.5, 1 fold)"]
    for name, acc in sorted(rows.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:<13s} {acc:.3f}")
    rendered = "\n".join(lines)
    save_artifact("extended_methods.txt", rendered)
    print()
    print(rendered)

    assert set(rows) >= {"FakeDetector", "node2vec", "gcn"}
    for name, acc in rows.items():
        assert 0.3 <= acc <= 1.0, (name, acc)
