"""Benchmark + reproduction of Figure 1: dataset statistical analysis.

Each panel of the paper's Figure 1 is regenerated and its qualitative claim
checked:

- 1(a) creator publication counts follow a power law; Obama most prolific
- 1(b)/(c) distinct frequent-word profiles for true vs false articles
- 1(d) top-20 subject table; health leans false relative to economy
- 1(e)/(f) the four case-study creators match their reported label mixes
"""

import pytest

from repro.data.analysis import (
    creator_case_study,
    creator_publication_distribution,
    distinctive_words,
    frequent_words,
    most_prolific_creator,
    subject_credibility_table,
)
from repro.experiments import figure1

from conftest import save_artifact


def test_figure1_analysis_benchmark(bench_dataset, benchmark):
    """Time the full Section-3 analysis pass."""

    def analyze():
        creator_publication_distribution(bench_dataset)
        frequent_words(bench_dataset, top_k=20)
        subject_credibility_table(bench_dataset, top_k=20)
        creator_case_study(bench_dataset)

    benchmark(analyze)


def test_figure1a_power_law(bench_dataset, benchmark):
    fit = benchmark(lambda: creator_publication_distribution(bench_dataset))
    assert fit.is_power_law_like, f"exponent={fit.exponent:.2f} r2={fit.r_squared:.2f}"
    name, count = most_prolific_creator(bench_dataset)
    assert name == "Barack Obama"
    # Paper: Obama ~599 at scale 1.0 -> proportional at bench scale.
    assert count == pytest.approx(599 * bench_dataset.num_articles / 14055, rel=0.3)


def test_figure1bc_word_profiles(bench_dataset, benchmark):
    words = benchmark(lambda: frequent_words(bench_dataset, top_k=30))
    distinct = distinctive_words(bench_dataset, top_k=10)
    assert len(words["true"]) == 30 and len(words["false"]) == 30
    # The two classes must have genuinely distinctive vocabulary.
    assert len(distinct["true"]) >= 5
    assert len(distinct["false"]) >= 5
    assert not (set(distinct["true"]) & set(distinct["false"]))


def test_figure1d_subject_skew(bench_dataset, benchmark):
    rows = {r.name: r for r in benchmark(lambda: subject_credibility_table(bench_dataset, top_k=20))}
    # "health" has the largest article count (paper: 1,572 of 14,055).
    ordered = subject_credibility_table(bench_dataset, top_k=20)
    assert ordered[0].name == "health"
    # Health leans false relative to economy (paper: 46.5% vs 63.2% true).
    assert rows["health"].true_fraction < rows["economy"].true_fraction


def test_figure1ef_case_studies(bench_dataset, benchmark):
    studies = {s.name: s for s in benchmark(lambda: creator_case_study(bench_dataset))}
    assert studies["Donald Trump"].true_fraction == pytest.approx(0.31, abs=0.1)
    assert studies["Barack Obama"].true_fraction == pytest.approx(0.75, abs=0.1)
    assert studies["Hillary Clinton"].true_fraction == pytest.approx(0.73, abs=0.12)
    assert studies["Barack Obama"].total > studies["Mike Pence"].total


def test_figure1_artifact(bench_dataset, benchmark):
    rendered = benchmark(lambda: figure1(bench_dataset))
    save_artifact("figure1.txt", rendered)
    print()
    print(rendered)
