"""Benchmark + reproduction of Figure 4: bi-class credibility inference.

Runs the paper's θ-sweep (all six methods × articles/creators/subjects ×
Accuracy/F1/Precision/Recall) at benchmark scale and checks the headline
qualitative claims of §5.2.1. The absolute numbers differ from the paper
(synthetic corpus, reduced scale/folds); the *ordering* claims are asserted.
"""

import numpy as np

from repro.experiments import check_paper_claims, figure4, render_claims, render_timings

from conftest import BENCH_FOLDS, BENCH_THETAS, save_artifact


def test_sweep_benchmark(bench_dataset, benchmark):
    """Time one full evaluation cell: FakeDetector fit+predict at θ=0.5."""
    from repro.experiments import default_methods
    from repro.graph.sampling import tri_splits

    split = next(
        tri_splits(
            sorted(bench_dataset.articles),
            sorted(bench_dataset.creators),
            sorted(bench_dataset.subjects),
            k=10,
            seed=0,
        )
    )
    rng = np.random.default_rng(0)
    sub = split.subsample_train(0.5, rng)
    factory = default_methods(fast=True)["FakeDetector"]

    def fit_predict():
        model = factory(0)
        model.fit(bench_dataset, sub)
        return model.predict("article")

    preds = benchmark.pedantic(fit_predict, rounds=1, iterations=1)
    assert len(preds) == bench_dataset.num_articles


def test_figure4_reproduction(bench_sweep, benchmark):
    rendered = benchmark(lambda: figure4(bench_sweep))
    checks = check_paper_claims(bench_sweep)
    claims_text = render_claims(checks)
    header = (
        f"Figure 4 reproduction — thetas={BENCH_THETAS}, folds={BENCH_FOLDS}\n"
        "(paper: Figures 4(a)-4(l), 10 thetas, 10-fold CV)\n\n"
    )
    timing_text = render_timings(bench_sweep)
    save_artifact(
        "figure4.txt", header + rendered + "\n\n" + claims_text + "\n\n" + timing_text
    )
    print()
    print(header + rendered)
    print()
    print(claims_text)

    # Headline §5.2.1 claims at this scale:
    # FakeDetector has the best θ-averaged bi-class accuracy AND F1 on
    # articles (the paper's primary node type).
    fd_acc = bench_sweep.mean_metric("FakeDetector", "article", "accuracy", "binary")
    best_other_acc = max(
        bench_sweep.mean_metric(m, "article", "accuracy", "binary")
        for m in bench_sweep.methods
        if m != "FakeDetector"
    )
    assert fd_acc >= best_other_acc - 0.03, (
        f"FakeDetector bi-class article accuracy {fd_acc:.3f} not competitive "
        f"with best baseline {best_other_acc:.3f}"
    )

    # Every method is in a sane range (no degenerate evaluation).
    for method in bench_sweep.methods:
        acc = bench_sweep.mean_metric(method, "article", "accuracy", "binary")
        assert 0.3 <= acc <= 1.0, f"{method} article accuracy {acc}"
