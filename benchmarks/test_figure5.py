"""Benchmark + reproduction of Figure 5: multi-class (6-way) inference.

Same sweep as Figure 4 (one evaluation populates both figures, as in the
paper); this module renders the multi-class panels and asserts §5.2.2's
qualitative claims: the 6-class problem is much harder than the bi-class
one, and FakeDetector's margin is visible there too.
"""

from repro.experiments import figure5

from conftest import BENCH_FOLDS, BENCH_THETAS, save_artifact


def test_figure5_render_benchmark(bench_sweep, benchmark):
    rendered = benchmark(lambda: figure5(bench_sweep))
    assert "Figure 5(l)" in rendered


def test_figure5_reproduction(bench_sweep, benchmark):
    rendered = benchmark(lambda: figure5(bench_sweep))
    header = (
        f"Figure 5 reproduction — thetas={BENCH_THETAS}, folds={BENCH_FOLDS}\n"
        "(paper: Figures 5(a)-5(l), 10 thetas, 10-fold CV)\n\n"
    )
    save_artifact("figure5.txt", header + rendered)
    print()
    print(header + rendered)

    # §5.2.2: multi-class inference is much more difficult — every method's
    # 6-class article accuracy is below its bi-class accuracy.
    for method in bench_sweep.methods:
        bi = bench_sweep.mean_metric(method, "article", "accuracy", "binary")
        multi = bench_sweep.mean_metric(method, "article", "accuracy", "multi")
        assert multi < bi, f"{method}: multi {multi:.3f} !< bi {bi:.3f}"

    # FakeDetector is competitive on 6-class article accuracy: above the
    # median baseline and within 0.08 of the best one. (The paper reports a
    # >40% relative margin at θ=0.1; at our reduced scale the score-rounding
    # lp baseline benefits from the ordinal label structure — see
    # EXPERIMENTS.md "known deviations".)
    fd = bench_sweep.mean_metric("FakeDetector", "article", "accuracy", "multi")
    others = sorted(
        bench_sweep.mean_metric(m, "article", "accuracy", "multi")
        for m in bench_sweep.methods
        if m != "FakeDetector"
    )
    median_other = others[len(others) // 2]
    assert fd >= median_other, (
        f"FakeDetector multi-class article accuracy {fd:.3f} below the "
        f"median baseline {median_other:.3f}"
    )
    assert fd >= others[-1] - 0.08, (
        f"FakeDetector multi-class article accuracy {fd:.3f} vs best baseline "
        f"{others[-1]:.3f}"
    )

    # Multi-class accuracy lands in the paper's reported band (paper: ~0.10
    # to ~0.30 for articles across methods/θ; allow slack for scale).
    assert 0.05 <= fd <= 0.7
