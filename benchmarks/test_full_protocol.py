"""The paper's complete protocol — opt-in (hours of CPU, not for CI).

Runs all ten θ values over the full method set, optionally with multiple
folds and a larger corpus. Enable with::

    REPRO_FULL_PROTOCOL=1 [REPRO_BENCH_SCALE=0.2 REPRO_BENCH_FOLDS=3] \
        pytest benchmarks/test_full_protocol.py --benchmark-only -s

Artifacts land in ``results/full_figure4.txt`` / ``full_figure5.txt`` plus
an archived sweep for later analysis.
"""

import os

import pytest

from repro.experiments import (
    PAPER_THETAS,
    check_paper_claims,
    default_methods,
    figure4,
    figure5,
    render_claims,
    run_sweep,
    save_sweep,
)

from conftest import BENCH_FOLDS, RESULTS_DIR, save_artifact

FULL = os.environ.get("REPRO_FULL_PROTOCOL", "0") == "1"


@pytest.mark.skipif(not FULL, reason="set REPRO_FULL_PROTOCOL=1 to run")
def test_full_theta_protocol(bench_dataset, benchmark):
    result = benchmark.pedantic(
        lambda: run_sweep(
            bench_dataset,
            default_methods(fast=True),
            thetas=PAPER_THETAS,
            folds=BENCH_FOLDS,
            seed=0,
            verbose=True,
        ),
        rounds=1,
        iterations=1,
    )
    save_artifact("full_figure4.txt", figure4(result))
    save_artifact("full_figure5.txt", figure5(result))
    claims = render_claims(check_paper_claims(result))
    save_artifact("full_claims.txt", claims)
    RESULTS_DIR.mkdir(exist_ok=True)
    save_sweep(result, RESULTS_DIR / "full_sweep.json")
    print()
    print(claims)
    assert result.thetas == list(PAPER_THETAS)
