"""Analyzer runtime: the full four-pass lint over the real source tree.

The whole-program passes (architecture, concurrency, shapes) share one
:class:`~repro.analysis.ProgramIndex` build, so the budget covers parse +
index + all four rule families end to end. The analyzer gates commits
(``tests/test_lint_clean.py``), so it must stay interactive-fast: the
budget is 5 seconds for the whole of ``src/repro``.

Timings take the min over ``REPRO_BENCH_LINT_REPEATS`` runs (default 3).
Writes ``results/BENCH_lint.json``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from conftest import save_bench_run

from repro.analysis import lint_paths

pytestmark = pytest.mark.analysis

REPEATS = int(os.environ.get("REPRO_BENCH_LINT_REPEATS", "3"))
BUDGET_SECONDS = 5.0

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def _run(passes=None):
    start = time.perf_counter()
    result = lint_paths([SRC], passes=passes)
    return time.perf_counter() - start, result


def test_lint_runtime_budget():
    full_runs, file_runs, program_runs = [], [], []
    result = None
    for _ in range(REPEATS):
        seconds, result = _run()
        full_runs.append(seconds)
        file_runs.append(_run(passes=["file"])[0])
        program_runs.append(_run(passes=["arch", "concurrency", "shapes"])[0])
    full = min(full_runs)
    file_only = min(file_runs)
    program_only = min(program_runs)

    report = {
        "files_checked": result.files_checked,
        "passes": list(result.passes_run),
        "full_seconds": full,
        "file_pass_seconds": file_only,
        "program_passes_seconds": program_only,
        "budget_seconds": BUDGET_SECONDS,
        "findings": len(result.findings),
        "suppressed": len(result.suppressed),
    }
    save_bench_run(
        "BENCH_lint.json",
        report,
        config={"repeats": REPEATS, "target": str(SRC)},
    )

    assert result.files_checked > 50
    assert full <= BUDGET_SECONDS, (
        f"four-pass lint took {full:.2f}s over {result.files_checked} files "
        f"(budget {BUDGET_SECONDS}s)"
    )
