"""Observability overhead: instrumented fit() vs the obs-off fast path.

The ``repro.obs`` instrumentation is permanently woven into the hot paths
(trainer epochs/steps, every autograd op); when no tracer or profiler is
installed each touch point is one global read plus an ``is None`` test.
This benchmark quantifies that claim on a real training run:

- **baseline**: ``FakeDetector.fit`` with no tracer and no profiler — the
  fast path every non-observed run takes;
- **disabled**: identical (the obs-off path *is* the baseline; measured
  twice to bound timing noise — the acceptance bar is <2% regression);
- **enabled**: fit under an installed :class:`Tracer` *and* a running
  :class:`OpProfiler` — the full-cost path, budgeted at <10%.

Timings take the min over ``REPRO_BENCH_OBS_REPEATS`` runs (default 3) so
one scheduler hiccup cannot fail the bar. Writes ``results/BENCH_obs.json``.
"""

from __future__ import annotations

import os
import time

from conftest import BENCH_SEED, save_bench_run

from repro.core import FakeDetector, FakeDetectorConfig
from repro.obs import OpProfiler, Tracer, install_tracer, uninstall_tracer

REPEATS = int(os.environ.get("REPRO_BENCH_OBS_REPEATS", "3"))
DISABLED_BUDGET = 1.02   # obs-off regression vs baseline: <2%
ENABLED_BUDGET = 1.10    # tracer + profiler installed: <10%


def _fit_seconds(bench_dataset, bench_split) -> float:
    config = FakeDetectorConfig(
        epochs=4, explicit_dim=60, vocab_size=2000, max_seq_len=16,
        seed=BENCH_SEED,
    )
    detector = FakeDetector(config)
    start = time.perf_counter()
    detector.fit(bench_dataset, bench_split)
    return time.perf_counter() - start


def test_obs_overhead(bench_dataset, bench_split, tmp_path):
    uninstall_tracer()  # belt and braces: start from the fast path

    baseline = min(_fit_seconds(bench_dataset, bench_split) for _ in range(REPEATS))
    disabled = min(_fit_seconds(bench_dataset, bench_split) for _ in range(REPEATS))

    enabled_times = []
    op_calls = 0.0
    for i in range(REPEATS):
        tracer = install_tracer(Tracer(tmp_path / f"bench_trace_{i}.jsonl"))
        profiler = OpProfiler().start()
        try:
            enabled_times.append(_fit_seconds(bench_dataset, bench_split))
        finally:
            profiler.stop()
            uninstall_tracer()
            tracer.close()
        snap = profiler.snapshot()
        op_calls = sum(
            entry["calls"] for phase in snap.values() for entry in phase.values()
        )
    enabled = min(enabled_times)

    report = {
        "repeats": REPEATS,
        "fit_epochs": 4,
        "baseline_seconds": baseline,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "disabled_ratio": disabled / baseline,
        "enabled_ratio": enabled / baseline,
        "disabled_budget": DISABLED_BUDGET,
        "enabled_budget": ENABLED_BUDGET,
        "profiled_op_calls_per_fit": op_calls,
    }
    save_bench_run("BENCH_obs.json", report)

    assert disabled / baseline < DISABLED_BUDGET, report
    assert enabled / baseline < ENABLED_BUDGET, report
