"""Sampling-profiler overhead on the training and warm serve paths.

The continuous profiler costs in two places: the sampler thread walks
``sys._current_frames()`` at the configured rate (a per-*process* cost,
independent of work done), and the op tag hook brackets every instrumented
autograd op with a push/pop pair so samples carry op ancestry (a per-*op*
cost paid only while a profiler runs). This benchmark measures both ends
to end at the default 100 Hz:

- **train**: an identical ``FakeDetector.fit`` with and without an armed
  :class:`repro.obs.SamplingProfiler` — budget ≤ 1.05×;
- **serve**: the same 2-worker sharded pool with and without
  ``profile_hz=100`` (sampler threads in the front-end and every worker),
  compared on per-request p95 latency — budget ≤ 1.08×.

Both take the min over ``REPRO_BENCH_PROFILE_REPEATS`` passes (default 3)
and write ``results/BENCH_profile.json``.
"""

from __future__ import annotations

import math
import os
import time

from conftest import BENCH_SEED, save_bench_run

from repro.core import FakeDetector, FakeDetectorConfig
from repro.obs import SamplingProfiler
from repro.serve import PredictionService, PredictRequest

REPEATS = int(os.environ.get("REPRO_BENCH_PROFILE_REPEATS", "3"))
REQUESTS_PER_PASS = 40
PROFILE_HZ = 100.0
TRAIN_BUDGET = 1.05      # profiled fit wall time vs unprofiled
SERVE_P95_BUDGET = 1.08  # profiled pool p95 latency vs unprofiled


def _config() -> FakeDetectorConfig:
    return FakeDetectorConfig(
        epochs=3, explicit_dim=60, vocab_size=2000, max_seq_len=16,
        seed=BENCH_SEED,
    )


def _fit_seconds(dataset, split, profiled: bool) -> float:
    profiler = SamplingProfiler(interval=1.0 / PROFILE_HZ) if profiled else None
    if profiler is not None:
        profiler.start()
    try:
        start = time.perf_counter()
        FakeDetector(_config()).fit(dataset, split)
        return time.perf_counter() - start
    finally:
        if profiler is not None:
            profiler.stop()


def _requests(dataset, count):
    articles = list(dataset.articles.values())
    docs = []
    for i in range(count):
        article = articles[i % len(articles)]
        docs.append(PredictRequest.from_dict({
            "schema": "repro.serve.request/1",
            "articles": [{
                "article_id": f"bench_{i}",
                "text": article.text,
                "creator_id": article.creator_id,
                "subject_ids": list(article.subject_ids),
            }],
        }))
    return docs


def _p95(latencies) -> float:
    ranked = sorted(latencies)
    return ranked[min(len(ranked) - 1, math.ceil(0.95 * len(ranked)) - 1)]


def _pass_p95(service, requests) -> float:
    latencies = []
    for request in requests:
        start = time.perf_counter()
        service.predict(request)
        latencies.append(time.perf_counter() - start)
    return _p95(latencies)


def _min_p95(service, requests) -> float:
    service.predict(requests[0])   # warm the pool
    return min(_pass_p95(service, requests) for _ in range(REPEATS))


def test_profile_overhead(bench_dataset, bench_split, tmp_path):
    # -- training step budget ------------------------------------------
    baseline_fit = min(
        _fit_seconds(bench_dataset, bench_split, profiled=False)
        for _ in range(REPEATS)
    )
    profiled_fit = min(
        _fit_seconds(bench_dataset, bench_split, profiled=True)
        for _ in range(REPEATS)
    )
    train_ratio = profiled_fit / baseline_fit

    # -- serving p95 budget --------------------------------------------
    detector = FakeDetector(_config()).fit(bench_dataset, bench_split)
    checkpoint = tmp_path / "ckpt"
    detector.save(checkpoint)
    requests = _requests(bench_dataset, REQUESTS_PER_PASS)
    pool = dict(workers=2, shards=2, max_wait=0.001)

    with PredictionService(checkpoint, **pool) as service:
        baseline_p95 = _min_p95(service, requests)

    with PredictionService(
        checkpoint, **pool, profile_hz=PROFILE_HZ
    ) as service:
        profiled_p95 = _min_p95(service, requests)
        # The armed pool actually sampled: a window capture over the
        # profiled traffic comes back non-empty from every process.
        profile = service.capture_profile(0.2)
        sampled_parts = sorted(profile.meta["parts"])
    serve_ratio = profiled_p95 / baseline_p95

    report = {
        "repeats": REPEATS,
        "profile_hz": PROFILE_HZ,
        "train_baseline_seconds": baseline_fit,
        "train_profiled_seconds": profiled_fit,
        "train_overhead_ratio": train_ratio,
        "train_overhead_budget": TRAIN_BUDGET,
        "requests_per_pass": REQUESTS_PER_PASS,
        "serve_baseline_p95_ms": 1e3 * baseline_p95,
        "serve_profiled_p95_ms": 1e3 * profiled_p95,
        "serve_p95_overhead_ratio": serve_ratio,
        "serve_p95_overhead_budget": SERVE_P95_BUDGET,
        "sampled_parts": sampled_parts,
    }
    save_bench_run("BENCH_profile.json", report)

    assert sampled_parts == [
        "frontend", "shard0;worker0", "shard1;worker1"
    ], report
    assert train_ratio < TRAIN_BUDGET, report
    assert serve_ratio < SERVE_P95_BUDGET, report
