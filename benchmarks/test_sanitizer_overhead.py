"""Tape-sanitizer overhead: sanitized fit() vs the check-hook-off fast path.

The sanitizer's touch point is woven into every autograd op alongside the
profiler hook; with no sanitizer running each op pays one extra global read
plus an ``is None`` test. With a :class:`~repro.analysis.Sanitizer` active,
every forward output and backward gradient is NaN-scanned and every
distinct closure-captured array is checksummed at capture and re-verified
at each step boundary — real work, budgeted rather than free:

- **baseline**: ``FakeDetector.fit`` with no check hook installed;
- **disabled**: identical (measured twice to bound noise) — budget <2%;
- **enabled**: ``fit(..., sanitize=True)`` — budget <25%.

Timings take the min over ``REPRO_BENCH_ANALYSIS_REPEATS`` runs (default 3).
Writes ``results/BENCH_analysis.json``.
"""

from __future__ import annotations

import os
import time

from conftest import BENCH_SEED, save_bench_run

from repro.autograd.tensor import set_check_hook
from repro.core import FakeDetector, FakeDetectorConfig

REPEATS = int(os.environ.get("REPRO_BENCH_ANALYSIS_REPEATS", "3"))
DISABLED_BUDGET = 1.02   # sanitizer-off regression vs baseline: <2%
ENABLED_BUDGET = 1.25    # NaN scans + mutation checksums on every op: <25%


def _fit(bench_dataset, bench_split, sanitize: bool):
    config = FakeDetectorConfig(
        epochs=4, explicit_dim=60, vocab_size=2000, max_seq_len=16,
        seed=BENCH_SEED, log_every=0,
    )
    detector = FakeDetector(config)
    start = time.perf_counter()
    detector.fit(bench_dataset, bench_split, sanitize=sanitize)
    return time.perf_counter() - start, detector


def test_sanitizer_overhead(bench_dataset, bench_split):
    set_check_hook(None)  # belt and braces: start from the fast path

    # Interleave the three legs within each repeat so slow machine-wide
    # drift (thermal, co-tenant load) biases every leg equally instead of
    # whichever batch ran last; min-of-repeats then drops the noisy runs.
    baseline_runs, disabled_runs, enabled_runs = [], [], []
    sanitizer_stats = None
    for _ in range(REPEATS):
        baseline_runs.append(_fit(bench_dataset, bench_split, sanitize=False)[0])
        disabled_runs.append(_fit(bench_dataset, bench_split, sanitize=False)[0])
        seconds, detector = _fit(bench_dataset, bench_split, sanitize=True)
        enabled_runs.append(seconds)
        sanitizer_stats = detector.sanitizer_stats  # work counters for the report
    baseline = min(baseline_runs)
    disabled = min(disabled_runs)
    enabled = min(enabled_runs)

    report = {
        "repeats": REPEATS,
        "fit_epochs": 4,
        "baseline_seconds": baseline,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "disabled_ratio": disabled / baseline,
        "enabled_ratio": enabled / baseline,
        "disabled_budget": DISABLED_BUDGET,
        "enabled_budget": ENABLED_BUDGET,
        "sanitizer_stats_per_fit": sanitizer_stats,
    }
    save_bench_run("BENCH_analysis.json", report)

    assert disabled / baseline < DISABLED_BUDGET, report
    assert enabled / baseline < ENABLED_BUDGET, report
