"""Scaling benchmark: cost of generation and one training epoch vs corpus size.

Quantifies how far the pure-numpy substrate can push toward the paper's full
14k-article corpus, and verifies time grows roughly linearly in corpus size
(the design intent of the edge-list aggregation in repro.autograd.sparse).
"""

import time

import numpy as np

from repro.autograd import functional as F
from repro.autograd import optim
from repro.core import (
    FakeDetectorConfig,
    FakeDetectorModel,
    build_features,
    build_graph_index,
)
from repro.data import GeneratorConfig, PolitiFactGenerator
from repro.graph.sampling import tri_splits

from conftest import save_artifact

SCALES = (0.02, 0.05, 0.1)


def _epoch_seconds(scale: float) -> tuple:
    dataset = PolitiFactGenerator(GeneratorConfig(scale=scale, seed=7)).generate()
    split = next(
        tri_splits(
            sorted(dataset.articles), sorted(dataset.creators),
            sorted(dataset.subjects), k=10, seed=0,
        )
    )
    config = FakeDetectorConfig(
        epochs=1, explicit_dim=60, vocab_size=2000, max_seq_len=16,
        embed_dim=8, rnn_hidden=12, latent_dim=8, gdu_hidden=16,
    )
    features = build_features(
        dataset, split.articles.train, split.creators.train, split.subjects.train,
        explicit_dim=config.explicit_dim, vocab_size=config.vocab_size,
        max_seq_len=config.max_seq_len,
    )
    graph = build_graph_index(dataset, features)
    model = FakeDetectorModel(
        config,
        rng=np.random.default_rng(0),
        explicit_dims={
            "article": features.articles.explicit.shape[1],
            "creator": features.creators.explicit.shape[1],
            "subject": features.subjects.explicit.shape[1],
        },
    )
    optimizer = optim.Adam(list(model.parameters()), lr=0.01)
    start = time.perf_counter()
    logits = model(features, graph)
    loss = F.cross_entropy(logits["article"], features.articles.labels)
    optimizer.zero_grad()
    loss.backward()
    optimizer.step()
    elapsed = time.perf_counter() - start
    return dataset.num_articles, elapsed


def test_epoch_cost_scales_linearly(benchmark):
    rows = []

    def run():
        for scale in SCALES:
            rows.append(_epoch_seconds(scale))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Training-epoch cost vs corpus size (full-batch)"]
    lines.append(f"{'articles':>9s} {'seconds':>9s} {'ms/article':>11s}")
    for n, seconds in rows:
        lines.append(f"{n:>9d} {seconds:>9.2f} {1000 * seconds / n:>11.2f}")
    rendered = "\n".join(lines)
    save_artifact("scaling.txt", rendered)
    print()
    print(rendered)

    # Per-article cost must not blow up with size (allow 3x drift for cache
    # effects — superlinear would indicate an accidental dense-matrix path).
    per_article = [seconds / n for n, seconds in rows]
    assert max(per_article) < 3.0 * min(per_article), per_article
