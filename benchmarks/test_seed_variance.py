"""Seed-variance study: how stable are FakeDetector's results across seeds?

Reports mean ± std of held-out bi-class article accuracy over several
weight-initialization seeds on a fixed split — the error bar to keep in
mind when reading the single-fold figures.
"""

import numpy as np

from repro.core import FakeDetector, FakeDetectorConfig
from repro.metrics.stats import mean_and_std

from conftest import save_artifact

SEEDS = (0, 1, 2, 3)


def test_seed_variance(bench_dataset, bench_split, benchmark):
    accuracies = []

    def run():
        for seed in SEEDS:
            config = FakeDetectorConfig(
                epochs=45, explicit_dim=80, vocab_size=2000, max_seq_len=20,
                embed_dim=12, rnn_hidden=16, latent_dim=12, gdu_hidden=24,
                alpha=2e-3, seed=seed,
            )
            det = FakeDetector(config).fit(bench_dataset, bench_split)
            preds = det.predict("article")
            test = bench_split.articles.test
            accuracies.append(
                float(
                    np.mean(
                        [
                            (bench_dataset.articles[a].label.binary)
                            == int(preds[a] >= 3)
                            for a in test
                        ]
                    )
                )
            )
        return accuracies

    benchmark.pedantic(run, rounds=1, iterations=1)

    mean, std = mean_and_std(accuracies)
    rendered = (
        "Seed variance (bi-class article accuracy, fixed split)\n"
        + "\n".join(f"  seed {s}: {a:.3f}" for s, a in zip(SEEDS, accuracies))
        + f"\n  mean ± std: {mean:.3f} ± {std:.3f}"
    )
    save_artifact("seed_variance.txt", rendered)
    print()
    print(rendered)

    # All seeds above chance and reasonably clustered.
    assert min(accuracies) > 0.45
    assert std < 0.12
