"""Benchmark: self-training in the paper's low-supervision regime (θ=0.1).

Compares plain FakeDetector against the self-training wrapper when only 10%
of training labels are available — the setting where pseudo-labels have the
most room to help.
"""

import numpy as np

from repro.core import FakeDetector, FakeDetectorConfig, SelfTrainingFakeDetector
from repro.graph.sampling import tri_splits

from conftest import save_artifact

CONFIG = dict(
    epochs=45, explicit_dim=80, vocab_size=2000, max_seq_len=20,
    embed_dim=12, rnn_hidden=16, latent_dim=12, gdu_hidden=24,
    alpha=2e-3, seed=0,
)


def test_self_training_low_theta(bench_dataset, benchmark):
    split = next(
        tri_splits(
            sorted(bench_dataset.articles), sorted(bench_dataset.creators),
            sorted(bench_dataset.subjects), k=10, seed=0,
        )
    )
    rng = np.random.default_rng(0)
    sparse = split.subsample_train(0.1, rng)

    def accuracy(model):
        preds = model.predict("article")
        test = split.articles.test
        return float(
            np.mean(
                [
                    (bench_dataset.articles[a].label.binary) == int(preds[a] >= 3)
                    for a in test
                ]
            )
        )

    results = {}

    def run():
        plain = FakeDetector(FakeDetectorConfig(**CONFIG)).fit(bench_dataset, sparse)
        results["plain"] = accuracy(plain)
        st = SelfTrainingFakeDetector(
            config=FakeDetectorConfig(**CONFIG), rounds=2, confidence=0.85,
            max_added_per_round=80,
        ).fit(bench_dataset, sparse)
        results["self-training"] = accuracy(st)
        results["pseudo_rounds"] = len(st.history)
        results["pseudo_added"] = sum(r.added for r in st.history)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    rendered = (
        "Self-training at θ=0.1 (bi-class article accuracy)\n"
        f"  plain FakeDetector   {results['plain']:.3f}\n"
        f"  + self-training      {results['self-training']:.3f} "
        f"({results['pseudo_added']} pseudo-labels over "
        f"{results['pseudo_rounds']} rounds)"
    )
    save_artifact("self_training.txt", rendered)
    print()
    print(rendered)

    # Self-training must not catastrophically hurt (pseudo-label noise is
    # bounded by the confidence threshold).
    assert results["self-training"] >= results["plain"] - 0.08
