"""Sensitivity analysis: how methods respond as the data's signals weaken.

Sweeps the generator's ``text_signal_strength`` knob and compares
FakeDetector (text + graph) against SVM (text only) and label propagation
(graph only). Checked shape:

- lp is *exactly invariant* to the text knob (it never reads text) — a
  strong end-to-end consistency check on the whole pipeline;
- at full signal, the hybrid FakeDetector beats the text-only SVM;
- no method collapses below chance. (The SVM does not decay fully to
  chance at strength 0: subject topic words remain correlated with subject
  bias, a realistic text-borne proxy for the graph signal.)
"""

import numpy as np

from repro.baselines import LabelPropagationBaseline, SVMBaseline
from repro.core import FakeDetectorConfig
from repro.baselines import FakeDetectorMethod
from repro.data import GeneratorConfig, PolitiFactGenerator
from repro.graph.sampling import tri_splits

from conftest import save_artifact

STRENGTHS = (1.0, 0.5, 0.0)


def _article_accuracy(model, dataset, split) -> float:
    model.fit(dataset, split)
    preds = model.predict("article")
    test = split.articles.test
    return float(
        np.mean(
            [(dataset.articles[a].label.binary) == int(preds[a] >= 3) for a in test]
        )
    )


def test_text_signal_sensitivity(benchmark):
    rows = []

    def run():
        for strength in STRENGTHS:
            config = GeneratorConfig(
                scale=0.04, seed=7, text_signal_strength=strength,
                profile_signal_strength=strength,
            )
            dataset = PolitiFactGenerator(config).generate()
            split = next(
                tri_splits(
                    sorted(dataset.articles), sorted(dataset.creators),
                    sorted(dataset.subjects), k=10, seed=0,
                )
            )
            fd = FakeDetectorMethod(
                FakeDetectorConfig(
                    epochs=60, explicit_dim=80, vocab_size=2000, max_seq_len=20,
                    embed_dim=12, rnn_hidden=16, latent_dim=12, gdu_hidden=24,
                    alpha=2e-3, seed=0,
                )
            )
            svm = SVMBaseline(explicit_dim=80, epochs=150, seed=0)
            lp = LabelPropagationBaseline()
            rows.append(
                (
                    strength,
                    _article_accuracy(fd, dataset, split),
                    _article_accuracy(svm, dataset, split),
                    _article_accuracy(lp, dataset, split),
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Text-signal sensitivity (bi-class article accuracy)"]
    lines.append(f"{'signal':>7s} {'FakeDetector':>13s} {'svm':>7s} {'lp':>7s}")
    for strength, fd_acc, svm_acc, lp_acc in rows:
        lines.append(f"{strength:>7.1f} {fd_acc:>13.3f} {svm_acc:>7.3f} {lp_acc:>7.3f}")
    rendered = "\n".join(lines)
    save_artifact("sensitivity_text_signal.txt", rendered)
    print()
    print(rendered)

    by_strength = {s: (fd, svm, lp) for s, fd, svm, lp in rows}
    # lp never reads text: its accuracy must be bit-identical across the sweep.
    lp_values = {lp for _, _, _, lp in rows}
    assert len(lp_values) == 1, f"lp varied with text strength: {lp_values}"
    # At full signal the hybrid model beats the text-only SVM.
    assert by_strength[1.0][0] >= by_strength[1.0][1]
    # Nothing collapses below chance.
    for strength, fd_acc, svm_acc, lp_acc in rows:
        assert min(fd_acc, svm_acc, lp_acc) > 0.45, (strength, fd_acc, svm_acc, lp_acc)
