"""Sharded-service scaling: 1-shard vs 2-shard pools under load.

Stands up the :class:`repro.serve.PredictionService` twice against one
checkpoint — a 1-worker/1-shard pool and a 2-worker/2-shard pool — and
drives both with :mod:`repro.serve.loadgen` concurrency sweeps. Records
client-side p50/p95/p99 latency per level, the saturation point (where
extra concurrency stops buying throughput), the 2-shard speedup, and an
overload probe asserting admission control answers 429 instead of queueing
without bound.

Writes ``results/BENCH_serve_scale.json`` (plus a ``kind="benchmark"``
run record for ``repro obs diff``).

The speedup assertion is gated on ``cpu_cores >= 3`` (parent + two
workers): multi-process scaling cannot materialize on a single-core box,
where both pools time-slice one CPU. The artifact records ``cpu_cores``
and ``scaling_expected`` so readers can tell the two regimes apart.
"""

from __future__ import annotations

import json
import os
import urllib.request

from conftest import BENCH_SEED, save_bench_run

from repro.core import FakeDetector, FakeDetectorConfig
from repro.serve import REQUEST_SCHEMA, PredictionService, ShardPlan
from repro.serve.loadgen import run_load, sweep_concurrency

LEVELS = (1, 2, 4, 8)
REQUESTS_PER_LEVEL = 32
# Shard scaling needs real parallelism: one core for the parent
# (HTTP front-end + load client) and one per worker. Below that the two
# pools time-slice one CPU and the comparison measures the scheduler.
SCALING_CORES = 3
# Fat requests: per-request worker compute (16 batched forwards) must
# outweigh the parent's fixed HTTP + dispatch cost, or the front-end is
# what saturates and shard scaling is invisible.
ARTICLES_PER_REQUEST = 16


def _payloads(dataset, plan: ShardPlan, count: int = 16):
    """Shard-homogeneous request documents, alternating between shards.

    Each request carries ``ARTICLES_PER_REQUEST`` distinct-text articles all
    grounded in one shard's creators — the community-local traffic pattern
    the router exists for — with consecutive requests alternating shards, so
    a sharded pool serves disjoint request streams in parallel instead of
    fanning every request out to every shard.
    """
    creators_by_shard = {}
    for creator, shard in sorted(plan.creator_shard.items()):
        creators_by_shard.setdefault(shard, []).append(creator)
    texts = [a.text for a in dataset.articles.values()]
    payloads = []
    serial = 0
    for r in range(count):
        shard = r % max(1, plan.num_shards)
        creators = creators_by_shard.get(shard, [""])
        articles = []
        for _ in range(ARTICLES_PER_REQUEST):
            articles.append({
                "article_id": f"load_{serial}",
                # the variant suffix defeats any feature cache
                "text": texts[serial % len(texts)] + f" variant {serial}",
                "creator_id": creators[serial % len(creators)],
                "subject_ids": [],
            })
            serial += 1
        payloads.append({"schema": REQUEST_SCHEMA, "articles": articles})
    return payloads


def _overload_probe(service: PredictionService, payloads) -> dict:
    """Zero the admission budget and verify overload surfaces as 429s."""
    saved = service.max_queue_depth
    service.max_queue_depth = 0
    try:
        result = run_load(
            service.url + "/v1/predict", payloads, concurrency=4, requests=16,
        )
    finally:
        service.max_queue_depth = saved
    body = json.dumps(payloads[0]).encode("utf-8")
    request = urllib.request.Request(
        service.url + "/v1/predict", data=body,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    with urllib.request.urlopen(request, timeout=60.0) as reply:
        recovered = reply.status == 200
    return {
        "requests": result.requests,
        "rejected_429": result.rejected,
        "errors": result.errors,
        "recovered_after_restore": recovered,
    }


def test_serve_scale(bench_dataset, bench_split, tmp_path_factory):
    # Serving-heavy sizing: wide enough that per-request worker compute
    # dominates the parent's HTTP+dispatch overhead, so shard scaling is
    # measurable; epochs stay minimal (benchmark serves, it doesn't learn).
    config = FakeDetectorConfig(
        epochs=2, explicit_dim=320, vocab_size=4000, max_seq_len=30,
        embed_dim=24, rnn_hidden=64, latent_dim=24, gdu_hidden=96,
        seed=BENCH_SEED,
    )
    detector = FakeDetector(config).fit(bench_dataset, bench_split)
    checkpoint = tmp_path_factory.mktemp("serve_scale") / "detector"
    detector.save(checkpoint)
    plan = ShardPlan.from_checkpoint(checkpoint, 2)
    payloads = _payloads(bench_dataset, plan)

    sweeps = {}
    overload = None
    for shards in (1, 2):
        service = PredictionService(
            checkpoint, workers=shards, shards=shards,
            max_wait=0.001, max_queue_depth=64, feature_cache_size=0,
        )
        with service:
            sweeps[shards] = sweep_concurrency(
                service.url + "/v1/predict", payloads,
                levels=LEVELS, requests_per_level=REQUESTS_PER_LEVEL,
            )
            if shards == 2:
                overload = _overload_probe(service, payloads)

    peak_1, peak_2 = (sweeps[s]["peak_throughput_rps"] for s in (1, 2))
    best_2 = max(sweeps[2]["levels"], key=lambda lv: lv["throughput_rps"])
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    report = {
        "levels": list(LEVELS),
        "requests_per_level": REQUESTS_PER_LEVEL,
        "articles_per_request": ARTICLES_PER_REQUEST,
        "cpu_cores": cores,
        "scaling_expected": cores >= SCALING_CORES,
        "sweep_1shard": sweeps[1],
        "sweep_2shard": sweeps[2],
        "peak_throughput_rps_1shard": peak_1,
        "peak_throughput_rps_2shard": peak_2,
        "speedup_2shard": peak_2 / peak_1,
        "p50_ms": best_2["latency_ms"]["p50"],
        "p95_ms": best_2["latency_ms"]["p95"],
        "p99_ms": best_2["latency_ms"]["p99"],
        "saturation_2shard": sweeps[2]["saturation"],
        "overload": overload,
    }
    save_bench_run("BENCH_serve_scale.json", report)

    # Acceptance: with real cores behind the workers the sharded pool
    # outscales one worker (on a 1-core box both pools time-slice the same
    # CPU, so we only require the sharded pool to stay in the same league);
    # either way overload is answered with 429s (bounded queues),
    # recovering once budget returns.
    if report["scaling_expected"]:
        assert peak_2 > peak_1, report
    else:
        assert peak_2 > 0.4 * peak_1, report
    assert overload["rejected_429"] > 0, report
    assert overload["errors"] == 0, report
    assert overload["recovered_after_restore"], report
    for level in sweeps[2]["levels"]:
        assert level["errors"] == 0, level
