"""Serving latency: cold full-graph pass vs cached-session inference.

Measures the amortization the ``repro.serve`` subsystem exists for:

- **cold**: build a fresh :class:`InferenceSession` per request — the
  pre-serve behavior where every ``predict_new_articles`` call re-ran
  ``forward_with_states`` over the whole News-HSN;
- **warm**: reuse one session, so each request pays only its own
  HFLU → GDU → head forward;
- **cached**: repeat the same texts so the LRU feature cache also hits.

Warm/cached request times are reported as the **median per-article
latency** (the same robust statistic ``BENCH_diffusion`` documents): a
shared-machine load spike inflates a whole-loop mean by whatever burst it
lands on, while the median of per-request timings reports what a typical
request actually costs.

Writes ``results/BENCH_serving.json``.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import BENCH_SEED, save_bench_run

from repro.core import FakeDetector, FakeDetectorConfig
from repro.data import Article, CredibilityLabel
from repro.serve import InferenceSession


def _new_articles(dataset, count):
    template = next(iter(dataset.articles.values()))
    source = list(dataset.articles.values())[:count]
    return [
        Article(f"bench_{i}", a.text, CredibilityLabel.HALF_TRUE,
                template.creator_id, template.subject_ids)
        for i, a in enumerate(source)
    ]


def _median_predict_seconds(session, articles):
    """Median single-article predict latency over distinct requests."""
    times = []
    for article in articles:
        start = time.perf_counter()
        session.predict([article])
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def test_serving_latency(bench_dataset, bench_split):
    config = FakeDetectorConfig(
        epochs=5, explicit_dim=60, vocab_size=2000, max_seq_len=16,
        seed=BENCH_SEED,
    )
    detector = FakeDetector(config).fit(bench_dataset, bench_split)
    articles = _new_articles(bench_dataset, 40)

    # Cold: session construction (full-graph pass) + one single-article
    # predict, per request — the old per-call cost model.
    cold_runs = 3
    start = time.perf_counter()
    for article in articles[:cold_runs]:
        InferenceSession(detector, feature_cache_size=0).predict([article])
    cold_per_article = (time.perf_counter() - start) / cold_runs

    # Warm: one session, per-article requests; the graph pass is sunk.
    session = InferenceSession(detector)
    warm_per_article = _median_predict_seconds(session, articles)

    # Cached: identical texts again — the LRU removes feature extraction.
    cached_per_article = _median_predict_seconds(session, articles)

    snapshot = session.snapshot()
    report = {
        "graph": {
            "articles": bench_dataset.num_articles,
            "creators": bench_dataset.num_creators,
            "subjects": bench_dataset.num_subjects,
        },
        "timing_statistic": "median per-article latency (warm/cached)",
        "cold_seconds_per_article": cold_per_article,
        "warm_seconds_per_article": warm_per_article,
        "cached_seconds_per_article": cached_per_article,
        "speedup_warm_vs_cold": cold_per_article / warm_per_article,
        "cache_hit_rate": snapshot["cache_hit_rate"],
        "session_metrics": snapshot,
    }
    save_bench_run("BENCH_serving.json", report)

    # The acceptance bar: cached-session time well below the cold pass.
    assert warm_per_article < cold_per_article / 2, report
    assert snapshot["cache_hit_rate"] >= 0.5, report
