"""Benchmark + reproduction of Table 1: network properties.

Regenerates the paper's node/link count table at the benchmark scale and
verifies the scaled counts and ratios match the crawl's statistics.
"""

import pytest

from repro.data import (
    PAPER_NUM_ARTICLE_SUBJECT_LINKS,
    PAPER_NUM_ARTICLES,
    PAPER_NUM_CREATORS,
    GeneratorConfig,
    PolitiFactGenerator,
)
from repro.data.analysis import (
    average_articles_per_creator,
    average_subjects_per_article,
    network_properties,
)
from repro.experiments import table1

from conftest import BENCH_SCALE, BENCH_SEED, save_artifact


def test_table1_generation_benchmark(benchmark):
    """Time corpus generation (the substrate for every other benchmark)."""
    config = GeneratorConfig(scale=BENCH_SCALE, seed=BENCH_SEED)

    dataset = benchmark(lambda: PolitiFactGenerator(config).generate())
    props = network_properties(dataset)
    n_articles, n_creators, n_subjects, links = config.resolved_counts()
    assert props["articles"] == n_articles
    assert props["creators"] == n_creators
    assert props["subjects"] == n_subjects
    assert props["creator_article_links"] == n_articles
    assert props["article_subject_links"] == links


def test_table1_reproduction(bench_dataset, benchmark):
    """The paper's Table 1 ratios hold at the benchmark scale."""
    rendered = benchmark(lambda: table1(bench_dataset))
    paper_reference = (
        "\nPaper (scale=1.0): articles=14,055 creators=3,634 subjects=152 "
        "creator-article=14,055 article-subject=48,756\n"
        f"This run (scale={BENCH_SCALE}): see above. "
        "Ratios preserved: articles/creator "
        f"{average_articles_per_creator(bench_dataset):.2f} (paper 3.86), "
        f"subjects/article {average_subjects_per_article(bench_dataset):.2f} "
        "(paper ~3.5)."
    )
    save_artifact("table1.txt", rendered + paper_reference)
    print()
    print(rendered + paper_reference)

    assert average_articles_per_creator(bench_dataset) == pytest.approx(
        PAPER_NUM_ARTICLES / PAPER_NUM_CREATORS, abs=0.2
    )
    assert average_subjects_per_article(bench_dataset) == pytest.approx(
        PAPER_NUM_ARTICLE_SUBJECT_LINKS / PAPER_NUM_ARTICLES, abs=0.2
    )
