"""Distributed tracing + drift telemetry overhead on the warm serve path.

The PR 7 instrumentation touches every request: the front-end opens a
``serve.request`` span tree, dispatch stamps each worker queue entry with a
trace payload, workers build four :func:`repro.obs.span_record` dicts and a
drift window summary per result, and the collector merges it all into the
:class:`repro.obs.TraceStore`. This benchmark measures that cost end to end
against the same pool with the instrumentation off:

- **baseline**: a 2-worker sharded :class:`PredictionService` with no
  ``trace_dir`` and no drift baseline — the pre-PR request path;
- **instrumented**: the identical pool with ``trace_dir`` set and
  ``drift_baseline="auto"``, every request client-traced via a
  ``traceparent`` context.

Both modes run the same request mix through ``service.predict`` (in-process,
skipping HTTP socket noise) and take the min over
``REPRO_BENCH_TRACE_REPEATS`` passes (default 3). The acceptance bar is the
issue's budget: instrumented/baseline <= 1.10x. Writes
``results/BENCH_trace.json``.
"""

from __future__ import annotations

import os
import time

from conftest import BENCH_SEED, save_bench_run

from repro.core import FakeDetector, FakeDetectorConfig
from repro.obs import TraceContext
from repro.serve import PredictionService, PredictRequest

REPEATS = int(os.environ.get("REPRO_BENCH_TRACE_REPEATS", "3"))
REQUESTS_PER_PASS = 40
OVERHEAD_BUDGET = 1.10   # traced + drift-monitored request path: <10%


def _requests(dataset, count):
    """Round-robin single-article requests over real corpus texts."""
    articles = list(dataset.articles.values())
    docs = []
    for i in range(count):
        article = articles[i % len(articles)]
        docs.append(PredictRequest.from_dict({
            "schema": "repro.serve.request/1",
            "articles": [{
                "article_id": f"bench_{i}",
                "text": article.text,
                "creator_id": article.creator_id,
                "subject_ids": list(article.subject_ids),
            }],
        }))
    return docs


def _pass_seconds(service, requests, traced: bool) -> float:
    start = time.perf_counter()
    for request in requests:
        parent = TraceContext.new() if traced else None
        service.predict(request, parent_context=parent)
    return time.perf_counter() - start


def _min_pass(service, requests, traced: bool) -> float:
    service.predict(requests[0], parent_context=None)   # warm the pool
    return min(
        _pass_seconds(service, requests, traced) for _ in range(REPEATS)
    )


def test_trace_overhead(bench_dataset, bench_split, tmp_path):
    config = FakeDetectorConfig(
        epochs=5, explicit_dim=60, vocab_size=2000, max_seq_len=16,
        seed=BENCH_SEED,
    )
    detector = FakeDetector(config).fit(bench_dataset, bench_split)
    checkpoint = tmp_path / "ckpt"
    detector.save(checkpoint)
    requests = _requests(bench_dataset, REQUESTS_PER_PASS)
    pool = dict(workers=2, shards=2, max_wait=0.001)

    with PredictionService(checkpoint, **pool) as service:
        baseline = _min_pass(service, requests, traced=False)

    trace_dir = tmp_path / "traces"
    with PredictionService(
        checkpoint, **pool,
        trace_dir=trace_dir, drift_baseline="auto",
    ) as service:
        instrumented = _min_pass(service, requests, traced=True)
        drift_armed = bool(service.drift_status())
        traces_written = len(service.trace_store.trace_ids())

    per_request_ms = 1e3 * instrumented / REQUESTS_PER_PASS
    report = {
        "repeats": REPEATS,
        "requests_per_pass": REQUESTS_PER_PASS,
        "baseline_seconds": baseline,
        "instrumented_seconds": instrumented,
        "overhead_ratio": instrumented / baseline,
        "overhead_budget": OVERHEAD_BUDGET,
        "instrumented_ms_per_request": per_request_ms,
        "traces_written": traces_written,
        "drift_armed": drift_armed,
    }
    save_bench_run("BENCH_trace.json", report)

    # Sanity: the instrumented pool actually did the extra work.
    assert traces_written >= REQUESTS_PER_PASS
    assert drift_armed, report
    assert instrumented / baseline < OVERHEAD_BUDGET, report
