"""Training throughput: fused sequence kernels vs the unrolled tape.

The HFLU latent branch is the training hot path: unrolled, every timestep
of every node type emits ~10 tape nodes, so a full-graph epoch is tens of
thousands of Python closures. The fused kernels (repro.autograd.kernels)
collapse each recurrence into one tape node with a hand-written BPTT
backward. What that buys depends on how much of an epoch the recurrence
is, so this benchmark measures two regimes on synthetic News-HSNs:

- **document regime** (gated): long article bodies through a
  bidirectional encoder — the per-timestep tape overhead the kernels
  remove dominates the epoch, and fused mode must deliver at least
  ``SPEEDUP_BUDGET``× the unrolled full-batch steps/sec;
- **statement regime** (informational): the default short-statement
  corpus at larger batch, where numpy FLOPs shared by both paths bound
  the end-to-end win. Reported in the artifact, not gated.

Also recorded: **tape nodes per epoch** in each mode (counted by the op
profiler in a separate instrumented run) and **equivalence** — the two
modes' loss curves must agree, because a speedup that changes the
optimization trajectory would be a bug, not a win.

Writes ``results/BENCH_training.json`` and a ``kind="benchmark"`` run
record so ``repro obs diff`` can regression-gate future kernel changes.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from conftest import BENCH_SEED, save_bench_run

from repro.core import FakeDetector, FakeDetectorConfig
from repro.data import GeneratorConfig, PolitiFactGenerator
from repro.graph.sampling import tri_splits
from repro.obs import OpProfiler

REPEATS = int(os.environ.get("REPRO_BENCH_KERNEL_REPEATS", "3"))
EPOCHS = 3
SPEEDUP_BUDGET = 2.5

#: (generator kwargs, detector kwargs) per regime. The document regime
#: pairs long bodies (mean 60 tokens vs the statement default 22) with the
#: bidirectional cell, where the unrolled tape pays per timestep twice.
REGIMES = {
    "document": (
        dict(scale=0.005, mean_article_length=60.0, min_article_length=30),
        dict(max_seq_len=48, rnn_cell="bigru"),
    ),
    "statement": (
        dict(scale=0.02),
        dict(max_seq_len=16, rnn_cell="gru"),
    ),
}


@pytest.fixture(scope="module", params=sorted(REGIMES))
def regime(request):
    gen_kwargs, model_kwargs = REGIMES[request.param]
    dataset = PolitiFactGenerator(
        GeneratorConfig(seed=BENCH_SEED, **gen_kwargs)
    ).generate()
    split = next(
        tri_splits(
            sorted(dataset.articles),
            sorted(dataset.creators),
            sorted(dataset.subjects),
            k=10,
            seed=0,
        )
    )
    return request.param, dataset, split, model_kwargs


def _config(fused: bool, model_kwargs: dict) -> FakeDetectorConfig:
    return FakeDetectorConfig(
        epochs=EPOCHS, explicit_dim=60, vocab_size=2000,
        seed=BENCH_SEED, fused_kernels=fused, **model_kwargs,
    )


def _fit(dataset, split, fused: bool, model_kwargs: dict) -> FakeDetector:
    detector = FakeDetector(_config(fused, model_kwargs))
    detector.fit(dataset, split)
    return detector


def _steps_per_sec(record) -> float:
    return len(record.total) / record.total_seconds


def _tape_nodes_per_epoch(dataset, split, fused: bool, model_kwargs) -> float:
    """Forward tape-op invocations per epoch, via the op profiler."""
    with OpProfiler() as profiler:
        _fit(dataset, split, fused, model_kwargs)
    snapshot = profiler.snapshot()
    forward_calls = sum(
        entry["calls"] for entry in snapshot["forward"].values()
    )
    return forward_calls / EPOCHS


def test_training_throughput(regime):
    name, dataset, split, model_kwargs = regime
    runs = {True: [], False: []}
    for _ in range(REPEATS):
        for fused in (True, False):
            runs[fused].append(_fit(dataset, split, fused, model_kwargs))

    fused_sps = max(_steps_per_sec(d.record) for d in runs[True])
    unrolled_sps = max(_steps_per_sec(d.record) for d in runs[False])
    speedup = fused_sps / unrolled_sps

    # Equivalence, asserted in-benchmark: identical seeds must produce the
    # same loss trajectory in both modes (the kernels are a pure speedup).
    fused_curve = np.asarray(runs[True][0].record.total)
    unrolled_curve = np.asarray(runs[False][0].record.total)
    np.testing.assert_allclose(fused_curve, unrolled_curve, rtol=1e-6, atol=1e-8)

    fused_nodes = _tape_nodes_per_epoch(dataset, split, True, model_kwargs)
    unrolled_nodes = _tape_nodes_per_epoch(dataset, split, False, model_kwargs)

    gated = name == "document"
    report = {
        "regime": name,
        "gated": gated,
        "repeats": REPEATS,
        "fit_epochs": EPOCHS,
        "num_articles": dataset.num_articles,
        "rnn_cell": model_kwargs["rnn_cell"],
        "max_seq_len": model_kwargs["max_seq_len"],
        "fused_steps_per_sec": fused_sps,
        "unrolled_steps_per_sec": unrolled_sps,
        "speedup": speedup,
        "speedup_budget": SPEEDUP_BUDGET if gated else None,
        "fused_tape_nodes_per_epoch": fused_nodes,
        "unrolled_tape_nodes_per_epoch": unrolled_nodes,
        "tape_node_reduction": unrolled_nodes / max(1.0, fused_nodes),
        "loss_curves_equivalent": True,
        "loss_curve_fused": fused_curve.tolist(),
        "loss_curve_unrolled": unrolled_curve.tolist(),
    }
    save_bench_run(
        f"BENCH_training_{name}.json" if not gated else "BENCH_training.json",
        report,
        config={
            "epochs": EPOCHS, "seed": BENCH_SEED, "regime": name,
            **model_kwargs,
        },
    )

    # Node-tape collapse grows with sequence length; the informational
    # short-statement regime still must shrink the tape materially.
    assert fused_nodes < unrolled_nodes / (5 if gated else 2), report
    if gated:
        assert speedup >= SPEEDUP_BUDGET, report
