#!/usr/bin/env python3
"""Ablation study over FakeDetector's design choices.

Trains the full model and five ablated variants on the same split and
compares held-out article accuracy:

- full model (explicit + latent features, all GDU gates, diffusion)
- no explicit features (latent GRU only)
- no latent features (bag-of-words only)
- no diffusion (graph ignored)
- no GDU gates (plain tanh fusion)
- one diffusion round (vs the default two)

Run:  python examples/ablation_study.py
"""

import dataclasses
import time

import numpy as np

from repro import FakeDetector, FakeDetectorConfig, generate_dataset
from repro.graph.sampling import tri_splits
from repro.metrics import BinaryMetrics

BASE = FakeDetectorConfig(
    epochs=40, explicit_dim=80, vocab_size=2500, max_seq_len=20,
    embed_dim=12, rnn_hidden=16, latent_dim=12, gdu_hidden=24, seed=5,
)

VARIANTS = {
    "full model": {},
    "no explicit features": {"use_explicit_features": False},
    "no latent features": {"use_latent_features": False},
    "no diffusion": {"use_diffusion": False},
    "no GDU gates": {
        "use_forget_gate": False,
        "use_adjust_gate": False,
        "use_selection_gates": False,
    },
    "1 diffusion round": {"diffusion_iterations": 1},
    "3 diffusion rounds": {"diffusion_iterations": 3},
}


def main() -> None:
    dataset = generate_dataset(scale=0.04, seed=7)
    split = next(
        tri_splits(
            sorted(dataset.articles),
            sorted(dataset.creators),
            sorted(dataset.subjects),
            k=10,
            seed=0,
        )
    )
    print(f"Corpus: {dataset.num_articles} articles; "
          f"{len(split.articles.test)} held out\n")
    print(f"{'variant':<22s} {'art-acc':>8s} {'art-f1':>8s} {'cre-acc':>8s} {'time':>6s}")

    for name, overrides in VARIANTS.items():
        config = dataclasses.replace(BASE, **overrides)
        start = time.time()
        detector = FakeDetector(config).fit(dataset, split)
        elapsed = time.time() - start

        def binary(kind, store, test_ids):
            preds = detector.predict(kind)
            labeled = [e for e in test_ids if store[e].label is not None]
            y_true = [store[e].label.binary for e in labeled]
            y_pred = [int(preds[e] >= 3) for e in labeled]
            return BinaryMetrics.compute(y_true, y_pred)

        art = binary("article", dataset.articles, split.articles.test)
        cre = binary("creator", dataset.creators, split.creators.test)
        print(
            f"{name:<22s} {art.accuracy:>8.3f} {art.f1:>8.3f} "
            f"{cre.accuracy:>8.3f} {elapsed:>5.0f}s"
        )


if __name__ == "__main__":
    main()
