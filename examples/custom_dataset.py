#!/usr/bin/env python3
"""Build a News-HSN corpus by hand and run credibility inference on it.

Shows the dataset-construction API a user with their own fact-checking data
would use: create articles/creators/subjects directly, derive creator and
subject ground truth with the paper's weighted-sum rule, persist to JSON
lines, and train both FakeDetector and the label-propagation baseline.

Run:  python examples/custom_dataset.py
"""

import tempfile
from pathlib import Path

from repro import (
    CredibilityLabel,
    FakeDetector,
    FakeDetectorConfig,
    NewsDataset,
    load_dataset,
    save_dataset,
)
from repro.baselines import LabelPropagationBaseline
from repro.data import Article, Creator, Subject, assign_derived_labels
from repro.graph.sampling import tri_splits

STATEMENTS = [
    # (creator, subjects, label, text)
    ("sen_ray", ["budget"], CredibilityLabel.TRUE,
     "the budget report shows spending fell four percent according to the census data"),
    ("sen_ray", ["budget", "jobs"], CredibilityLabel.MOSTLY_TRUE,
     "average wages grew and the workers unemployment rate hit a record low this year"),
    ("sen_ray", ["jobs"], CredibilityLabel.HALF_TRUE,
     "the jobs bill added a million positions though the analysis counts part time work"),
    ("blog_max", ["budget"], CredibilityLabel.FALSE,
     "secret budget scheme will bankrupt the state a shocking scandal exposed by insiders"),
    ("blog_max", ["health"], CredibilityLabel.PANTS_ON_FIRE,
     "obamacare is a hoax designed to confiscate your savings in a corrupt takeover plot"),
    ("blog_max", ["health", "jobs"], CredibilityLabel.FALSE,
     "the radical plan will destroy every hospital and outlaw doctors a rigged disaster"),
    ("gov_lee", ["health"], CredibilityLabel.MOSTLY_TRUE,
     "insurance coverage expanded to more patients and premiums held steady per the report"),
    ("gov_lee", ["budget", "health"], CredibilityLabel.TRUE,
     "the department data shows medicare spending per patient declined this fiscal year"),
    ("gov_lee", ["jobs"], CredibilityLabel.MOSTLY_FALSE,
     "the factory hiring numbers were inflated and the payroll figures overstate growth"),
]


def build_corpus() -> NewsDataset:
    dataset = NewsDataset()
    dataset.add_creator(Creator("sen_ray", "Senator Ray", "senator nonpartisan budget policy veteran"))
    dataset.add_creator(Creator("blog_max", "Max the Blogger", "provocative viral partisan blogger firebrand"))
    dataset.add_creator(Creator("gov_lee", "Governor Lee", "governor moderate bipartisan legislation economist"))
    dataset.add_subject(Subject("budget", "budget", "budget spending revenue deficit appropriations"))
    dataset.add_subject(Subject("health", "health", "healthcare insurance medicare hospital patients"))
    dataset.add_subject(Subject("jobs", "jobs", "employment hiring workforce payroll labor"))
    for i, (creator, subjects, label, text) in enumerate(STATEMENTS):
        dataset.add_article(
            Article(f"stmt_{i:02d}", text, label, creator_id=creator, subject_ids=list(subjects))
        )
    # §5.1.1: creator/subject ground truth = weighted sum of article scores.
    assign_derived_labels(dataset)
    dataset.validate()
    return dataset


def main() -> None:
    dataset = build_corpus()
    print("Derived ground-truth labels (weighted-sum rule):")
    for creator in dataset.creators.values():
        print(f"  creator {creator.name:<16s} -> {creator.label.display_name}")
    for subject in dataset.subjects.values():
        print(f"  subject {subject.name:<16s} -> {subject.label.display_name}")

    # Persist and reload through the JSON-lines format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "corpus.jsonl"
        save_dataset(dataset, path)
        dataset = load_dataset(path)
        print(f"\nRound-tripped corpus through {path.name}: "
              f"{dataset.num_articles} articles intact")

    split = next(
        tri_splits(
            sorted(dataset.articles),
            sorted(dataset.creators),
            sorted(dataset.subjects),
            k=3,
            seed=0,
        )
    )
    config = FakeDetectorConfig(
        epochs=60, explicit_dim=20, vocab_size=200, max_seq_len=16,
        embed_dim=6, rnn_hidden=8, latent_dim=6, gdu_hidden=10,
    )
    detector = FakeDetector(config).fit(dataset, split)
    lp = LabelPropagationBaseline().fit(dataset, split)

    print("\nHeld-out article predictions:")
    fd_preds = detector.predict("article")
    lp_preds = lp.predict("article")
    for aid in split.articles.test:
        truth = dataset.articles[aid].label
        print(
            f"  {aid}: truth={truth.display_name:<14s} "
            f"FakeDetector={CredibilityLabel.from_class_index(fd_preds[aid]).display_name:<14s} "
            f"lp={CredibilityLabel.from_class_index(lp_preds[aid]).display_name}"
        )


if __name__ == "__main__":
    main()
