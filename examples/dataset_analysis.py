#!/usr/bin/env python3
"""Reproduce the paper's Section 3 dataset analysis (Table 1 and Figure 1).

Generates a corpus calibrated to the paper's PolitiFact crawl and prints
every statistic the paper reports: node/link counts, the power-law creator
distribution, frequent/distinctive words by label, the subject credibility
table, and the four case-study creators.

Run:  python examples/dataset_analysis.py [scale]
"""

import sys

from repro import generate_dataset
from repro.experiments import figure1, table1


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    print(f"Generating corpus at scale={scale} "
          f"(paper scale=1.0 is 14,055 articles)...\n")
    dataset = generate_dataset(scale=scale, seed=7)

    print(table1(dataset))
    print()
    print(figure1(dataset))

    print(
        "\nPaper reference points (at scale=1.0): 14,055 articles / 3,634 "
        "creators / 152 subjects / 48,756 article-subject links; Barack Obama "
        "most prolific (~599); 'health' largest subject (46.5% true), "
        "'economy' second (63.2% true); Trump ~69% false, Pence 52:48, "
        "Obama ~75% true, Clinton ~73% true."
    )


if __name__ == "__main__":
    main()
