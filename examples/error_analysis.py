#!/usr/bin/env python3
"""Error analysis of a trained FakeDetector.

After training, inspect *where* the model fails: the full confusion matrix
over the six Truth-O-Meter levels, the statements it gets wrong with the
highest confidence, and error rates broken down by creator and subject.

Run:  python examples/error_analysis.py
"""

from repro import FakeDetector, FakeDetectorConfig, generate_dataset
from repro.experiments import error_report
from repro.graph.sampling import tri_splits
from repro.metrics import classification_report


def main() -> None:
    dataset = generate_dataset(scale=0.04, seed=7)
    split = next(
        tri_splits(
            sorted(dataset.articles),
            sorted(dataset.creators),
            sorted(dataset.subjects),
            k=10,
            seed=0,
        )
    )
    print("Training FakeDetector...")
    config = FakeDetectorConfig(
        epochs=60, explicit_dim=100, vocab_size=2500, max_seq_len=20,
        alpha=2e-3, early_stop_patience=10,
    )
    detector = FakeDetector(config).fit(dataset, split)

    test_ids = split.articles.test
    predictions = detector.predict("article")
    probabilities = detector.predict_proba("article")

    y_true = [dataset.articles[a].label.class_index for a in test_ids]
    y_pred = [predictions[a] for a in test_ids]
    print("\nPer-class report (held-out articles):")
    print(classification_report(y_true, y_pred, num_classes=6))

    print("\n" + error_report(dataset, predictions, probabilities, test_ids, top_k=5))

    # Why did the model predict what it predicted? Input-gradient saliency
    # over the discriminative word set W_n.
    from repro.experiments import explain_article

    target = test_ids[0]
    article = dataset.articles[target]
    print(f"\nWord attributions for {target} "
          f"(truth: {article.label.display_name}):")
    for attribution in explain_article(detector, target, top_k=8):
        print(f"  {attribution}")


if __name__ == "__main__":
    main()
