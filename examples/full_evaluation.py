#!/usr/bin/env python3
"""Reproduce the paper's evaluation (Figures 4 and 5) at reduced scale.

Runs the θ-sweep over all six comparison methods, renders both 12-panel
figures as text tables, and verifies the paper's qualitative claims
(FakeDetector best on Accuracy/F1; multi-class harder than bi-class).

Run:  python examples/full_evaluation.py [--fast]

``--fast`` uses a smaller corpus, 2 θ values and 1 fold (~1 minute);
the default uses 4 θ values and 2 folds (several minutes on CPU).
"""

import sys
import time

from repro import generate_dataset
from repro.experiments import (
    check_paper_claims,
    default_methods,
    figure4,
    figure5,
    render_claims,
    run_sweep,
)


def main() -> None:
    fast = "--fast" in sys.argv
    if fast:
        scale, thetas, folds = 0.03, (0.1, 1.0), 1
    else:
        scale, thetas, folds = 0.06, (0.1, 0.4, 0.7, 1.0), 2

    print(f"Corpus scale={scale}, thetas={thetas}, folds={folds}")
    dataset = generate_dataset(scale=scale, seed=7)
    print(
        f"  {dataset.num_articles} articles / {dataset.num_creators} creators "
        f"/ {dataset.num_subjects} subjects"
    )

    methods = default_methods(fast=True)
    start = time.time()
    result = run_sweep(
        dataset, methods, thetas=thetas, folds=folds, seed=0, verbose=True
    )
    print(f"\nSweep finished in {time.time() - start:.0f}s\n")

    print("=" * 72)
    print(figure4(result))
    print("=" * 72)
    print(figure5(result))
    print("=" * 72)
    print(render_claims(check_paper_claims(result)))


if __name__ == "__main__":
    main()
