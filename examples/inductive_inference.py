#!/usr/bin/env python3
"""Inductive inference: score brand-new statements against a trained network.

The paper's setting is transductive (all nodes are in the graph at training
time); a deployed fact-checking assistant must instead score statements as
they arrive. This example trains FakeDetector once, then scores new
statements — with known creators/subjects, and fully cold (unknown ids fall
back to the GDU's zero default port, §4.2).

Run:  python examples/inductive_inference.py
"""

from repro import CredibilityLabel, FakeDetector, FakeDetectorConfig, generate_dataset
from repro.data import Article
from repro.graph.sampling import tri_splits


def main() -> None:
    dataset = generate_dataset(scale=0.04, seed=7)
    split = next(
        tri_splits(
            sorted(dataset.articles),
            sorted(dataset.creators),
            sorted(dataset.subjects),
            k=10,
            seed=0,
        )
    )
    print("Training FakeDetector once on the existing network...")
    config = FakeDetectorConfig(epochs=50, explicit_dim=100, vocab_size=3000, max_seq_len=24)
    detector = FakeDetector(config).fit(dataset, split)

    # Pick a reliable and an unreliable creator from the trained network.
    by_creator = dataset.articles_by_creator()
    name_to_id = {c.name: cid for cid, c in dataset.creators.items()}
    obama = name_to_id["Barack Obama"]
    trump = name_to_id["Donald Trump"]
    subjects = by_creator[obama][0].subject_ids

    incoming = [
        Article(
            "breaking_1",
            "the census report shows average income grew four percent according to federal data",
            CredibilityLabel.TRUE,  # ground truth; unseen by the model
            creator_id=obama,
            subject_ids=subjects,
        ),
        Article(
            "breaking_2",
            "secret plot exposed the rigged scheme will confiscate savings in a shocking hoax",
            CredibilityLabel.PANTS_ON_FIRE,
            creator_id=trump,
            subject_ids=subjects,
        ),
        Article(
            "breaking_3",
            "new statement about the proposal discussed this week in the state house",
            CredibilityLabel.HALF_TRUE,
            creator_id="unknown_creator",   # cold start: no graph context
            subject_ids=["unknown_subject"],
        ),
    ]

    predictions = detector.predict_new_articles(incoming)
    print("\nIncoming statements:")
    for article in incoming:
        predicted = CredibilityLabel.from_class_index(predictions[article.article_id])
        creator = dataset.creators.get(article.creator_id)
        creator_name = creator.name if creator else "(unknown creator)"
        print(f"  [{article.article_id}] by {creator_name}")
        print(f"    text:      {article.text[:70]}")
        print(f"    predicted: {predicted.display_name}")
        print(f"    actual:    {article.label.display_name}")


if __name__ == "__main__":
    main()
