#!/usr/bin/env python3
"""Run the pipeline on LIAR-format data (Wang 2017's public PolitiFact TSV).

If you have the real LIAR files, pass them on the command line::

    python examples/liar_dataset.py train.tsv valid.tsv test.tsv

Without arguments, the script writes a small synthetic TSV in LIAR's exact
column layout and runs on that, so the example is self-contained offline.
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core import FakeDetector, FakeDetectorConfig
from repro.data import load_liar
from repro.data.analysis import graph_statistics, network_properties
from repro.graph.sampling import tri_splits
from repro.metrics import BinaryMetrics

SPEAKERS = [
    ("jane-doe", "senator", "ohio", "democrat", 0.8),
    ("john-roe", "governor", "texas", "republican", 0.7),
    ("max-blog", "blogger", "florida", "none", 0.25),
    ("pat-pundit", "radio host", "arizona", "republican", 0.35),
    ("lee-wonk", "economist", "virginia", "independent", 0.75),
]
SUBJECTS = ["economy", "health-care", "taxes", "immigration", "elections"]
LIAR_LABEL_ORDER = ["pants-fire", "false", "barely-true", "half-true", "mostly-true", "true"]
TRUE_WORDS = "report census data percent according average analysis".split()
FALSE_WORDS = "hoax rigged scandal secret conspiracy shocking corrupt".split()
SHARED = "the state plan policy vote house new program spending people".split()


def synth_liar_tsv(path: Path, n: int = 400, seed: int = 7) -> None:
    """Write a miniature corpus in LIAR's column layout."""
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n):
        name, job, state, party, reliability = SPEAKERS[rng.integers(len(SPEAKERS))]
        score = np.clip(rng.normal(1 + 5 * reliability, 1.2), 1, 6)
        label = LIAR_LABEL_ORDER[int(round(score)) - 1]
        pool = TRUE_WORDS if score >= 3.5 else FALSE_WORDS
        words = [
            (pool if rng.random() < 0.35 else SHARED)[rng.integers(7)]
            for _ in range(14)
        ]
        subjects = ",".join(
            sorted(set(SUBJECTS[rng.integers(len(SUBJECTS))] for _ in range(2)))
        )
        rows.append(
            f"{i}.json\t{label}\t{' '.join(words)}\t{subjects}\t{name}\t{job}"
            f"\t{state}\t{party}\t0\t0\t0\t0\t0\tspeech"
        )
    path.write_text("\n".join(rows) + "\n", encoding="utf-8")


def main() -> None:
    if len(sys.argv) > 1:
        paths = [Path(p) for p in sys.argv[1:]]
        print(f"Loading LIAR files: {[p.name for p in paths]}")
    else:
        tmp = Path(tempfile.mkdtemp())
        path = tmp / "liar_demo.tsv"
        synth_liar_tsv(path)
        paths = [path]
        print(f"No files given — wrote a synthetic LIAR-format demo to {path}")

    dataset, stats = load_liar(*paths)
    print(f"loaded {stats.loaded}/{stats.rows} rows "
          f"(skipped: {stats.skipped_short} short, {stats.skipped_label} bad label, "
          f"{stats.skipped_duplicate} duplicate)")
    print("network:", network_properties(dataset))
    gs = graph_statistics(dataset)
    print(f"degrees: {gs.creator_degree_mean:.1f} articles/creator, "
          f"{gs.subject_degree_mean:.1f} articles/subject")

    split = next(
        tri_splits(
            sorted(dataset.articles), sorted(dataset.creators),
            sorted(dataset.subjects),
            k=min(10, dataset.num_subjects), seed=0,
        )
    )
    config = FakeDetectorConfig(
        epochs=50, explicit_dim=80, vocab_size=3000, max_seq_len=20, alpha=2e-3,
    )
    print("\nTraining FakeDetector on the LIAR-format corpus...")
    detector = FakeDetector(config).fit(dataset, split)

    test = split.articles.test
    preds = detector.predict("article")
    metrics = BinaryMetrics.compute(
        [dataset.articles[a].label.binary for a in test],
        [int(preds[a] >= 3) for a in test],
    )
    print(f"held-out bi-class: acc={metrics.accuracy:.3f} f1={metrics.f1:.3f} "
          f"prec={metrics.precision:.3f} recall={metrics.recall:.3f}")


if __name__ == "__main__":
    main()
