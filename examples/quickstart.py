#!/usr/bin/env python3
"""Quickstart: train FakeDetector on a synthetic PolitiFact corpus.

Generates a small corpus, trains the deep diffusive network on a 9:1 split,
and reports held-out credibility inference quality for articles, creators
and subjects — the minimal end-to-end use of the library.

Run:  python examples/quickstart.py
"""

from repro import FakeDetector, FakeDetectorConfig, generate_dataset
from repro.graph.sampling import tri_splits
from repro.metrics import BinaryMetrics, MultiClassMetrics


def main() -> None:
    print("Generating a synthetic PolitiFact-like corpus (scale=0.04)...")
    dataset = generate_dataset(scale=0.04, seed=7)
    print(
        f"  {dataset.num_articles} articles, {dataset.num_creators} creators, "
        f"{dataset.num_subjects} subjects, "
        f"{dataset.num_article_subject_links} article-subject links"
    )

    # The paper's protocol: 10-fold CV with a 9:1 train/test split per fold.
    split = next(
        tri_splits(
            sorted(dataset.articles),
            sorted(dataset.creators),
            sorted(dataset.subjects),
            k=10,
            seed=0,
        )
    )

    config = FakeDetectorConfig(
        epochs=50,
        explicit_dim=100,
        vocab_size=3000,
        max_seq_len=24,
        log_every=10,
    )
    print(f"\nTraining FakeDetector for {config.epochs} epochs...")
    detector = FakeDetector(config).fit(dataset, split)
    print(f"  final joint loss: {detector.record.final_loss:.4f}")

    print("\nHeld-out test performance:")
    for kind, store, test_ids in (
        ("article", dataset.articles, split.articles.test),
        ("creator", dataset.creators, split.creators.test),
        ("subject", dataset.subjects, split.subjects.test),
    ):
        predictions = detector.predict(kind)
        labeled = [e for e in test_ids if store[e].label is not None]
        y_true_multi = [store[e].label.class_index for e in labeled]
        y_pred_multi = [predictions[e] for e in labeled]
        y_true_bin = [int(c >= 3) for c in y_true_multi]
        y_pred_bin = [int(c >= 3) for c in y_pred_multi]
        binary = BinaryMetrics.compute(y_true_bin, y_pred_bin)
        multi = MultiClassMetrics.compute(y_true_multi, y_pred_multi)
        print(
            f"  {kind:8s} ({len(labeled):4d} nodes)  "
            f"bi-class acc={binary.accuracy:.3f} f1={binary.f1:.3f}  |  "
            f"6-class acc={multi.accuracy:.3f} macro-f1={multi.macro_f1:.3f}"
        )

    # Inspect a single prediction with its class distribution.
    article_id = split.articles.test[0]
    article = dataset.articles[article_id]
    probs = detector.predict_proba("article")[article_id]
    print(f"\nExample article {article_id!r}:")
    print(f"  text:       {article.text[:70]}...")
    print(f"  true label: {article.label.display_name}")
    print("  predicted distribution:")
    from repro import CredibilityLabel

    for label in CredibilityLabel:
        print(f"    {label.display_name:<15s} {probs[label.class_index]:.3f}")


if __name__ == "__main__":
    main()
