#!/usr/bin/env python3
"""Statistically rigorous method comparison on one corpus.

Goes beyond the paper's eyeballed curves: trains FakeDetector and the SVM
baseline on the same folds, then reports

- a per-class classification report for FakeDetector,
- bootstrap confidence intervals on each method's article accuracy,
- McNemar's test on their paired predictions,
- a paired sign test across (fold, θ) cells of a small sweep.

Run:  python examples/statistical_comparison.py
"""

from repro import generate_dataset
from repro.baselines import FakeDetectorMethod, SVMBaseline
from repro.core import FakeDetectorConfig
from repro.experiments import run_sweep
from repro.graph.sampling import tri_splits
from repro.metrics import accuracy, classification_report
from repro.metrics.stats import bootstrap_metric, compare_methods, mcnemar_test


def main() -> None:
    dataset = generate_dataset(scale=0.04, seed=7)
    split = next(
        tri_splits(
            sorted(dataset.articles),
            sorted(dataset.creators),
            sorted(dataset.subjects),
            k=10,
            seed=0,
        )
    )
    print("Training FakeDetector and SVM on the same split...")
    fd = FakeDetectorMethod(
        FakeDetectorConfig(epochs=60, explicit_dim=100, vocab_size=2500, max_seq_len=20)
    ).fit(dataset, split)
    svm = SVMBaseline(explicit_dim=100, epochs=200).fit(dataset, split)

    test = split.articles.test
    y_true = [dataset.articles[a].label.class_index for a in test]
    fd_pred = [fd.predict("article")[a] for a in test]
    svm_pred = [svm.predict("article")[a] for a in test]

    print("\nFakeDetector per-class report (6-class, held-out articles):")
    print(classification_report(y_true, fd_pred, num_classes=6))

    y_true_bin = [int(c >= 3) for c in y_true]
    fd_bin = [int(c >= 3) for c in fd_pred]
    svm_bin = [int(c >= 3) for c in svm_pred]
    fd_ci = bootstrap_metric(y_true_bin, fd_bin, accuracy, num_resamples=2000)
    svm_ci = bootstrap_metric(y_true_bin, svm_bin, accuracy, num_resamples=2000)
    print("\nBi-class article accuracy (95% bootstrap CI):")
    print(f"  FakeDetector  {fd_ci}")
    print(f"  SVM           {svm_ci}")

    stat, p = mcnemar_test(y_true_bin, fd_bin, svm_bin)
    print(f"\nMcNemar test on paired predictions: statistic={stat:.2f}, p={p:.3f}")
    if p < 0.05:
        print("  -> the two methods' error patterns differ significantly.")
    else:
        print("  -> no significant difference at this corpus size "
              "(the paper's margins need the full 14k-article crawl).")

    print("\nPaired sign test over a 3-fold x 2-theta mini-sweep:")
    methods = {
        "FakeDetector": lambda seed: FakeDetectorMethod(
            FakeDetectorConfig(
                seed=seed, epochs=45, explicit_dim=80, vocab_size=2000,
                max_seq_len=20, embed_dim=12, rnn_hidden=16, latent_dim=12,
                gdu_hidden=24, alpha=2e-3,
            )
        ),
        "svm": lambda seed: SVMBaseline(explicit_dim=80, epochs=150, seed=seed),
    }
    sweep = run_sweep(dataset, methods, thetas=(0.5, 1.0), folds=3, seed=0)
    wins_fd, wins_svm, p = compare_methods(sweep, "FakeDetector", "svm")
    print(f"  FakeDetector wins {wins_fd}, SVM wins {wins_svm}, sign-test p={p:.3f}")


if __name__ == "__main__":
    main()
