"""repro — reproduction of FakeDetector (Zhang et al., ICDE 2020).

A from-scratch Python implementation of the deep diffusive network for fake
news credibility inference, including its full substrate stack: a numpy
autodiff engine, text pipeline, heterogeneous network, synthetic PolitiFact
corpus, the five comparison baselines and the paper's evaluation harness.

Quickstart::

    from repro import generate_dataset, FakeDetector, FakeDetectorConfig
    from repro.graph.sampling import tri_splits

    dataset = generate_dataset(scale=0.05)
    split = next(tri_splits(sorted(dataset.articles),
                            sorted(dataset.creators),
                            sorted(dataset.subjects), k=10, seed=0))
    detector = FakeDetector(FakeDetectorConfig(epochs=40)).fit(dataset, split)
    predictions = detector.predict("article")
"""

from .core import FakeDetector, FakeDetectorConfig, FakeDetectorModel, GDU, HFLU, Prediction
from .data import (
    CredibilityLabel,
    NewsDataset,
    generate_dataset,
    load_dataset,
    save_dataset,
)
from .graph import HeterogeneousNetwork

__version__ = "1.0.0"

__all__ = [
    "FakeDetector",
    "FakeDetectorConfig",
    "FakeDetectorModel",
    "Prediction",
    "HFLU",
    "GDU",
    "NewsDataset",
    "CredibilityLabel",
    "generate_dataset",
    "save_dataset",
    "load_dataset",
    "HeterogeneousNetwork",
    "__version__",
]
