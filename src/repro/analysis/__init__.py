"""Static analysis + runtime sanitizing for the autograd/training stack.

Three halves guarding the invariants the paper's math depends on:

- :mod:`repro.analysis.lint` — a multi-pass analyzer. Per-file rules
  (RA0xx in :mod:`repro.analysis.rules`) cover repo-specific failure
  classes: unlogged prints, unseeded randomness, late-bound loop
  closures, in-place tape mutation, swallowed exceptions. Whole-program
  passes over the shared :mod:`repro.analysis.program` index cover the
  architecture contract (RA1xx, :mod:`repro.analysis.arch`), concurrency
  and fork-safety (RA2xx, :mod:`repro.analysis.concurrency`) and a
  tensor-shape abstract interpreter (RA3xx,
  :mod:`repro.analysis.shapes`). CLI: ``repro lint [--pass ...]``.
- :mod:`repro.analysis.sanitize` — a runtime tape sanitizer hooked into
  every autograd op: NaN/Inf guard, in-place-mutation detector,
  dead-parameter auditor; plus :mod:`repro.analysis.contracts` shape/dtype
  contract checks for Linear/GRU/GDU layers. CLI: ``repro train
  --sanitize``; API: ``detector.fit(ds, split, sanitize=True)``.

``repro analysis report`` renders the combined rule summary and
``repro analysis deps`` the import-layer graph. See ``docs/analysis.md``
for the pass architecture and rule catalogue.
"""

from .contracts import ContractChecker, ContractViolation, named_modules
from .lint import (
    Finding,
    LintResult,
    baseline_payload,
    lint_paths,
    lint_source,
    lint_sources,
    load_baseline,
    new_findings,
    noqa_rules_for_line,
    render_findings,
)
from .passes import PASS_NAMES, all_rules, resolve_passes, resolve_selection
from .program import ProgramIndex, render_deps
from .report import render_summary, summarize
from .rules import ALL_RULES, RULES_BY_ID, Evidence, resolve_rules
from .sanitize import (
    DeadParameter,
    NumericalFaultError,
    Sanitizer,
    SanitizerError,
    SanitizerStats,
    TapeCorruptionError,
    audit_parameters,
)

__all__ = [
    # lint
    "ALL_RULES",
    "PASS_NAMES",
    "RULES_BY_ID",
    "Evidence",
    "Finding",
    "LintResult",
    "ProgramIndex",
    "all_rules",
    "baseline_payload",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "load_baseline",
    "new_findings",
    "noqa_rules_for_line",
    "render_deps",
    "render_findings",
    "resolve_passes",
    "resolve_rules",
    "resolve_selection",
    # report
    "render_summary",
    "summarize",
    # sanitize
    "ContractChecker",
    "ContractViolation",
    "DeadParameter",
    "NumericalFaultError",
    "Sanitizer",
    "SanitizerError",
    "SanitizerStats",
    "TapeCorruptionError",
    "audit_parameters",
    "named_modules",
]
