"""Static analysis + runtime sanitizing for the autograd/training stack.

Two halves guarding the invariants the paper's math depends on:

- :mod:`repro.analysis.lint` — a custom AST rule engine (rules RA001–RA005
  in :mod:`repro.analysis.rules`) over repo-specific failure classes:
  unlogged prints, unseeded randomness, late-bound loop closures, in-place
  tape mutation, swallowed exceptions. CLI: ``repro lint``.
- :mod:`repro.analysis.sanitize` — a runtime tape sanitizer hooked into
  every autograd op: NaN/Inf guard, in-place-mutation detector,
  dead-parameter auditor; plus :mod:`repro.analysis.contracts` shape/dtype
  contract checks for Linear/GRU/GDU layers. CLI: ``repro train
  --sanitize``; API: ``detector.fit(ds, split, sanitize=True)``.

``repro analysis report`` renders the combined rule summary. See
``docs/analysis.md`` for the rule catalogue and sanitizer semantics.
"""

from .contracts import ContractChecker, ContractViolation, named_modules
from .lint import (
    Finding,
    LintResult,
    lint_paths,
    lint_source,
    noqa_rules_for_line,
    render_findings,
)
from .report import render_summary, summarize
from .rules import ALL_RULES, RULES_BY_ID, resolve_rules
from .sanitize import (
    DeadParameter,
    NumericalFaultError,
    Sanitizer,
    SanitizerError,
    SanitizerStats,
    TapeCorruptionError,
    audit_parameters,
)

__all__ = [
    # lint
    "ALL_RULES",
    "RULES_BY_ID",
    "Finding",
    "LintResult",
    "lint_paths",
    "lint_source",
    "noqa_rules_for_line",
    "render_findings",
    "resolve_rules",
    # report
    "render_summary",
    "summarize",
    # sanitize
    "ContractChecker",
    "ContractViolation",
    "DeadParameter",
    "NumericalFaultError",
    "Sanitizer",
    "SanitizerError",
    "SanitizerStats",
    "TapeCorruptionError",
    "audit_parameters",
    "named_modules",
]
