"""Architecture pass (RA1xx): the import-layer contract, enforced.

The repo's layering is a DAG over top-level subpackages. Lower layers
must be importable without dragging in anything above them — that is what
keeps ``autograd`` embeddable, ``obs`` reachable only through its seams
(the :func:`repro.autograd.tensor.instrument_op` hook layer and the
``get_logger``/``trace`` facade), and the serving stack restartable.

::

    layer 6   cli  __main__          (entry points; nothing imports them)
    layer 5   experiments
    layer 4   analysis  baselines  serve
    layer 3   core
    layer 2   graph  metrics
    layer 1   data  obs
    layer 0   autograd  text

The contract applies to *eager* (module-level) imports — the edges that
execute at import time. Function-level deferred imports are the sanctioned
escape for optional upward coupling (e.g. ``core.trainer`` reaching
``serve.checkpoint`` inside ``save()``), with one exception: nothing may
import ``cli`` even lazily, except ``__main__``.

Rules
-----
RA101  eager import from a higher layer (layering violation)
RA102  eager import cycle between modules
RA103  dead module: nothing in the program imports it
RA104  dead symbol: public class/function/method/constant never referenced
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from .passes import ProgramRule
from .program import ProgramIndex
from .rules import Evidence, Finding

#: Subpackage → layer rank. Imports must point at the same or a lower rank.
LAYERS: Dict[str, int] = {
    "autograd": 0,
    "text": 0,
    "data": 1,
    "obs": 1,
    "graph": 2,
    "metrics": 2,
    "core": 3,
    "analysis": 4,
    "baselines": 4,
    "serve": 4,
    "experiments": 5,
    "cli": 6,
    "__main__": 6,
}

#: Rank for the package root (``repro/__init__.py``) — it is a facade over
#: everything, so it sits at the top.
_ROOT_RANK = 6


def layer_of(index: ProgramIndex, module: str) -> Optional[int]:
    """Layer rank for an indexed module, ``None`` outside the contract."""
    sub = index.subpackage_of(module)
    if sub == index.package:
        return _ROOT_RANK
    return LAYERS.get(sub)


class LayeringRule(ProgramRule):
    """RA101: eager imports must stay at or below the importer's layer."""

    id = "RA101"
    title = "import layering violation"
    hint = (
        "move the dependency down a layer, route it through an existing "
        "seam (the obs logger facade, the autograd hook layer), or defer "
        "the import into the function that needs it"
    )

    def check(self, index: ProgramIndex) -> Iterator[Finding]:
        for info in index.modules.values():
            source_rank = layer_of(index, info.name)
            if source_rank is None:
                continue
            for edge in info.imports:
                targets = sorted(index.resolved_targets(edge))
                for target in targets:
                    if target == info.name:
                        continue
                    if info.name.startswith(target + "."):
                        continue  # ancestor package: implicit, not an edge
                    yield from self._check_edge(index, info, edge, target)

    def _check_edge(self, index, info, edge, target) -> Iterator[Finding]:
        source_rank = layer_of(index, info.name)
        target_rank = layer_of(index, target)
        if target_rank is None:
            return
        if index.subpackage_of(info.name) == index.subpackage_of(target):
            return
        # cli is an entry point, never a library: even deferred imports
        # of it are wrong (only __main__ may).
        if (
            index.subpackage_of(target) == "cli"
            and index.subpackage_of(info.name) != "__main__"
        ):
            yield self.finding(
                info.path,
                edge.lineno,
                f"{info.name} imports the cli entry point "
                f"({target}); cli is not a library",
                evidence=[
                    Evidence(info.path, edge.lineno, "import site"),
                    Evidence(index.modules[target].path, 1, "entry point"),
                ],
            )
            return
        if edge.deferred:
            return
        if target_rank > source_rank:
            yield self.finding(
                info.path,
                edge.lineno,
                f"{info.name} (layer {source_rank}) eagerly imports "
                f"{target} (layer {target_rank}); defer the import "
                "or invert the dependency",
                evidence=[
                    Evidence(info.path, edge.lineno, "eager import site"),
                    Evidence(
                        index.modules[target].path,
                        1,
                        f"layer-{target_rank} target",
                    ),
                ],
            )


class ImportCycleRule(ProgramRule):
    """RA102: the eager import graph must stay a DAG."""

    id = "RA102"
    title = "import cycle"
    hint = (
        "break the cycle by moving the shared definition into a lower "
        "module or deferring one direction into a function body"
    )

    def check(self, index: ProgramIndex) -> Iterator[Finding]:
        for cycle in index.import_cycles():
            anchor = index.modules[cycle[0]]
            # Evidence: one import site per participating module.
            evidence = []
            members = set(cycle)
            for name in cycle:
                info = index.modules[name]
                for edge in info.imports:
                    if edge.deferred:
                        continue
                    hits = [
                        t
                        for t in sorted(index.resolved_targets(edge))
                        if t in members and t != name
                    ]
                    if hits:
                        evidence.append(
                            Evidence(
                                info.path,
                                edge.lineno,
                                f"{name} -> {hits[0]}",
                            )
                        )
                        break
            yield self.finding(
                anchor.path,
                1,
                "eager import cycle: " + " -> ".join(cycle + [cycle[0]]),
                evidence=evidence,
            )


class DeadModuleRule(ProgramRule):
    """RA103: every module must be imported by something (or be a root)."""

    id = "RA103"
    title = "dead module"
    hint = (
        "delete the module, or wire it into the package (re-export from "
        "the subpackage __init__); entry points (cli, __main__) and "
        "package __init__ modules are exempt"
    )

    _EXEMPT_SUBPACKAGES = ("cli", "__main__")

    def check(self, index: ProgramIndex) -> Iterator[Finding]:
        for info in index.modules.values():
            if info.is_package:
                continue
            sub = index.subpackage_of(info.name)
            if sub in self._EXEMPT_SUBPACKAGES or sub == index.package:
                continue
            if index.importers_of(info.name):
                continue
            yield self.finding(
                info.path,
                1,
                f"module {info.name} is never imported (dead subtree?)",
            )


def _deprecated_methods(info) -> Dict[str, Tuple[str, int]]:
    """``method name -> (class, lineno)`` for deprecation-marked methods.

    A method counts as deprecated when its docstring says so or its body
    calls a ``*deprecated*`` helper — the two conventions this repo uses.
    """
    out: Dict[str, Tuple[str, int]] = {}
    for stmt in info.tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        for item in stmt.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            doc = ast.get_docstring(item) or ""
            marked = "deprecated" in doc.lower()
            if not marked:
                for node in ast.walk(item):
                    if isinstance(node, ast.Call):
                        callee = node.func
                        name = getattr(
                            callee, "id", getattr(callee, "attr", "")
                        )
                        if "deprecated" in name.lower():
                            marked = True
                            break
            if marked:
                out[item.name] = (stmt.name, item.lineno)
    return out


class DeadSymbolRule(ProgramRule):
    """RA104: public symbols must be referenced somewhere in the program.

    Reachability is the conservative name-based approximation of
    :meth:`ProgramIndex.used_names` — any name load, attribute use,
    import, ``__all__`` entry or getattr literal anywhere counts, so a
    module's ``__all__`` declaration is the sanctioned way to mark
    intended API the program itself does not call.

    Scope is deliberately narrow: top-level functions and classes, plus
    methods that are explicitly *deprecated* (docstring or a
    ``*deprecated*`` helper call). General method liveness over a
    name-based approximation is too noisy to gate a build on; a
    deprecated method nothing references is exactly the dead code the
    deprecation was waiting to delete.
    """

    id = "RA104"
    title = "unreferenced public symbol"
    hint = (
        "delete the symbol, or declare it in the module's __all__ if it "
        "is intended API for external surfaces (tests, embedding code)"
    )

    def check(self, index: ProgramIndex) -> Iterator[Finding]:
        used = index.used_names()
        for info in index.modules.values():
            if info.is_package:
                continue
            for name, symbol in sorted(info.symbols.items()):
                if name.startswith("_") or name in ("main",):
                    continue
                if symbol.kind not in ("function", "class"):
                    continue
                if name not in used:
                    yield self.finding(
                        info.path,
                        symbol.lineno,
                        f"public {symbol.kind} {name!r} is never "
                        "referenced anywhere in the program",
                    )
            for method, (cls, lineno) in sorted(
                _deprecated_methods(info).items()
            ):
                if method.startswith("_") or method in used:
                    continue
                yield self.finding(
                    info.path,
                    lineno,
                    f"deprecated method {cls}.{method}() is never called "
                    "anywhere in the program; delete it",
                )


ARCH_RULES = (
    LayeringRule(),
    ImportCycleRule(),
    DeadModuleRule(),
    DeadSymbolRule(),
)
