"""Concurrency/fork-safety pass (RA2xx) over the serving and obs stacks.

The serving stack mixes ``multiprocessing`` workers, a collector thread
and queue-based shutdown; the obs stack layers contextvars on top. The
failure modes of that mix are well known — a lock held across ``fork()``
deadlocks the child, a blocking ``Queue.get()`` with no timeout wedges
shutdown, a contextvar set without its reset token leaks request state —
and all of them are statically visible. This pass proves their absence.

Everything here is a conservative syntactic approximation over the
:class:`~repro.analysis.program.ProgramIndex`: lock/queue/contextvar
objects are recognized by their constructor calls (``threading.Lock()``,
``ctx.Queue()``, ``ContextVar(...)``), fork sites by ``Process(...)``
instantiations and ``os.fork()``, and reachability by a one-level
call-name propagation (``PredictionService.start()`` calls
``spawn_worker()`` which instantiates ``ctx.Process`` — the lock on the
service is therefore fork-reachable, with the cross-module evidence chain
attached to the finding).

Rules
-----
RA201  explicit ``lock.acquire()`` instead of ``with lock:``
RA202  lock or open file handle reachable at a fork site
RA203  module-level mutable state mutated from a worker entrypoint
RA204  blocking ``queue.get()`` without timeout inside a loop
RA205  ``Thread(...)`` without both ``daemon=`` and ``name=``
RA206  contextvar ``.set()`` with the reset token discarded
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .passes import ProgramRule
from .program import ModuleInfo, ProgramIndex
from .rules import Evidence, Finding

_LOCK_CTORS = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
_QUEUE_CTORS = {
    "Queue",
    "SimpleQueue",
    "JoinableQueue",
    "LifoQueue",
    "PriorityQueue",
}
_MUTATOR_METHODS = {
    "append",
    "add",
    "update",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "setdefault",
    "appendleft",
}


def _terminal(node: ast.AST) -> Optional[str]:
    """Last identifier of a ``Name``/``Attribute`` chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@dataclasses.dataclass
class CallSite:
    scope: str  #: enclosing qualname ("Class.method" or "<module>")
    name: str  #: terminal called name
    lineno: int
    node: ast.Call
    loop_depth: int


@dataclasses.dataclass
class ModuleScan:
    """Concurrency-relevant facts extracted from one module."""

    info: ModuleInfo
    #: simple names bound to lock constructors (locals/globals/params-by-name)
    lock_names: Set[str] = dataclasses.field(default_factory=set)
    #: class -> {attr: lineno} for ``self.x = threading.Lock()``
    lock_attrs: Dict[str, Dict[str, int]] = dataclasses.field(
        default_factory=dict
    )
    #: class -> {attr: lineno} for ``self.x = open(...)``
    open_attrs: Dict[str, Dict[str, int]] = dataclasses.field(
        default_factory=dict
    )
    #: module-level lock names -> lineno
    module_locks: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: names bound to queue constructors anywhere in the module
    queue_names: Set[str] = dataclasses.field(default_factory=set)
    #: names bound to ``ContextVar(...)``
    contextvar_names: Set[str] = dataclasses.field(default_factory=set)
    #: module-level mutable containers: name -> lineno
    mutable_globals: Dict[str, int] = dataclasses.field(default_factory=dict)
    call_sites: List[CallSite] = dataclasses.field(default_factory=list)


class _ScanVisitor(ast.NodeVisitor):
    def __init__(self, scan: ModuleScan):
        self.scan = scan
        self._class_stack: List[str] = []
        self._func_stack: List[str] = []
        self._loop_depth = 0

    def _scope(self) -> str:
        return ".".join(self._class_stack + self._func_stack) or "<module>"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        try:
            self.generic_visit(node)
        finally:
            self._class_stack.pop()

    def _visit_function(self, node) -> None:
        self._func_stack.append(node.name)
        try:
            self.generic_visit(node)
        finally:
            self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _visit_loop(self, node) -> None:
        self._loop_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._loop_depth -= 1

    visit_While = _visit_loop
    visit_For = _visit_loop

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        ctor = _terminal(value.func) if isinstance(value, ast.Call) else None
        for target in node.targets:
            if isinstance(target, ast.Name):
                if ctor in _LOCK_CTORS:
                    self.scan.lock_names.add(target.id)
                    if not self._func_stack and not self._class_stack:
                        self.scan.module_locks[target.id] = node.lineno
                elif ctor in _QUEUE_CTORS:
                    self.scan.queue_names.add(target.id)
                elif ctor == "ContextVar":
                    self.scan.contextvar_names.add(target.id)
                elif (
                    not self._func_stack
                    and not self._class_stack
                    and _is_mutable_literal(value)
                ):
                    self.scan.mutable_globals[target.id] = node.lineno
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self._class_stack
            ):
                cls = self._class_stack[-1]
                if ctor in _LOCK_CTORS:
                    self.scan.lock_attrs.setdefault(cls, {})[
                        target.attr
                    ] = node.lineno
                    self.scan.lock_names.add(target.attr)
                elif ctor == "open":
                    self.scan.open_attrs.setdefault(cls, {})[
                        target.attr
                    ] = node.lineno
                elif ctor in _QUEUE_CTORS:
                    self.scan.queue_names.add(target.attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _terminal(node.func)
        if name is not None:
            self.scan.call_sites.append(
                CallSite(
                    scope=self._scope(),
                    name=name,
                    lineno=node.lineno,
                    node=node,
                    loop_depth=self._loop_depth,
                )
            )
        self.generic_visit(node)


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set)):
        return True
    if isinstance(node, (ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("dict", "list", "set", "defaultdict", "deque")
    return False


def _scans(index: ProgramIndex) -> Dict[str, ModuleScan]:
    cached = getattr(index, "_concurrency_scans", None)
    if cached is not None:
        return cached
    scans: Dict[str, ModuleScan] = {}
    for name, info in index.modules.items():
        scan = ModuleScan(info=info)
        _ScanVisitor(scan).visit(info.tree)
        scans[name] = scan
    index._concurrency_scans = scans
    return scans


class ExplicitAcquireRule(ProgramRule):
    """RA201: locks must be held via ``with``, not bare ``acquire()``."""

    id = "RA201"
    title = "explicit lock acquire"
    hint = (
        "hold the lock with `with lock:` so every exit path releases it; "
        "if a timeout acquire is genuinely needed, suppress with a reason"
    )

    def check(self, index: ProgramIndex) -> Iterator[Finding]:
        for scan in _scans(index).values():
            for site in scan.call_sites:
                if site.name != "acquire":
                    continue
                if not isinstance(site.node.func, ast.Attribute):
                    continue
                owner = _terminal(site.node.func.value)
                if owner in scan.lock_names:
                    yield self.finding(
                        scan.info.path,
                        site.lineno,
                        f"{owner}.acquire() outside a with-block; an "
                        "exception between acquire and release deadlocks "
                        "every other holder",
                    )


class ForkReachableStateRule(ProgramRule):
    """RA202: no lock/open handle may be live where a child is forked.

    A forked child inherits a *copy* of every lock — if the parent (or any
    of its threads) holds the lock at fork time, the child's copy is
    locked forever. Fork sites are ``Process(...)`` instantiations and
    ``os.fork()``; reachability follows one level of calls, which is what
    connects ``PredictionService.start()`` to the ``ctx.Process`` site
    inside ``spawn_worker()`` across modules.
    """

    id = "RA202"
    title = "lock or handle reachable at fork"
    hint = (
        "create locks/handles after forking, or guarantee (and document "
        "via a suppression) that no thread holds them when workers spawn"
    )

    def check(self, index: ProgramIndex) -> Iterator[Finding]:
        scans = _scans(index)
        # (module, scope, evidence-to-fork) triples.
        reachable: List[Tuple[ModuleInfo, str, Tuple[Evidence, ...]]] = []
        fork_fns: List[Tuple[ModuleInfo, str, int]] = []
        for scan in scans.values():
            for site in scan.call_sites:
                if site.name == "Process" or (
                    site.name == "fork"
                    and isinstance(site.node.func, ast.Attribute)
                ):
                    fork_fns.append((scan.info, site.scope, site.lineno))
        for info, scope, lineno in fork_fns:
            fork_ev = Evidence(
                info.path, lineno, f"fork site in {scope}()"
            )
            reachable.append((info, scope, (fork_ev,)))
            terminal = scope.rsplit(".", 1)[-1]
            if terminal == "<module>":
                continue
            for caller_info, caller_scope in index.functions_containing_call(
                terminal
            ):
                if caller_info.name == info.name and caller_scope == scope:
                    continue
                call_line = next(
                    (
                        s.lineno
                        for s in scans[caller_info.name].call_sites
                        if s.scope == caller_scope and s.name == terminal
                    ),
                    1,
                )
                reachable.append(
                    (
                        caller_info,
                        caller_scope,
                        (
                            Evidence(
                                caller_info.path,
                                call_line,
                                f"{caller_scope}() calls {terminal}()",
                            ),
                            fork_ev,
                        ),
                    )
                )
        seen: Set[str] = set()
        for info, scope, evidence in reachable:
            scan = scans[info.name]
            holders: List[Tuple[str, int, str]] = []
            if "." in scope:
                cls = scope.split(".")[0]
                for attr, line in scan.lock_attrs.get(cls, {}).items():
                    holders.append((f"self.{attr}", line, "lock"))
                for attr, line in scan.open_attrs.get(cls, {}).items():
                    holders.append((f"self.{attr}", line, "open file handle"))
            for name, line in scan.module_locks.items():
                holders.append((name, line, "module-level lock"))
            for display, line, kind in holders:
                finding = self.finding(
                    info.path,
                    line,
                    f"{kind} {display} is reachable at a fork site via "
                    f"{scope}(); the forked child inherits its state",
                    evidence=(
                        Evidence(info.path, line, f"{kind} created here"),
                    )
                    + evidence,
                )
                if finding.fingerprint() not in seen:
                    seen.add(finding.fingerprint())
                    yield finding


class WorkerGlobalMutationRule(ProgramRule):
    """RA203: worker entrypoints must not mutate module-level state.

    A function passed as ``Process(target=...)`` runs in a child whose
    module globals are a private copy — mutating them is at best a no-op
    visible only in the child and at worst an aliasing bug when the start
    method is ``fork``. Mutations guarded by ``with <lock>:`` are exempt
    (that pattern is deliberate single-process fallback code).
    """

    id = "RA203"
    title = "worker entrypoint mutates module state"
    hint = (
        "pass state through the queue protocol or return values; "
        "module-level caches do not cross the process boundary"
    )

    def check(self, index: ProgramIndex) -> Iterator[Finding]:
        for scan in _scans(index).values():
            entrypoints: Set[str] = set()
            for site in scan.call_sites:
                if site.name != "Process":
                    continue
                for kw in site.node.keywords:
                    if kw.arg == "target" and isinstance(kw.value, ast.Name):
                        entrypoints.add(kw.value.id)
            if not entrypoints or not scan.mutable_globals:
                continue
            for stmt in scan.info.tree.body:
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if stmt.name not in entrypoints:
                    continue
                yield from self._check_entry(scan, stmt)

    def _check_entry(self, scan: ModuleScan, fn) -> Iterator[Finding]:
        finder = _MutationFinder(scan)
        finder.visit_body(fn.body)
        for name, lineno in finder.mutations:
            yield self.finding(
                scan.info.path,
                lineno,
                f"worker entrypoint {fn.name}() mutates module-level "
                f"{name!r}; the write stays in the child process",
                evidence=(
                    Evidence(
                        scan.info.path,
                        scan.mutable_globals[name],
                        f"{name} defined at module level",
                    ),
                    Evidence(scan.info.path, lineno, "mutated here"),
                ),
            )


class _MutationFinder(ast.NodeVisitor):
    """Find mutations of module-level containers outside lock guards."""

    def __init__(self, scan: ModuleScan):
        self.scan = scan
        self.mutations: List[Tuple[str, int]] = []
        self._lock_depth = 0

    def visit_body(self, body) -> None:
        for stmt in body:
            self.visit(stmt)

    def visit_With(self, node: ast.With) -> None:
        guarded = any(
            _terminal(item.context_expr) in self.scan.lock_names
            or (
                isinstance(item.context_expr, ast.Call)
                and _terminal(item.context_expr.func) in self.scan.lock_names
            )
            for item in node.items
        )
        if guarded:
            self._lock_depth += 1
        try:
            self.generic_visit(node)
        finally:
            if guarded:
                self._lock_depth -= 1

    def _record(self, name: Optional[str], lineno: int) -> None:
        if (
            name in self.scan.mutable_globals
            and self._lock_depth == 0
        ):
            self.mutations.append((name, lineno))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                self._record(target.value.id, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Subscript) and isinstance(
            node.target.value, ast.Name
        ):
            self._record(node.target.value.id, node.lineno)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
            and isinstance(func.value, ast.Name)
        ):
            self._record(func.value.id, node.lineno)
        self.generic_visit(node)


class BlockingGetRule(ProgramRule):
    """RA204: loop-driven ``queue.get()`` must carry a timeout.

    A ``get()`` with no timeout inside a receive loop can only be
    interrupted by a sentinel that may never arrive (the producer died,
    the queue is corrupted after a hard kill) — shutdown then hangs. A
    timeout plus a stop-flag check bounds that hang.
    """

    id = "RA204"
    title = "blocking queue get without timeout"
    hint = (
        "use get(timeout=...) and re-check the stop condition on "
        "queue.Empty, keeping the sentinel as the fast path"
    )

    def check(self, index: ProgramIndex) -> Iterator[Finding]:
        for scan in _scans(index).values():
            for site in scan.call_sites:
                if site.name != "get" or site.loop_depth == 0:
                    continue
                if not isinstance(site.node.func, ast.Attribute):
                    continue
                owner = _terminal(site.node.func.value)
                if owner not in scan.queue_names:
                    continue
                if _get_is_bounded(site.node):
                    continue
                yield self.finding(
                    scan.info.path,
                    site.lineno,
                    f"{owner}.get() blocks forever inside a loop; shutdown "
                    "relies entirely on a sentinel arriving",
                )


def _get_is_bounded(node: ast.Call) -> bool:
    if any(kw.arg == "timeout" for kw in node.keywords):
        return True
    if len(node.args) >= 2:  # get(block, timeout)
        return True
    if len(node.args) == 1:
        arg = node.args[0]
        # get(False) / get(block=False) is non-blocking.
        return isinstance(arg, ast.Constant) and arg.value is False
    if any(
        kw.arg == "block"
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is False
        for kw in node.keywords
    ):
        return True
    return False


class AnonymousThreadRule(ProgramRule):
    """RA205: threads must be named and explicitly daemon or not."""

    id = "RA205"
    title = "thread without daemon=/name="
    hint = (
        "pass name= (so stack dumps and logs are attributable) and an "
        "explicit daemon= (so shutdown semantics are a decision, not a "
        "default)"
    )

    def check(self, index: ProgramIndex) -> Iterator[Finding]:
        for scan in _scans(index).values():
            for site in scan.call_sites:
                if site.name != "Thread":
                    continue
                kwargs = {kw.arg for kw in site.node.keywords}
                missing = [k for k in ("daemon", "name") if k not in kwargs]
                if missing:
                    yield self.finding(
                        scan.info.path,
                        site.lineno,
                        "Thread(...) missing " + ", ".join(missing) + "=",
                    )


class DiscardedContextTokenRule(ProgramRule):
    """RA206: contextvar ``.set()`` must keep its token for ``reset()``.

    Discarding the token (a bare ``VAR.set(...)`` statement) makes the
    previous value unrecoverable — nested scopes then tear down to the
    wrong state. Returning or storing the token is fine; that is exactly
    what the ``set_context``/``reset_context`` seam does.
    """

    id = "RA206"
    title = "contextvar set without reset token"
    hint = (
        "capture the token and reset in a finally block, or route through "
        "the obs set_context/reset_context seam"
    )

    def check(self, index: ProgramIndex) -> Iterator[Finding]:
        scans = _scans(index)
        # Contextvars may be imported across modules; match on the union.
        all_cvars: Set[str] = set()
        for scan in scans.values():
            all_cvars |= scan.contextvar_names
        if not all_cvars:
            return
        for scan in scans.values():
            for node in ast.walk(scan.info.tree):
                if not isinstance(node, ast.Expr):
                    continue
                call = node.value
                if not isinstance(call, ast.Call):
                    continue
                if not isinstance(call.func, ast.Attribute):
                    continue
                if call.func.attr != "set":
                    continue
                owner = _terminal(call.func.value)
                if owner in all_cvars:
                    yield self.finding(
                        scan.info.path,
                        node.lineno,
                        f"{owner}.set(...) discards the reset token; the "
                        "previous context can never be restored",
                    )


CONCURRENCY_RULES = (
    ExplicitAcquireRule(),
    ForkReachableStateRule(),
    WorkerGlobalMutationRule(),
    BlockingGetRule(),
    AnonymousThreadRule(),
    DiscardedContextTokenRule(),
)
