"""Shape/dtype contract checker for the model's structured layers.

Numpy broadcasting makes many wiring mistakes *silently legal*: a GDU fed a
state of the wrong width happily concatenates and matmuls into a cryptic
shape error three ops later (or, worse, broadcasts into a wrong-but-valid
result). :class:`ContractChecker` patches the ``forward`` of every
:class:`~repro.autograd.nn.Linear`, RNN cell and
:class:`~repro.core.gdu.GDU` instance in a module tree with an explicit
precondition check, so violations raise :class:`ContractViolation` naming
the offending submodule *by its dotted path* at the call boundary::

    with ContractChecker(model):
        model(features, graph)   # raises e.g. "gdu_article: GDU expected
                                 # z width 16, got 12"

The checker is a context manager and restores the original methods on
exit; like the sanitizer it never alters values, only validates them.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

import numpy as np

from ..autograd.nn import Linear, Module
from ..autograd.rnn import GRUCell, LSTMCell, RNNCell
from .sanitize import SanitizerError


class ContractViolation(SanitizerError):
    """A layer was called with arguments violating its shape/dtype contract."""


def named_modules(module: Module, prefix: str = "") -> Iterator[Tuple[str, Module]]:
    """Yield ``(dotted_path, module)`` for a module and all descendants."""
    yield prefix or "<root>", module
    for name, child in module._modules.items():
        child_prefix = f"{prefix}.{name}" if prefix else name
        yield from named_modules(child, child_prefix)


def _shape_of(value) -> tuple:
    data = getattr(value, "data", value)
    return np.asarray(data).shape


def _dtype_of(value):
    data = getattr(value, "data", value)
    return np.asarray(data).dtype


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        raise ContractViolation(f"{path}: {message}")


def _check_float64(path: str, role: str, value) -> None:
    dtype = _dtype_of(value)
    _require(
        dtype == np.float64,
        path,
        f"{role} dtype must be float64 (the engine's gradcheck precision), got {dtype}",
    )


def _validate_linear(path: str, layer: Linear, args, kwargs) -> None:
    if not args:
        return
    x = args[0]
    shape = _shape_of(x)
    _require(len(shape) >= 1, path, "Linear input must have at least 1 dimension")
    _require(
        shape[-1] == layer.in_features,
        path,
        f"Linear expected input width {layer.in_features}, got {shape[-1]} "
        f"(input shape {shape})",
    )
    if isinstance(getattr(x, "data", None), np.ndarray):
        _check_float64(path, "input", x)


def _validate_rnn_cell(path: str, cell, args, kwargs) -> None:
    if not args:
        return
    x = args[0]
    shape = _shape_of(x)
    _require(
        shape[-1] == cell.input_size,
        path,
        f"{type(cell).__name__} expected input width {cell.input_size}, "
        f"got {shape[-1]} (input shape {shape})",
    )
    if len(args) < 2:
        return
    state = args[1]
    states = state if isinstance(state, tuple) else (state,)
    for role, s in zip(("h", "c"), states):
        s_shape = _shape_of(s)
        _require(
            s_shape[-1] == cell.hidden_size,
            path,
            f"{type(cell).__name__} expected {role} width {cell.hidden_size}, "
            f"got {s_shape[-1]} (state shape {s_shape})",
        )
        _require(
            s_shape[:-1] == shape[:-1],
            path,
            f"{type(cell).__name__} batch mismatch: input {shape}, {role} {s_shape}",
        )


def _validate_gdu(path: str, gdu, args, kwargs) -> None:
    if len(args) < 3:
        return
    x, z, t = args[:3]
    x_shape, z_shape, t_shape = _shape_of(x), _shape_of(z), _shape_of(t)
    _require(
        len(x_shape) == 2 and len(z_shape) == 2 and len(t_shape) == 2,
        path,
        f"GDU inputs must be 2-D batches, got x={x_shape}, z={z_shape}, t={t_shape}",
    )
    _require(
        x_shape[1] == gdu.input_dim,
        path,
        f"GDU expected x width {gdu.input_dim}, got {x_shape[1]}",
    )
    _require(
        z_shape[1] == gdu.hidden_dim,
        path,
        f"GDU expected z width {gdu.hidden_dim}, got {z_shape[1]}",
    )
    _require(
        t_shape[1] == gdu.hidden_dim,
        path,
        f"GDU expected t width {gdu.hidden_dim}, got {t_shape[1]}",
    )
    _require(
        x_shape[0] == z_shape[0] == t_shape[0],
        path,
        f"GDU batch mismatch: x={x_shape[0]}, z={z_shape[0]}, t={t_shape[0]}",
    )
    for role, value in (("x", x), ("z", z), ("t", t)):
        if isinstance(getattr(value, "data", None), np.ndarray):
            _check_float64(path, role, value)


def _validator_for(module: Module) -> Callable | None:
    # GDU is imported lazily to keep analysis importable without core.
    from ..core.gdu import GDU

    if isinstance(module, Linear):
        return _validate_linear
    if isinstance(module, GDU):
        return _validate_gdu
    if isinstance(module, (GRUCell, LSTMCell, RNNCell)):
        return _validate_rnn_cell
    return None


class ContractChecker:
    """Context manager installing per-instance forward preconditions."""

    def __init__(self, module: Module):
        self.module = module
        self._patched: List[Module] = []

    def __enter__(self) -> "ContractChecker":
        for path, sub in named_modules(self.module):
            validator = _validator_for(sub)
            if validator is None:
                continue
            if "forward" in sub.__dict__:  # already patched (shared submodule)
                continue
            original = sub.forward  # bound method from the class

            def checked_forward(
                *args, _validator=validator, _path=path, _sub=sub, _orig=original, **kwargs
            ):
                _validator(_path, _sub, args, kwargs)
                return _orig(*args, **kwargs)

            object.__setattr__(sub, "forward", checked_forward)
            self._patched.append(sub)
        return self

    def __exit__(self, *exc_info) -> None:
        for sub in self._patched:
            try:
                object.__delattr__(sub, "forward")
            except AttributeError:
                pass
        self._patched.clear()
