"""Lint engine: walk files, run rules, honor suppressions, render reports.

The engine is intentionally tiny — files are parsed once, every selected
rule runs over the shared :class:`~repro.analysis.rules.FileContext`, and
findings on lines carrying a ``# repro: noqa[...]`` marker are moved to the
*suppressed* list (they still appear in the JSON report, so suppressions
are auditable, but they do not fail the run).

Suppression syntax::

    risky_call()  # repro: noqa[RA002] layer init is explicitly random
    another()     # repro: noqa  -- blanket, suppresses every rule

CLI: ``repro lint [paths] [--select RA001,RA004] [--json] [--fix-hints]``.
"""

from __future__ import annotations

import dataclasses
import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .rules import ALL_RULES, FileContext, Finding, Rule, resolve_rules

#: matches ``# repro: noqa`` with an optional ``[RA001,RA002]`` rule list
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")


def noqa_rules_for_line(line: str) -> Optional[Set[str]]:
    """Rule ids suppressed on ``line``.

    Returns ``None`` when the line has no marker, the empty set for a
    blanket ``# repro: noqa`` (suppresses everything), or the explicit set
    of rule ids.
    """
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return set()
    return {r.strip().upper() for r in rules.split(",") if r.strip()}


def _is_suppressed(finding: Finding, lines: List[str]) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    rules = noqa_rules_for_line(lines[finding.line - 1])
    if rules is None:
        return False
    return not rules or finding.rule in rules


@dataclasses.dataclass
class LintResult:
    """Outcome of one lint run over a set of files."""

    findings: List[Finding]
    suppressed: List[Finding]
    files_checked: int
    #: files that failed to parse: [(path, error message)]
    errors: List[Tuple[str, str]] = dataclasses.field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        """Stable JSON payload (sorted findings, schema-versioned)."""
        return {
            "schema": "repro.analysis.lint/1",
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in sorted(self.findings)],
            "suppressed": [f.to_dict() for f in sorted(self.suppressed)],
            "errors": [{"path": p, "error": e} for p, e in sorted(self.errors)],
            "counts": self.counts_by_rule(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one source string; returns ``(findings, suppressed)``."""
    ctx = FileContext.build(path, source)
    active = list(rules) if rules is not None else list(ALL_RULES)
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in active:
        if not rule.applies_to(path):
            continue
        for finding in rule.check(ctx):
            if _is_suppressed(finding, ctx.lines):
                suppressed.append(finding)
            else:
                findings.append(finding)
    findings.sort()
    suppressed.sort()
    return findings, suppressed


def iter_python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(p for p in path.rglob("*.py") if p.is_file()))
        elif path.suffix == ".py" and path.is_file():
            out.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"lint target does not exist: {path}")
    # De-duplicate while preserving sorted order within each argument.
    seen: Set[Path] = set()
    unique: List[Path] = []
    for path in out:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def lint_paths(
    paths: Iterable[Union[str, Path]],
    select: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths`` with the selected rules."""
    rules = resolve_rules(select)
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    errors: List[Tuple[str, str]] = []
    files = iter_python_files(paths)
    for path in files:
        rel = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
            file_findings, file_suppressed = lint_source(source, rel, rules)
        except SyntaxError as exc:
            errors.append((rel, f"syntax error: {exc}"))
            continue
        findings.extend(file_findings)
        suppressed.extend(file_suppressed)
    findings.sort()
    suppressed.sort()
    return LintResult(
        findings=findings,
        suppressed=suppressed,
        files_checked=len(files),
        errors=errors,
    )


def render_findings(
    result: LintResult,
    fix_hints: bool = False,
) -> str:
    """Human report: one ``path:line:col RULE message`` line per finding."""
    lines: List[str] = []
    for path, error in result.errors:
        lines.append(f"{path}: {error}")
    hinted: Set[str] = set()
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1} "
            f"{finding.rule} {finding.message}"
        )
        if fix_hints and finding.rule not in hinted:
            hinted.add(finding.rule)
            rule = next(r for r in ALL_RULES if r.id == finding.rule)
            lines.append(f"    hint[{finding.rule}]: {rule.hint}")
    total = len(result.findings)
    noun = "finding" if total == 1 else "findings"
    summary = (
        f"{total} {noun} in {result.files_checked} files"
        f" ({len(result.suppressed)} suppressed)"
    )
    if result.clean:
        lines.append(f"clean: {summary}")
    else:
        lines.append(summary)
    return "\n".join(lines)
