"""Lint engine: multi-pass analysis over files and the whole program.

The engine has two kinds of rules. Per-file rules (RA0xx) see one
:class:`~repro.analysis.rules.FileContext` at a time, exactly as in the
original linter. Program rules (RA1xx architecture, RA2xx concurrency,
RA3xx shapes) run after every file is parsed, over the shared
:class:`~repro.analysis.program.ProgramIndex` — so a finding in one file
can be proven by evidence in another (service locks reachable at a fork
site inside worker.py, say), and that evidence chain ships with the
finding.

Suppressions are line-based in both worlds: a finding whose anchor line
carries ``# repro: noqa[...]`` moves to the *suppressed* list (still in
the JSON report, auditable, non-failing). Module-level program findings
anchor at line 1, so a leading comment line suppresses them.

Suppression syntax::

    risky_call()  # repro: noqa[RA002] layer init is explicitly random
    another()     # repro: noqa  -- blanket, suppresses every rule
    third()       # repro: noqa[RA001,RA204] two rules, one reason

CLI: ``repro lint [paths] [--select ...] [--pass ...] [--json]
[--baseline FILE --fail-on-new] [--write-baseline FILE]``.

The JSON schema is ``repro.analysis.lint/2``: additive over v1 — findings
gain ``pass`` and ``evidence`` keys, the result gains ``passes``.
"""

from __future__ import annotations

import dataclasses
import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .passes import ProgramRule, resolve_passes, resolve_selection
from .program import ProgramIndex
from .rules import ALL_RULES, FileContext, Finding, Rule, resolve_rules

#: matches ``# repro: noqa`` with an optional ``[RA001,RA002]`` rule list
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")

SCHEMA = "repro.analysis.lint/2"
BASELINE_SCHEMA = "repro.analysis.lint-baseline/1"


def noqa_rules_for_line(line: str) -> Optional[Set[str]]:
    """Rule ids suppressed on ``line``.

    Returns ``None`` when the line has no marker, the empty set for a
    blanket ``# repro: noqa`` (suppresses everything), or the explicit set
    of rule ids.
    """
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return set()
    return {r.strip().upper() for r in rules.split(",") if r.strip()}


def _is_suppressed(finding: Finding, lines: List[str]) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    rules = noqa_rules_for_line(lines[finding.line - 1])
    if rules is None:
        return False
    return not rules or finding.rule in rules


@dataclasses.dataclass
class LintResult:
    """Outcome of one lint run over a set of files."""

    findings: List[Finding]
    suppressed: List[Finding]
    files_checked: int
    #: files that failed to parse: [(path, error message)]
    errors: List[Tuple[str, str]] = dataclasses.field(default_factory=list)
    #: pass families that ran, in run order
    passes_run: List[str] = dataclasses.field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def fingerprints(self) -> Set[str]:
        """Line-insensitive identities of the open findings."""
        return {f.fingerprint() for f in self.findings}

    def to_dict(self) -> Dict[str, object]:
        """Stable JSON payload (sorted findings, schema-versioned)."""
        return {
            "schema": SCHEMA,
            "files_checked": self.files_checked,
            "passes": list(self.passes_run),
            "findings": [f.to_dict() for f in sorted(self.findings)],
            "suppressed": [f.to_dict() for f in sorted(self.suppressed)],
            "errors": [{"path": p, "error": e} for p, e in sorted(self.errors)],
            "counts": self.counts_by_rule(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "LintResult":
        """Rebuild a result from its :meth:`to_dict` payload (v1 or v2)."""
        return cls(
            findings=[Finding.from_dict(f) for f in payload.get("findings", [])],
            suppressed=[
                Finding.from_dict(f) for f in payload.get("suppressed", [])
            ],
            files_checked=int(payload.get("files_checked", 0)),
            errors=[
                (e["path"], e["error"]) for e in payload.get("errors", [])
            ],
            passes_run=list(payload.get("passes", [])),
        )


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Run the per-file rules on one source string.

    Returns ``(findings, suppressed)``. Program passes need more than one
    file's context — use :func:`lint_sources` or :func:`lint_paths` for
    those.
    """
    ctx = FileContext.build(path, source)
    active = list(rules) if rules is not None else list(ALL_RULES)
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in active:
        if not rule.applies_to(path):
            continue
        for finding in rule.check(ctx):
            if _is_suppressed(finding, ctx.lines):
                suppressed.append(finding)
            else:
                findings.append(finding)
    findings.sort()
    suppressed.sort()
    return findings, suppressed


def iter_python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(p for p in path.rglob("*.py") if p.is_file()))
        elif path.suffix == ".py" and path.is_file():
            out.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"lint target does not exist: {path}")
    # De-duplicate while preserving sorted order within each argument.
    seen: Set[Path] = set()
    unique: List[Path] = []
    for path in out:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _run_program_rules(
    index: ProgramIndex,
    program_rules: Dict[str, List[ProgramRule]],
    findings: List[Finding],
    suppressed: List[Finding],
) -> None:
    for rules in program_rules.values():
        for rule in rules:
            for finding in rule.check(index):
                if _is_suppressed(finding, index.lines_for(finding.path)):
                    suppressed.append(finding)
                else:
                    findings.append(finding)


def _lint(
    sources: List[Tuple[str, str]],
    select: Optional[Iterable[str]],
    passes: Optional[Iterable[str]],
    package: str,
) -> LintResult:
    file_rules, program_rules = resolve_selection(select, passes)
    active_passes = resolve_passes(passes)
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    errors: List[Tuple[str, str]] = []
    index = ProgramIndex(package=package)
    need_index = bool(program_rules)
    for rel, source in sources:
        try:
            file_findings, file_suppressed = lint_source(
                source, rel, file_rules
            )
        except SyntaxError as exc:
            errors.append((rel, f"syntax error: {exc}"))
            continue
        findings.extend(file_findings)
        suppressed.extend(file_suppressed)
        if need_index:
            index.add_source(rel, source)
    if need_index:
        _run_program_rules(index, program_rules, findings, suppressed)
    findings.sort()
    suppressed.sort()
    return LintResult(
        findings=findings,
        suppressed=suppressed,
        files_checked=len(sources),
        errors=errors,
        passes_run=active_passes,
    )


def lint_paths(
    paths: Iterable[Union[str, Path]],
    select: Optional[Iterable[str]] = None,
    passes: Optional[Iterable[str]] = None,
    package: str = "repro",
) -> LintResult:
    """Lint every ``.py`` file under ``paths``, all passes by default."""
    sources: List[Tuple[str, str]] = []
    errors: List[Tuple[str, str]] = []
    for path in iter_python_files(paths):
        rel = path.as_posix()
        try:
            sources.append((rel, path.read_text(encoding="utf-8")))
        except OSError as exc:
            errors.append((rel, f"unreadable: {exc}"))
    result = _lint(sources, select, passes, package)
    result.errors = sorted(result.errors + errors)
    return result


def lint_sources(
    sources: Dict[str, str],
    select: Optional[Iterable[str]] = None,
    passes: Optional[Iterable[str]] = None,
    package: str = "repro",
) -> LintResult:
    """Lint an in-memory ``{path: source}`` mapping (fixture trees)."""
    return _lint(sorted(sources.items()), select, passes, package)


# -- baselines --------------------------------------------------------------


def baseline_payload(result: LintResult) -> Dict[str, object]:
    """The committable baseline for ``--baseline``/``--fail-on-new``."""
    return {
        "schema": BASELINE_SCHEMA,
        "fingerprints": sorted(result.fingerprints()),
    }


def load_baseline(path: Union[str, Path]) -> Set[str]:
    """Fingerprint set from a baseline file written by ``--write-baseline``."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"not a lint baseline (schema={payload.get('schema')!r})"
        )
    return set(payload.get("fingerprints", []))


def new_findings(result: LintResult, baseline: Set[str]) -> List[Finding]:
    """Findings not present in the baseline (line moves don't count)."""
    return [f for f in result.findings if f.fingerprint() not in baseline]


def render_findings(
    result: LintResult,
    fix_hints: bool = False,
) -> str:
    """Human report: one ``path:line:col RULE message`` line per finding."""
    from .passes import rules_by_id

    lines: List[str] = []
    for path, error in result.errors:
        lines.append(f"{path}: {error}")
    catalogue = rules_by_id()
    hinted: Set[str] = set()
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1} "
            f"{finding.rule} {finding.message}"
        )
        for evidence in finding.evidence:
            lines.append(
                f"    evidence: {evidence.path}:{evidence.line} "
                f"{evidence.note}"
            )
        if fix_hints and finding.rule not in hinted:
            hinted.add(finding.rule)
            rule = catalogue.get(finding.rule)
            if rule is not None:
                lines.append(f"    hint[{finding.rule}]: {rule.hint}")
    total = len(result.findings)
    noun = "finding" if total == 1 else "findings"
    summary = (
        f"{total} {noun} in {result.files_checked} files"
        f" ({len(result.suppressed)} suppressed)"
    )
    if result.passes_run:
        summary += " [passes: " + ",".join(result.passes_run) + "]"
    if result.clean:
        lines.append(f"clean: {summary}")
    else:
        lines.append(summary)
    return "\n".join(lines)
