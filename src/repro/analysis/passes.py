"""Pass framework: whole-program rules grouped into named pass families.

The per-file rules of :mod:`repro.analysis.rules` see one
:class:`~repro.analysis.rules.FileContext` at a time. Everything else —
layering contracts, fork-safety, shape interpretation — needs the whole
program, so those rules subclass :class:`ProgramRule` and receive the
shared :class:`~repro.analysis.program.ProgramIndex` instead.

Pass families (selected with ``repro lint --pass``):

=============  ======  ==============================================
pass           rules   what it proves
=============  ======  ==============================================
file           RA0xx   per-file invariants (prints, randomness, tape)
arch           RA1xx   import layering, cycles, dead modules/symbols
concurrency    RA2xx   fork/thread/queue/contextvars safety
shapes         RA3xx   abstract shape/dtype execution of forward()
=============  ======  ==============================================

``--select`` accepts exact ids (``RA204``) and pass-level wildcards
(``RA2xx``), both composable with ``--pass``.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .program import ProgramIndex
from .rules import ALL_RULES, Finding, Rule

#: The run order of the pass families.
PASS_NAMES = ("file", "arch", "concurrency", "shapes")

_WILDCARD_RE = re.compile(r"^RA(?P<family>[0-9])XX$")


class ProgramRule:
    """Base whole-program rule; mirrors :class:`~repro.analysis.rules.Rule`.

    Subclasses set ``id``/``title``/``hint`` and implement :meth:`check`,
    yielding findings whose ``path``/``line`` anchor the primary location
    (where a ``# repro: noqa[ID] reason`` suppression is honored) and
    whose ``evidence`` chain walks the supporting cross-module steps.
    """

    id: str = ""
    title: str = ""
    hint: str = ""

    def check(self, index: ProgramIndex) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        path: str,
        line: int,
        message: str,
        col: int = 0,
        evidence: Sequence = (),
    ) -> Finding:
        return Finding(
            path=path,
            line=line,
            col=col,
            rule=self.id,
            message=message,
            evidence=tuple(evidence),
        )


def _program_rules() -> Dict[str, Tuple[ProgramRule, ...]]:
    # Imported lazily so rules.py/passes.py stay importable from the pass
    # modules themselves without a cycle.
    from .arch import ARCH_RULES
    from .concurrency import CONCURRENCY_RULES
    from .shapes import SHAPE_RULES

    return {
        "arch": ARCH_RULES,
        "concurrency": CONCURRENCY_RULES,
        "shapes": SHAPE_RULES,
    }


def all_rules() -> List[object]:
    """The full catalogue — file rules then program rules, in pass order."""
    catalogue: List[object] = list(ALL_RULES)
    by_pass = _program_rules()
    for name in PASS_NAMES[1:]:
        catalogue.extend(by_pass[name])
    return catalogue


def rules_by_id() -> Dict[str, object]:
    return {rule.id: rule for rule in all_rules()}


def resolve_passes(passes: Optional[Iterable[str]]) -> List[str]:
    """Validate and order a ``--pass`` selection (``None`` = all passes)."""
    if passes is None:
        return list(PASS_NAMES)
    chosen = []
    for name in passes:
        name = name.strip().lower()
        if not name:
            continue
        if name == "all":
            return list(PASS_NAMES)
        if name not in PASS_NAMES:
            raise ValueError(
                f"unknown pass {name!r} (expected one of {list(PASS_NAMES)})"
            )
        if name not in chosen:
            chosen.append(name)
    if not chosen:
        raise ValueError("empty pass selection")
    return [name for name in PASS_NAMES if name in chosen]


def resolve_selection(
    select: Optional[Iterable[str]],
    passes: Optional[Iterable[str]] = None,
) -> Tuple[List[Rule], Dict[str, List[ProgramRule]]]:
    """``(file rules, {pass: program rules})`` for a select/pass pair.

    ``select`` entries may be exact rule ids (``RA001``) or pass-level
    wildcards (``RA2xx``); ``passes`` restricts which families run at
    all. A rule runs iff its family is enabled *and* it matches the
    selection (no selection = every rule).
    """
    active = resolve_passes(passes)
    catalogue = rules_by_id()
    if select is None:
        wanted = set(catalogue)
    else:
        wanted = set()
        for entry in select:
            entry = entry.strip().upper()
            if not entry:
                continue
            wildcard = _WILDCARD_RE.match(entry)
            if wildcard is not None:
                family = wildcard.group("family")
                matched = {
                    rule_id
                    for rule_id in catalogue
                    if rule_id.startswith(f"RA{family}")
                }
                if not matched:
                    raise ValueError(f"no rules in family {entry!r}")
                wanted |= matched
                continue
            if entry not in catalogue:
                raise ValueError(
                    f"unknown rule {entry!r} (expected an id like RA001 or a "
                    "family wildcard like RA2xx)"
                )
            wanted.add(entry)
        if not wanted:
            raise ValueError("empty rule selection")
    file_rules = [
        rule for rule in ALL_RULES if "file" in active and rule.id in wanted
    ]
    program: Dict[str, List[ProgramRule]] = {}
    by_pass = _program_rules()
    for name in active:
        if name == "file":
            continue
        selected = [rule for rule in by_pass[name] if rule.id in wanted]
        if selected:
            program[name] = selected
    return file_rules, program
