"""The shared whole-program index every analysis pass runs over.

A :class:`ProgramIndex` is built once per lint run from the set of files
being analyzed: each module is parsed to an AST exactly once, imports are
resolved against the package being indexed (absolute ``repro.x.y`` and
relative ``from ..obs import trace`` forms both land on dotted module
names), and a symbol table records every top-level class/function/constant
together with the program-wide *usage* sets (name loads, attribute names,
``getattr`` literals, ``__all__`` strings) that the dead-code rules
approximate reachability with.

The index is deliberately syntactic — no imports are executed. Passes
(:mod:`repro.analysis.arch`, :mod:`repro.analysis.concurrency`,
:mod:`repro.analysis.shapes`) consume it through a handful of derived
views: the eager import graph (module-level imports only, the edges that
run at import time), the full import graph (eager + deferred), a
call-site approximation (function → called names), and per-module source
lines so whole-program findings still honor line-level ``# repro: noqa``
suppressions.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


@dataclasses.dataclass(frozen=True)
class ImportEdge:
    """One resolved import statement."""

    source: str  #: importing module (dotted)
    target: str  #: imported module (dotted; package-internal or external)
    names: Tuple[str, ...]  #: names pulled in (empty for ``import x``)
    lineno: int
    deferred: bool  #: inside a function/method body (runs at call time)


@dataclasses.dataclass
class SymbolInfo:
    """One top-level symbol of a module."""

    name: str
    kind: str  #: "class" | "function" | "assign"
    lineno: int
    #: public methods for classes: name -> lineno
    methods: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: base-class expressions (dotted where resolvable) for classes
    bases: Tuple[str, ...] = ()


@dataclasses.dataclass
class ModuleInfo:
    """Everything the passes need to know about one parsed module."""

    name: str  #: dotted module name ("repro.serve.service")
    path: str  #: path as given to the linter (posix)
    tree: ast.Module
    lines: List[str]
    is_package: bool  #: an ``__init__.py``
    imports: List[ImportEdge] = dataclasses.field(default_factory=list)
    symbols: Dict[str, SymbolInfo] = dataclasses.field(default_factory=dict)
    export_all: Optional[Tuple[str, ...]] = None  #: ``__all__`` if literal
    #: names read anywhere in the module (ast.Name loads)
    name_loads: Set[str] = dataclasses.field(default_factory=set)
    #: attribute names used anywhere in the module (``x.attr`` → "attr")
    attr_uses: Set[str] = dataclasses.field(default_factory=set)
    #: string literals in getattr/hasattr calls and ``__all__`` lists
    string_refs: Set[str] = dataclasses.field(default_factory=set)
    #: function qualname -> set of called names (call-site approximation;
    #: an attribute call ``a.b.c(...)`` is recorded as "c")
    calls: Dict[str, Set[str]] = dataclasses.field(default_factory=dict)


def module_name_for(path: Path, package: str = "repro") -> str:
    """Dotted module name for ``path``, anchored at the ``package`` dir.

    Files outside any ``package`` directory fall back to their stem, so
    fixture trees and scratch files still index (their imports simply
    resolve as external).
    """
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if package in parts:
        anchor = len(parts) - 1 - parts[::-1].index(package)
        return ".".join(parts[anchor:]) or package
    return parts[-1] if parts else str(path)


def _resolve_relative(module: ModuleInfo, node: ast.ImportFrom) -> Optional[str]:
    """Dotted target of a relative import, or ``None`` when it escapes."""
    base = module.name.split(".")
    if not module.is_package:
        base = base[:-1]
    # level=1 is "current package"; each extra level pops one more.
    drop = node.level - 1
    if drop > len(base):
        return None
    if drop:
        base = base[:-drop]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


class _ModuleVisitor(ast.NodeVisitor):
    """Single traversal collecting imports, symbols, usages and calls."""

    def __init__(self, info: ModuleInfo):
        self.info = info
        self._func_stack: List[str] = []
        self._class_stack: List[str] = []

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.info.imports.append(
                ImportEdge(
                    source=self.info.name,
                    target=alias.name,
                    names=(),
                    lineno=node.lineno,
                    deferred=bool(self._func_stack),
                )
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            target = _resolve_relative(self.info, node)
        else:
            target = node.module
        if target is not None:
            self.info.imports.append(
                ImportEdge(
                    source=self.info.name,
                    target=target,
                    names=tuple(alias.name for alias in node.names),
                    lineno=node.lineno,
                    deferred=bool(self._func_stack),
                )
            )
        self.generic_visit(node)

    # -- symbols --------------------------------------------------------
    def _qualname(self, name: str) -> str:
        return ".".join(self._class_stack + self._func_stack + [name])

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._class_stack and not self._func_stack:
            methods = {
                stmt.name: stmt.lineno
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            self.info.symbols[node.name] = SymbolInfo(
                name=node.name,
                kind="class",
                lineno=node.lineno,
                methods=methods,
                bases=tuple(_dotted(b) for b in node.bases),
            )
        self._class_stack.append(node.name)
        try:
            self.generic_visit(node)
        finally:
            self._class_stack.pop()

    def _visit_function(self, node) -> None:
        if not self._class_stack and not self._func_stack:
            self.info.symbols[node.name] = SymbolInfo(
                name=node.name, kind="function", lineno=node.lineno
            )
        self._func_stack.append(node.name)
        try:
            self.generic_visit(node)
        finally:
            self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._class_stack and not self._func_stack:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if target.id == "__all__":
                        self.info.export_all = _string_tuple(node.value)
                        if self.info.export_all:
                            self.info.string_refs.update(self.info.export_all)
                    elif target.id not in self.info.symbols:
                        self.info.symbols[target.id] = SymbolInfo(
                            name=target.id, kind="assign", lineno=node.lineno
                        )
        self.generic_visit(node)

    # -- usage sets -----------------------------------------------------
    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.info.name_loads.add(node.id)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.info.attr_uses.add(node.attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        called: Optional[str] = None
        if isinstance(func, ast.Name):
            called = func.id
            if func.id in ("getattr", "hasattr", "setattr") and len(node.args) >= 2:
                literal = node.args[1]
                if isinstance(literal, ast.Constant) and isinstance(
                    literal.value, str
                ):
                    self.info.string_refs.add(literal.value)
        elif isinstance(func, ast.Attribute):
            called = func.attr
        if called is not None:
            scope = ".".join(self._class_stack + self._func_stack) or "<module>"
            self.info.calls.setdefault(scope, set()).add(called)
        self.generic_visit(node)


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted rendering of a base-class expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{_dotted(node.value)}.{node.attr}"
    return "?"


def _string_tuple(node: ast.AST) -> Optional[Tuple[str, ...]]:
    if isinstance(node, (ast.List, ast.Tuple)):
        out = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                out.append(element.value)
            else:
                return None
        return tuple(out)
    return None


class ProgramIndex:
    """Parsed modules plus the derived graphs the passes query.

    Build once per run with :meth:`build` (from paths) or
    :meth:`from_sources` (tests). Modules that fail to parse are recorded
    in :attr:`errors` and skipped; the passes see the parseable subset.
    """

    def __init__(self, package: str = "repro"):
        self.package = package
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        self.errors: List[Tuple[str, str]] = []

    # -- construction ---------------------------------------------------
    @classmethod
    def build(
        cls,
        paths: Iterable[Path],
        package: str = "repro",
    ) -> "ProgramIndex":
        index = cls(package=package)
        for path in paths:
            rel = Path(path).as_posix()
            try:
                source = Path(path).read_text(encoding="utf-8")
            except OSError as exc:
                index.errors.append((rel, f"unreadable: {exc}"))
                continue
            index.add_source(rel, source)
        return index

    @classmethod
    def from_sources(
        cls, sources: Dict[str, str], package: str = "repro"
    ) -> "ProgramIndex":
        """Index an in-memory ``{path: source}`` mapping (test fixtures)."""
        index = cls(package=package)
        for path, source in sources.items():
            index.add_source(path, source)
        return index

    def add_source(self, path: str, source: str) -> Optional[ModuleInfo]:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.errors.append((path, f"syntax error: {exc}"))
            return None
        name = module_name_for(Path(path), self.package)
        info = ModuleInfo(
            name=name,
            path=path,
            tree=tree,
            lines=source.splitlines(),
            is_package=Path(path).name == "__init__.py",
        )
        _ModuleVisitor(info).visit(tree)
        self.modules[name] = info
        self.by_path[path] = info
        return info

    # -- derived views --------------------------------------------------
    def internal_target(self, target: str) -> Optional[str]:
        """Map an import target onto an indexed module name (or ``None``).

        ``repro.serve.worker`` hits that module directly;
        ``repro.serve.worker.spawn_worker`` (symbol import) falls back to
        the longest indexed prefix.
        """
        parts = target.split(".")
        while parts:
            name = ".".join(parts)
            if name in self.modules:
                return name
            parts.pop()
        return None

    def import_graph(self, deferred: bool = False) -> Dict[str, Set[str]]:
        """``module -> imported internal modules`` (eager only by default).

        Edges onto an *ancestor package* of the importer are dropped:
        ``from . import init`` inside ``repro.autograd.conv`` names the
        parent package, but Python already imported that package to reach
        ``conv`` at all — the edge is implicit in every submodule and
        would make every package a trivial "cycle" with its children.
        """
        graph: Dict[str, Set[str]] = {name: set() for name in self.modules}
        for info in self.modules.values():
            for edge in info.imports:
                if edge.deferred and not deferred:
                    continue
                for resolved in self.resolved_targets(edge):
                    if resolved == info.name:
                        continue
                    if info.name.startswith(resolved + "."):
                        continue
                    graph[info.name].add(resolved)
        return graph

    def resolved_targets(self, edge: ImportEdge) -> Set[str]:
        """Indexed modules one import edge lands on.

        The bare target plus — for ``from pkg import name`` forms — each
        imported name resolved as a submodule (``from repro.serve import
        worker`` is an edge onto ``repro.serve.worker``, not just the
        package).
        """
        out: Set[str] = set()
        direct = self.internal_target(edge.target)
        if direct is not None:
            out.add(direct)
        for imported in edge.names:
            sub = self.internal_target(f"{edge.target}.{imported}")
            if sub is not None:
                out.add(sub)
        return out

    def import_cycles(self) -> List[List[str]]:
        """Eager-import cycles (each as a module list), via Tarjan SCC."""
        graph = self.import_graph(deferred=False)
        index_counter = [0]
        stack: List[str] = []
        lowlink: Dict[str, int] = {}
        number: Dict[str, int] = {}
        on_stack: Set[str] = set()
        cycles: List[List[str]] = []

        def strongconnect(node: str) -> None:
            # Iterative Tarjan: recursion depth would otherwise track the
            # import-chain depth of the package.
            work = [(node, iter(sorted(graph.get(node, ()))))]
            number[node] = lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current, edges = work[-1]
                advanced = False
                for nxt in edges:
                    if nxt not in number:
                        number[nxt] = lowlink[nxt] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, iter(sorted(graph.get(nxt, ())))))
                        advanced = True
                        break
                    if nxt in on_stack:
                        lowlink[current] = min(lowlink[current], number[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[current])
                if lowlink[current] == number[current]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    if len(component) > 1:
                        cycles.append(sorted(component))
                    elif component and component[0] in graph.get(
                        component[0], ()
                    ):
                        cycles.append(component)

        for name in sorted(graph):
            if name not in number:
                strongconnect(name)
        return cycles

    def used_names(self) -> Set[str]:
        """Every identifier the program references anywhere.

        The union of name loads, attribute names, getattr/__all__ string
        literals and imported symbol names — the conservative "is this
        symbol reachable" approximation the dead-code rules test against.
        """
        used: Set[str] = set()
        for info in self.modules.values():
            used |= info.name_loads
            used |= info.attr_uses
            used |= info.string_refs
            for edge in info.imports:
                used.update(edge.names)
        return used

    def importers_of(self, module: str) -> List[ImportEdge]:
        """Every import edge (eager or deferred) landing on ``module``."""
        edges = []
        for info in self.modules.values():
            if info.name == module:
                continue
            for edge in info.imports:
                resolved = self.internal_target(edge.target)
                if resolved == module:
                    edges.append(edge)
                    continue
                for imported in edge.names:
                    if (
                        self.internal_target(f"{edge.target}.{imported}")
                        == module
                    ):
                        edges.append(edge)
                        break
        return edges

    def functions_containing_call(self, called: str) -> List[Tuple[ModuleInfo, str]]:
        """``(module, function qualname)`` pairs whose body calls ``called``."""
        out = []
        for info in self.modules.values():
            for scope, names in info.calls.items():
                if called in names:
                    out.append((info, scope))
        return out

    def lines_for(self, path: str) -> List[str]:
        info = self.by_path.get(path)
        return info.lines if info is not None else []

    def subpackage_of(self, module: str) -> str:
        """Top-level subpackage of a package-internal module name."""
        parts = module.split(".")
        if parts[0] != self.package:
            return parts[0]
        return parts[1] if len(parts) > 1 else self.package


def render_deps(
    index: ProgramIndex, dot: bool = False, collapse: bool = True
) -> str:
    """Render the eager import graph, collapsed to top-level subpackages.

    ``dot=True`` emits Graphviz; otherwise an aligned adjacency listing.
    ``collapse=False`` keeps full module granularity.
    """
    graph = index.import_graph(deferred=False)
    if collapse:
        agg: Dict[str, Set[str]] = {}
        for source, targets in graph.items():
            s = index.subpackage_of(source)
            for target in targets:
                t = index.subpackage_of(target)
                if s != t:
                    agg.setdefault(s, set()).add(t)
                else:
                    agg.setdefault(s, set())
        graph = agg
    if dot:
        lines = ["digraph repro_deps {", "  rankdir=BT;"]
        for source in sorted(graph):
            if not graph[source]:
                lines.append(f'  "{source}";')
            for target in sorted(graph[source]):
                lines.append(f'  "{source}" -> "{target}";')
        lines.append("}")
        return "\n".join(lines)
    lines = []
    width = max((len(s) for s in graph), default=0)
    for source in sorted(graph):
        targets = ", ".join(sorted(graph[source])) or "-"
        lines.append(f"{source:<{width}s} -> {targets}")
    return "\n".join(lines)
