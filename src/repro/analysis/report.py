"""Combined analysis report: lint summary for humans and machines.

``repro analysis report [paths]`` runs the full rule set and renders a
per-rule summary table (counts, suppressions, the catalogue line for each
rule that fired) plus the stable JSON payload when ``--output`` is given.
"""

from __future__ import annotations

from typing import Dict, List

from .lint import LintResult
from .passes import all_rules
from .rules import pass_for_rule


def summarize(result: LintResult) -> Dict[str, object]:
    """Machine-readable roll-up of one lint run."""
    suppressed_counts: Dict[str, int] = {}
    for finding in result.suppressed:
        suppressed_counts[finding.rule] = suppressed_counts.get(finding.rule, 0) + 1
    return {
        "schema": "repro.analysis.report/2",
        "files_checked": result.files_checked,
        "passes": list(result.passes_run),
        "total_findings": len(result.findings),
        "total_suppressed": len(result.suppressed),
        "clean": result.clean,
        "by_rule": {
            rule.id: {
                "title": rule.title,
                "pass": pass_for_rule(rule.id),
                "findings": result.counts_by_rule().get(rule.id, 0),
                "suppressed": suppressed_counts.get(rule.id, 0),
            }
            for rule in all_rules()
        },
        "errors": [{"path": p, "error": e} for p, e in result.errors],
    }


def render_summary(result: LintResult) -> str:
    """Aligned per-rule table plus verdict line."""
    summary = summarize(result)
    lines: List[str] = [
        f"analysis report over {summary['files_checked']} files:",
        f"  {'rule':<7s} {'pass':<12s} {'findings':>9s} {'suppressed':>11s}"
        "  title",
    ]
    by_rule = summary["by_rule"]
    for rule in all_rules():
        row = by_rule[rule.id]
        lines.append(
            f"  {rule.id:<7s} {row['pass']:<12s} {row['findings']:>9d} "
            f"{row['suppressed']:>11d}  {rule.title}"
        )
    for error in summary["errors"]:
        lines.append(f"  ERROR {error['path']}: {error['error']}")
    verdict = "clean" if summary["clean"] else f"{summary['total_findings']} open findings"
    lines.append(
        f"  total: {verdict}, {summary['total_suppressed']} suppressed "
        "(suppressions carry `# repro: noqa[RULE] reason`)"
    )
    return "\n".join(lines)
