"""The repo-specific lint rules (RA001–RA005).

Each rule is a small ``ast``-level checker encoding one correctness
invariant the FakeDetector reproduction depends on. The rules are
deliberately narrow: they target the failure classes this codebase has
actually defended against (see ``docs/analysis.md`` for the catalogue
with rationale), not general style.

Rules
-----
RA001  bare ``print(`` in library code (route through ``repro.obs``)
RA002  unseeded ``np.random.*`` usage (non-reproducible randomness)
RA003  closures inside loops capturing the loop variable late
RA004  in-place mutation of autograd ``.data``/``.grad`` outside optimizers
RA005  bare ``except:`` / silently swallowed exceptions
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple


@dataclasses.dataclass(frozen=True, order=True)
class Evidence:
    """One step of a finding's inter-file evidence chain."""

    path: str
    line: int
    note: str

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "note": self.note}

    @classmethod
    def from_dict(cls, payload: Dict) -> "Evidence":
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),
            note=str(payload["note"]),
        )


def pass_for_rule(rule_id: str) -> str:
    """The pass family a rule id belongs to (RA0xx=file, RA1xx=arch, …)."""
    if len(rule_id) >= 3 and rule_id.startswith("RA"):
        family = {"1": "arch", "2": "concurrency", "3": "shapes"}.get(rule_id[2])
        if family is not None:
            return family
    return "file"


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, stable across runs for JSON diffing.

    Whole-program findings additionally carry an :class:`Evidence` chain —
    the cross-module steps (lock creation → spawn call → fork site, or
    import path of a layering violation) that justify the finding. File
    rules leave it empty.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    evidence: Tuple[Evidence, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "pass": pass_for_rule(self.rule),
            "evidence": [step.to_dict() for step in self.evidence],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Finding":
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),
            col=int(payload["col"]),
            rule=str(payload["rule"]),
            message=str(payload["message"]),
            evidence=tuple(
                Evidence.from_dict(step) for step in payload.get("evidence", ())
            ),
        )

    def fingerprint(self) -> str:
        """Line-number-insensitive identity, the baseline-mode match key."""
        return f"{self.path}::{self.rule}::{self.message}"


@dataclasses.dataclass
class FileContext:
    """Per-file facts shared by all rules: path, source and import aliases."""

    path: str
    tree: ast.Module
    lines: List[str]
    #: local names bound to the numpy module (``import numpy as np``)
    numpy_aliases: Set[str]
    #: local names bound to ``numpy.random`` (``from numpy import random``)
    numpy_random_aliases: Set[str]

    @classmethod
    def build(cls, path: str, source: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        numpy_aliases: Set[str] = set()
        numpy_random_aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random":
                        numpy_random_aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            numpy_random_aliases.add(alias.asname or "random")
        return cls(
            path=path,
            tree=tree,
            lines=source.splitlines(),
            numpy_aliases=numpy_aliases,
            numpy_random_aliases=numpy_random_aliases,
        )

    def is_numpy_random(self, node: ast.AST) -> bool:
        """True when ``node`` denotes the ``numpy.random`` module."""
        if isinstance(node, ast.Attribute) and node.attr == "random":
            return (
                isinstance(node.value, ast.Name)
                and node.value.id in self.numpy_aliases
            )
        return isinstance(node, ast.Name) and node.id in self.numpy_random_aliases


class Rule:
    """Base lint rule. Subclasses set the class attributes and ``check``."""

    id: str = ""
    title: str = ""
    hint: str = ""
    #: path suffixes this rule never applies to (posix form)
    exempt_suffixes: Sequence[str] = ()

    def applies_to(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return not any(normalized.endswith(sfx) for sfx in self.exempt_suffixes)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
        )


class BarePrintRule(Rule):
    """RA001: ``print()`` in library code bypasses the structured logger."""

    id = "RA001"
    title = "bare print() in library code"
    hint = (
        "route diagnostics through repro.obs: "
        "`get_logger(\"<ns>\").info(\"event\", key=value)`; CLI entry points "
        "(cli.py, __main__.py) are exempt because stdout is their contract"
    )
    exempt_suffixes = ("cli.py", "__main__.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    ctx, node, "bare print() in library code; use repro.obs.get_logger()"
                )


#: legacy module-level numpy.random functions that mutate hidden global state
_LEGACY_RANDOM_FNS = {
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "gamma", "geometric", "get_state", "gumbel",
    "hypergeometric", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_normal", "negative_binomial",
    "noncentral_chisquare", "noncentral_f", "normal", "pareto",
    "permutation", "poisson", "power", "rand", "randint", "randn",
    "random", "random_integers", "random_sample", "ranf", "rayleigh",
    "sample", "seed", "set_state", "shuffle", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_normal",
    "standard_t", "triangular", "uniform", "vonmises", "wald", "weibull",
    "zipf",
}


class UnseededRandomRule(Rule):
    """RA002: randomness must come from a passed-in Generator or a seed."""

    id = "RA002"
    title = "unseeded np.random usage"
    hint = (
        "pass an explicit np.random.Generator down from the config seed, or "
        "seed the constructor: `np.random.default_rng(seed)`; module-level "
        "legacy calls (np.random.randn, np.random.seed, ...) share hidden "
        "global state and are never reproducible from config alone"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if not ctx.is_numpy_random(func.value):
                continue
            name = func.attr
            if name in ("default_rng", "RandomState"):
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx,
                        node,
                        f"unseeded np.random.{name}(): pass a Generator or a "
                        "seed derived from config",
                    )
            elif name in _LEGACY_RANDOM_FNS:
                yield self.finding(
                    ctx,
                    node,
                    f"legacy global-state np.random.{name}(): use an explicit "
                    "np.random.Generator",
                )


class LoopClosureRule(Rule):
    """RA003: closures created in a loop must bind the loop variable early.

    This is the exact bug class the autograd tape defends against: a
    ``backward`` closure defined inside a loop that reads the loop variable
    resolves it *at call time*, when every closure sees the final
    iteration's value. The fix is default-argument binding
    (``def backward(grad, _op=op): ...``).
    """

    id = "RA003"
    title = "loop variable captured late by closure"
    hint = (
        "bind the loop variable at definition time with a default argument: "
        "`def backward(grad, _x=x): ...` or `lambda grad, _x=x: ...`"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor)):
                continue
            targets = _target_names(loop.target)
            if not targets:
                continue
            for child in ast.walk(loop):
                if child is loop:
                    continue
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    for name in sorted(_late_bound_names(child, targets)):
                        yield self.finding(
                            ctx,
                            child,
                            f"closure captures loop variable {name!r} late; "
                            "bind it with a default argument",
                        )

    # Nested loops: each For is walked independently, so a closure inside an
    # inner loop is checked against both loops' targets.


def _target_names(target: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _late_bound_names(func: ast.AST, loop_targets: Set[str]) -> Set[str]:
    """Loop-target names a function reads as free variables (not params,
    not locally rebound, not bound via defaults)."""
    if isinstance(func, ast.Lambda):
        body: List[ast.AST] = [func.body]
    else:
        body = list(func.body)
    args = func.args
    params = {
        a.arg
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
    }
    if args.vararg:
        params.add(args.vararg.arg)
    if args.kwarg:
        params.add(args.kwarg.arg)
    loads: Set[str] = set()
    stores: Set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Load):
                    loads.add(node.id)
                else:
                    stores.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stores.add(node.name)
    return (loop_targets & loads) - params - stores


class TapeMutationRule(Rule):
    """RA004: in-place writes to ``.data``/``.grad`` corrupt saved closures.

    Backward closures capture the forward arrays *by reference*; mutating
    ``tensor.data`` between forward and backward silently poisons every
    gradient computed from it. Only optimizer ``step()`` code may mutate
    parameters in place (after ``backward()`` has consumed the tape).
    """

    id = "RA004"
    title = "in-place mutation of autograd .data/.grad"
    exempt_suffixes = ("autograd/optim.py",)
    hint = (
        "build a new array instead of mutating (`t = Tensor(new)`), or, if "
        "the write provably happens before any tape references the array "
        "(module __init__), suppress with `# repro: noqa[RA004] <reason>`"
    )

    _ATTRS = ("data", "grad")

    def _is_tracked_attr(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Attribute) and node.attr in self._ATTRS

    def _is_tracked_target(self, node: ast.AST) -> bool:
        """``x.data`` or any subscript/attribute chain rooted at it."""
        if self._is_tracked_attr(node):
            return True
        if isinstance(node, ast.Subscript):
            return self._is_tracked_target(node.value)
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AugAssign) and self._is_tracked_target(node.target):
                yield self.finding(
                    ctx, node,
                    "in-place augmented assignment to autograd .data/.grad",
                )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and self._is_tracked_target(
                        target.value
                    ):
                        yield self.finding(
                            ctx, target,
                            "slice assignment into autograd .data/.grad",
                        )
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg == "out" and self._is_tracked_target(kw.value):
                        yield self.finding(
                            ctx, node,
                            "ufunc out= targets autograd .data/.grad",
                        )
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "at"
                    and node.args
                    and self._is_tracked_target(node.args[0])
                ):
                    yield self.finding(
                        ctx, node,
                        "ufunc .at() mutates autograd .data/.grad in place",
                    )


class SwallowedExceptionRule(Rule):
    """RA005: exceptions must be handled, logged, or re-raised — not eaten."""

    id = "RA005"
    title = "bare or swallowed exception handler"
    hint = (
        "catch the narrowest exception type that the code can actually "
        "recover from, and record the failure (logger/collection/re-raise) "
        "instead of `pass`"
    )

    _BROAD = ("Exception", "BaseException")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node, "bare except: catches SystemExit/KeyboardInterrupt too"
                )
                continue
            if (
                isinstance(node.type, ast.Name)
                and node.type.id in self._BROAD
                and all(isinstance(stmt, (ast.Pass, ast.Continue)) for stmt in node.body)
            ):
                yield self.finding(
                    ctx, node,
                    f"except {node.type.id} silently swallows the error",
                )


#: The default rule set, in catalogue order.
ALL_RULES = (
    BarePrintRule(),
    UnseededRandomRule(),
    LoopClosureRule(),
    TapeMutationRule(),
    SwallowedExceptionRule(),
)

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}


def resolve_rules(select: Optional[Iterable[str]] = None) -> List[Rule]:
    """Rules for a ``--select`` list (``None`` = all), validating ids."""
    if select is None:
        return list(ALL_RULES)
    chosen = []
    for rule_id in select:
        rule_id = rule_id.strip()
        if not rule_id:
            continue
        if rule_id not in RULES_BY_ID:
            raise ValueError(
                f"unknown rule {rule_id!r} (expected one of {sorted(RULES_BY_ID)})"
            )
        chosen.append(RULES_BY_ID[rule_id])
    if not chosen:
        raise ValueError("empty rule selection")
    return chosen
