"""Runtime tape sanitizer: numeric guards over every autograd op.

Built on the :func:`repro.autograd.tensor.set_check_hook` layer, which
reports every instrumented tape op's *values* (the produced tensor on
forward, the parent gradients on backward). The sanitizer is read-only —
it never alters an array — so sanitized training is bit-identical to
unsanitized training; it only adds three guards:

- **NaN/Inf guard**: raises :class:`NumericalFaultError` naming the op,
  phase and shape on the *first* non-finite forward output or backward
  gradient, instead of letting NaNs silently wash through the gates.
- **In-place mutation detector**: checksums every array captured by a
  backward closure the first time it is seen at forward time and
  re-verifies the whole working set at step boundaries — on
  :meth:`Sanitizer.flush` (the trainer calls it after ``backward()`` and
  *before* the optimizer's sanctioned in-place parameter update) and on
  clean context-manager exit. A mismatch raises
  :class:`TapeCorruptionError` naming the op that first captured the
  array. This catches the classic
  ``tensor.data += ...``-between-forward-and-backward bug.
- **Dead-parameter auditor** (:func:`audit_parameters`): after a
  ``backward()``, reports parameters whose gradient is missing or exactly
  zero — the signature of a mis-wired GDU gate or head.

Usage::

    with Sanitizer() as sanitizer:
        loss = model(features, graph)["article"].sum()
        loss.backward()
    sanitizer.stats  # ops/arrays checked

or end-to-end through the trainer: ``detector.fit(ds, split, sanitize=True)``
/ ``repro train --sanitize``.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..autograd.tensor import Tensor, set_check_hook


class SanitizerError(RuntimeError):
    """Base class for faults the tape sanitizer detects."""


class NumericalFaultError(SanitizerError):
    """A non-finite value appeared in a forward output or backward grad."""

    def __init__(self, phase: str, op: str, shape: tuple, bad: int, total: int,
                 detail: str = ""):
        self.phase = phase
        self.op = op
        self.shape = shape
        message = (
            f"non-finite values in {phase} of op {op!r}: "
            f"{bad}/{total} elements of shape {shape}"
        )
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class TapeCorruptionError(SanitizerError):
    """An array captured by a backward closure was mutated in place."""

    def __init__(self, op: str, shape: tuple, role: str):
        self.op = op
        self.shape = shape
        message = (
            f"array captured by op {op!r} ({role}, shape {shape}) was "
            "mutated in place after forward capture; in-place writes to "
            "Tensor.data corrupt saved backward closures"
        )
        super().__init__(message)


#: Above this many elements, fingerprints are computed on a deterministic
#: stride sample. Whole-array in-place writes (the bug class RA004 targets)
#: always hit the sample; a surgical single-element write to a huge array
#: may not — an accepted trade for keeping the sanitizer inside its
#: overhead budget.
_FINGERPRINT_SAMPLE = 4096


#: Position-weight vectors for the sampled dot, cached per sample length.
_WEIGHTS: Dict[int, np.ndarray] = {}


def _weights(n: int) -> np.ndarray:
    w = _WEIGHTS.get(n)
    if w is None:
        w = np.linspace(1.0, 2.0, n)
        _WEIGHTS[n] = w
    return w


def _fingerprint(arr: np.ndarray, known_sum: Optional[float] = None) -> Tuple[float, float]:
    """Cheap checksum: (full-array sum, stride-sampled position-weighted dot).

    The full sum catches any value change that does not exactly cancel;
    the position-weighted dot additionally catches sum-preserving bulk
    mutations (in-place sorts, permutations, paired sign flips) at least
    on the sampled positions. The sum doubles as the NaN pre-check, so
    callers that already computed it pass ``known_sum`` and pay only for
    the sampled dot. Hot path: no ``errstate`` guard — a non-finite array
    can emit one numpy RuntimeWarning on the way to the sanitizer's
    exception, which is fine.
    """
    total = float(arr.sum()) if known_sum is None else known_sum
    flat = arr.ravel()
    if flat.size > _FINGERPRINT_SAMPLE:
        flat = flat[:: flat.size // _FINGERPRINT_SAMPLE + 1]
    return total, float(np.dot(flat, _weights(flat.size)))


def _same(a: float, b: float) -> bool:
    return a == b or (math.isnan(a) and math.isnan(b))


def _count_nonfinite(arr: np.ndarray) -> int:
    """Exact non-finite count; only reached when the one-pass sum pre-check
    in the hooks is non-finite (the sum of an all-finite array is non-finite
    only on overflow, so a finite sum proves the array clean)."""
    return int(arr.size - np.count_nonzero(np.isfinite(arr)))


@dataclasses.dataclass
class SanitizerStats:
    """Counters for one sanitizer session (reported by the benchmark).

    ``arrays_registered`` counts closure captures (one per op output or
    input); ``arrays_verified`` counts checksum re-computations, one per
    *distinct* array per step, so it is normally smaller.
    """

    forward_ops: int = 0
    backward_ops: int = 0
    arrays_registered: int = 0
    arrays_verified: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class Sanitizer:
    """Installable tape guard; see the module docstring for semantics.

    Parameters
    ----------
    check_nan:
        Guard forward outputs and backward gradients against NaN/Inf.
    check_mutation:
        Checksum arrays captured by backward closures and verify them when
        the closure runs.
    """

    def __init__(self, check_nan: bool = True, check_mutation: bool = True):
        if not (check_nan or check_mutation):
            raise ValueError("Sanitizer needs at least one check enabled")
        self.check_nan = check_nan
        self.check_mutation = check_mutation
        self.stats = SanitizerStats()
        # id(arr) -> (arr, fingerprint, op, role): one checksum per distinct
        # array, taken the first time a backward closure captures it (an
        # array feeding k ops is checksummed once, not k times). The array
        # is held strongly so ids stay pinned until flush()/stop(); op and
        # role record the first capture site so a mismatch blames the op
        # whose saved state was corrupted.
        self._fp_seen: Dict[int, Tuple[np.ndarray, Tuple[float, float], str, str]] = {}
        self._previous = None
        self._running = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "Sanitizer":
        if self._running:
            raise RuntimeError("Sanitizer already running")
        self._previous = set_check_hook(self._check)
        self._running = True
        return self

    def stop(self) -> "Sanitizer":
        if self._running:
            set_check_hook(self._previous)
            self._previous = None
            self._running = False
            self._fp_seen.clear()
        return self

    def __enter__(self) -> "Sanitizer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            # Verify only on clean exit: an in-flight exception (e.g. a
            # NumericalFaultError) must not be masked by a mutation report
            # from the half-finished step it aborted.
            if exc_type is None and self.check_mutation:
                self.verify()
        finally:
            self.stop()

    @property
    def running(self) -> bool:
        return self._running

    def verify(self) -> None:
        """Re-checksum every array captured since the last :meth:`flush`.

        Raises :class:`TapeCorruptionError` naming the op that first
        captured a mutated array.
        """
        for arr, fingerprint, op, role in self._fp_seen.values():
            now = _fingerprint(arr)
            self.stats.arrays_verified += 1
            if not (_same(now[0], fingerprint[0]) and _same(now[1], fingerprint[1])):
                raise TapeCorruptionError(op, arr.shape, role)

    def flush(self) -> None:
        """Verify pending checksums, then drop them.

        Call at step boundaries — after ``backward()`` and *before*
        ``optimizer.step()``, whose in-place parameter update is
        sanctioned. Flushing also unpins the previous step's arrays so the
        cache cannot keep old graphs alive. The trainer does this
        automatically every step.
        """
        try:
            if self.check_mutation:
                self.verify()
        finally:
            self._fp_seen.clear()

    # -- the hook -------------------------------------------------------
    def _check(self, phase: str, op: str, payload) -> None:
        if phase == "forward":
            self._check_forward(op, payload)
        else:
            self._check_backward(op, payload)

    def _check_forward(self, op: str, out: Tensor) -> None:
        self.stats.forward_ops += 1
        data = out.data
        register = self.check_mutation and out._backward is not None
        if self.check_nan or register:
            total = float(data.sum())  # one pass serves NaN check + fingerprint
        if self.check_nan and not math.isfinite(total):
            bad = _count_nonfinite(data)
            if bad:  # a finite array can sum to inf; only real faults raise
                raise NumericalFaultError(
                    "forward", op, data.shape, bad, int(np.size(data))
                )
        if register:
            # Parents are almost always earlier outputs, so theirs is
            # usually a cache hit; misses are leaves (parameters, inputs).
            seen = self._fp_seen
            cached = seen.get(id(data))
            if cached is None or cached[0] is not data:
                seen[id(data)] = (data, _fingerprint(data, total), op, "output")
            for i, parent in enumerate(out._parents):
                arr = parent.data
                cached = seen.get(id(arr))
                if cached is None or cached[0] is not arr:
                    seen[id(arr)] = (arr, _fingerprint(arr), op, f"input {i}")
            self.stats.arrays_registered += 1 + len(out._parents)

    def _check_backward(self, op: str, payload) -> None:
        self.stats.backward_ops += 1
        if not self.check_nan:
            return
        grads = payload[1]
        if grads is None:
            return
        for i, grad in enumerate(grads):
            if grad is None:
                continue
            arr = grad if type(grad) is np.ndarray else np.asarray(grad)
            if not math.isfinite(arr.sum()):
                bad = _count_nonfinite(arr)
                if bad:
                    raise NumericalFaultError(
                        "backward", op, arr.shape, bad, int(np.size(arr)),
                        detail=f"gradient for input {i}",
                    )


# ----------------------------------------------------------------------
# Dead-parameter audit
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class DeadParameter:
    """One parameter that received no useful gradient from ``backward()``."""

    name: str
    shape: tuple
    reason: str  # "missing" (grad is None) or "zero" (all-zero grad)

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "shape": list(self.shape), "reason": self.reason}


def audit_parameters(named_parameters: Iterable[Tuple[str, Tensor]]) -> List[DeadParameter]:
    """Parameters with missing or exactly-zero gradients after backward.

    A ``missing`` grad means the parameter never entered the loss graph —
    the classic mis-wired gate (a GDU selection gate that exists but is
    bypassed). An all-``zero`` grad usually means its inputs were all zero
    or its contribution was masked out everywhere; both deserve a look.
    """
    dead: List[DeadParameter] = []
    for name, param in named_parameters:
        if param.grad is None:
            dead.append(DeadParameter(name, tuple(param.shape), "missing"))
        elif not np.any(param.grad):
            dead.append(DeadParameter(name, tuple(param.shape), "zero"))
    return dead
