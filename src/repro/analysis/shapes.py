"""Tensor-shape abstract interpreter (RA3xx).

Runs every ``forward()`` method in the program under an abstract domain of
symbolic shapes instead of arrays: a dimension is a linear combination of
named atoms (``batch``, ``hidden_dim``, ``input_dim + 2*hidden_dim``), a
tensor is a tuple of such dimensions plus a dtype, and every op registered
through :func:`repro.autograd.tensor.instrument_op` has a transfer
function mapping input shapes to output shapes while checking the op's
contract.

``__init__`` is interpreted first — ``Parameter(init.xavier_uniform((
concat_dim, hidden_dim), rng))`` binds ``self.w_f`` to an abstract tensor
whose dims carry the constructor-argument atoms, including derived sizes
like ``concat_dim = input_dim + 2 * hidden_dim``. ``forward`` then runs
abstractly with inputs bound from :data:`FORWARD_SPECS` (or unknown for
classes without a spec); both arms of every ``if`` are explored and
joined.

Only *provable* violations are reported: two dims mismatch when their
difference is a linear form that cannot be zero for any positive atom
assignment (``3*H`` vs ``4*H`` differs by ``H >= 1``), and a broadcast
additionally requires that neither side could be the literal 1. Anything
unknown stays silent — the pass is designed for zero false positives on
the real tree.

Rules
-----
RA301  statically provable shape mismatch in a forward() computation
RA302  statically provable dtype misuse (float data where ints required)
RA303  instrumented op with no transfer function in this interpreter
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .passes import ProgramRule
from .program import ModuleInfo, ProgramIndex
from .rules import Evidence, Finding


# ---------------------------------------------------------------------------
# Symbolic dimension algebra
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Dim:
    """A dimension as a linear form ``Σ coeff*atom + const`` over atoms ≥ 1."""

    terms: Tuple[Tuple[str, int], ...] = ()  #: sorted (atom, coeff), coeff≠0
    const: int = 0

    @staticmethod
    def atom(name: str) -> "Dim":
        return Dim(terms=((name, 1),))

    @staticmethod
    def of(value: int) -> "Dim":
        return Dim(const=int(value))

    def _combine(self, other: "Dim", sign: int) -> "Dim":
        acc = dict(self.terms)
        for name, coeff in other.terms:
            acc[name] = acc.get(name, 0) + sign * coeff
        terms = tuple(
            sorted((n, c) for n, c in acc.items() if c != 0)
        )
        return Dim(terms=terms, const=self.const + sign * other.const)

    def __add__(self, other: "Dim") -> "Dim":
        return self._combine(other, 1)

    def __sub__(self, other: "Dim") -> "Dim":
        return self._combine(other, -1)

    def scaled(self, factor: int) -> "Dim":
        return Dim(
            terms=tuple((n, c * factor) for n, c in self.terms if c * factor),
            const=self.const * factor,
        )

    def is_const(self) -> bool:
        return not self.terms

    def is_one(self) -> bool:
        return self.is_const() and self.const == 1

    def min_value(self) -> Optional[int]:
        """Lower bound given every atom ≥ 1, or ``None`` if unbounded below."""
        if any(coeff < 0 for _, coeff in self.terms):
            return None
        return self.const + sum(coeff for _, coeff in self.terms)

    def could_be_one(self) -> bool:
        if self.is_const():
            return self.const == 1
        low = self.min_value()
        return low is None or low <= 1

    def provably_ne(self, other: "Dim") -> bool:
        """True iff ``self != other`` for *every* positive atom assignment."""
        diff = self - other
        if not diff.terms and diff.const == 0:
            return False
        low = diff.min_value()
        if low is not None and low > 0:
            return True
        high = (other - self).min_value()
        return high is not None and high > 0

    def __str__(self) -> str:
        parts = []
        for name, coeff in self.terms:
            parts.append(name if coeff == 1 else f"{coeff}*{name}")
        if self.const or not parts:
            parts.append(str(self.const))
        return "+".join(parts)


#: A shape is a tuple of dims where ``None`` marks an unknown dimension.
ShapeT = Optional[Tuple[Optional[Dim], ...]]


@dataclasses.dataclass(frozen=True)
class AT:
    """Abstract tensor: optional shape (None = unknown rank) + dtype."""

    shape: ShapeT = None
    dtype: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class ATuple:
    """Abstract tuple/list of values (shape tuples, tensor pairs, ...)."""

    items: Tuple[Any, ...]


class ShapeError(Exception):
    """A provable contract violation found by a transfer function."""

    def __init__(self, rule: str, message: str):
        super().__init__(message)
        self.rule = rule
        self.message = message


def _fmt(shape: ShapeT) -> str:
    if shape is None:
        return "(?)"
    return "(" + ", ".join("?" if d is None else str(d) for d in shape) + ")"


def _require_eq(a: Optional[Dim], b: Optional[Dim], context: str) -> None:
    if a is None or b is None:
        return
    if a.provably_ne(b):
        raise ShapeError("RA301", f"{context}: {a} vs {b}")


# ---------------------------------------------------------------------------
# Transfer functions — one per instrumented op
# ---------------------------------------------------------------------------

TRANSFERS: Dict[str, Callable[..., Any]] = {}


def _transfer(name: str):
    def register(fn):
        TRANSFERS[name] = fn
        return fn

    return register


def _as_tensor(value: Any) -> AT:
    if isinstance(value, AT):
        return value
    if isinstance(value, Dim) or isinstance(value, (int, float)):
        return AT(shape=(), dtype="float64")
    return AT()


def _broadcast_dim(a: Optional[Dim], b: Optional[Dim]) -> Optional[Dim]:
    if a is None or b is None:
        return None
    if a == b:
        return a
    if a.is_one():
        return b
    if b.is_one():
        return a
    if a.provably_ne(b) and not a.could_be_one() and not b.could_be_one():
        raise ShapeError(
            "RA301", f"cannot broadcast dimension {a} with {b}"
        )
    return None


def _broadcast(a: ShapeT, b: ShapeT) -> ShapeT:
    if a is None or b is None:
        return None
    if len(a) < len(b):
        a, b = b, a
    pad = len(a) - len(b)
    out: List[Optional[Dim]] = list(a[:pad])
    for da, db in zip(a[pad:], b):
        out.append(_broadcast_dim(da, db))
    return tuple(out)


def _elementwise_binary(*args: Any, **_kw: Any) -> AT:
    a, b = _as_tensor(args[0]), _as_tensor(args[1])
    return AT(shape=_broadcast(a.shape, b.shape), dtype="float64")


def _elementwise_unary(*args: Any, **_kw: Any) -> AT:
    a = _as_tensor(args[0])
    return AT(shape=a.shape, dtype="float64")


for _op in ("add", "sub", "mul", "div", "pow"):
    TRANSFERS[_op] = _elementwise_binary
for _op in (
    "neg",
    "exp",
    "log",
    "sqrt",
    "tanh",
    "sigmoid",
    "relu",
    "abs",
    "clip",
):
    TRANSFERS[_op] = _elementwise_unary


@_transfer("where")
def _t_where(*args: Any, **_kw: Any) -> AT:
    if len(args) < 3:
        return AT()
    a, b = _as_tensor(args[1]), _as_tensor(args[2])
    return AT(shape=_broadcast(a.shape, b.shape), dtype="float64")


@_transfer("matmul")
def _t_matmul(*args: Any, **_kw: Any) -> AT:
    a, b = _as_tensor(args[0]), _as_tensor(args[1])
    if a.shape is None or b.shape is None:
        return AT(dtype="float64")
    if len(a.shape) == 0 or len(b.shape) == 0:
        raise ShapeError("RA301", "matmul on a 0-d operand")
    if len(b.shape) != 2 or len(a.shape) < 1:
        return AT(dtype="float64")  # uncommon ranks: stay silent
    inner_a = a.shape[-1]
    _require_eq(
        inner_a,
        b.shape[0],
        f"matmul inner dimensions of {_fmt(a.shape)} @ {_fmt(b.shape)}",
    )
    if len(a.shape) == 1:
        return AT(shape=(b.shape[1],), dtype="float64")
    return AT(shape=a.shape[:-1] + (b.shape[1],), dtype="float64")


def _axis_int(value: Any) -> Optional[int]:
    if isinstance(value, Dim) and value.is_const():
        return value.const
    if isinstance(value, int):
        return value
    return None


@_transfer("reshape")
def _t_reshape(*args: Any, **_kw: Any) -> AT:
    dims: List[Optional[Dim]] = []
    targets = args[1:]
    if len(targets) == 1 and isinstance(targets[0], ATuple):
        targets = targets[0].items
    for target in targets:
        if isinstance(target, Dim):
            dims.append(None if target.is_const() and target.const < 0 else target)
        else:
            dims.append(None)
    return AT(shape=tuple(dims) if dims else None, dtype="float64")


@_transfer("transpose")
def _t_transpose(*args: Any, **_kw: Any) -> AT:
    a = _as_tensor(args[0])
    axes = [_axis_int(x) for x in args[1:]]
    if a.shape is None:
        return AT(dtype=a.dtype)
    if not axes:
        return AT(shape=tuple(reversed(a.shape)), dtype=a.dtype)
    if any(x is None for x in axes) or len(axes) != len(a.shape):
        return AT(dtype=a.dtype)
    try:
        return AT(shape=tuple(a.shape[i] for i in axes), dtype=a.dtype)
    except IndexError:
        raise ShapeError(
            "RA301",
            f"transpose axes {tuple(axes)} out of range for {_fmt(a.shape)}",
        )


@_transfer("index")
def _t_index(*args: Any, **_kw: Any) -> AT:
    return AT(dtype=_as_tensor(args[0]).dtype)


@_transfer("squeeze")
def _t_squeeze(*args: Any, axis: Any = None, **_kw: Any) -> AT:
    a = _as_tensor(args[0])
    if len(args) > 1:
        axis = args[1]
    ax = _axis_int(axis)
    if a.shape is None or ax is None:
        return AT(dtype=a.dtype)
    rank = len(a.shape)
    if not -rank <= ax < rank:
        raise ShapeError(
            "RA301", f"squeeze axis {ax} out of range for {_fmt(a.shape)}"
        )
    ax %= rank
    dim = a.shape[ax]
    if dim is not None and not dim.could_be_one():
        raise ShapeError(
            "RA301",
            f"cannot squeeze axis {ax} of {_fmt(a.shape)}: size {dim} is "
            "provably not 1",
        )
    return AT(shape=a.shape[:ax] + a.shape[ax + 1 :], dtype=a.dtype)


@_transfer("expand_dims")
def _t_expand_dims(*args: Any, axis: Any = None, **_kw: Any) -> AT:
    a = _as_tensor(args[0])
    if len(args) > 1:
        axis = args[1]
    ax = _axis_int(axis)
    if a.shape is None or ax is None:
        return AT(dtype=a.dtype)
    rank = len(a.shape)
    if not -rank - 1 <= ax <= rank:
        raise ShapeError(
            "RA301",
            f"expand_dims axis {ax} out of range for {_fmt(a.shape)}",
        )
    ax %= rank + 1
    return AT(
        shape=a.shape[:ax] + (Dim.of(1),) + a.shape[ax:], dtype=a.dtype
    )


def _t_reduce(*args: Any, axis: Any = None, keepdims: Any = False, **_kw: Any) -> AT:
    a = _as_tensor(args[0])
    if len(args) > 1:
        axis = args[1]
    if axis is None:
        return AT(shape=(), dtype="float64")
    ax = _axis_int(axis)
    if a.shape is None or ax is None:
        return AT(dtype="float64")
    rank = len(a.shape)
    if not -rank <= ax < rank:
        raise ShapeError(
            "RA301",
            f"reduction axis {ax} out of range for {_fmt(a.shape)}",
        )
    ax %= rank
    if keepdims is True:
        return AT(
            shape=a.shape[:ax] + (Dim.of(1),) + a.shape[ax + 1 :],
            dtype="float64",
        )
    return AT(shape=a.shape[:ax] + a.shape[ax + 1 :], dtype="float64")


for _op in ("sum", "mean", "max"):
    TRANSFERS[_op] = _t_reduce


@_transfer("concat")
def _t_concat(*args: Any, axis: Any = 0, **_kw: Any) -> AT:
    if not args or not isinstance(args[0], ATuple):
        return AT(dtype="float64")
    items = [_as_tensor(item) for item in args[0].items]
    if len(args) > 1:
        axis = args[1]
    ax = _axis_int(axis)
    if not items:
        return AT(dtype="float64")
    shapes = [t.shape for t in items]
    if any(s is None for s in shapes) or ax is None:
        return AT(dtype="float64")
    rank = len(shapes[0])
    for s in shapes[1:]:
        if len(s) != rank:
            raise ShapeError(
                "RA301",
                "concat of tensors with different ranks: "
                + ", ".join(_fmt(s) for s in shapes),
            )
    if not -rank <= ax < rank:
        raise ShapeError(
            "RA301", f"concat axis {ax} out of range for rank {rank}"
        )
    ax %= rank
    out: List[Optional[Dim]] = []
    for position in range(rank):
        dims = [s[position] for s in shapes]
        if position == ax:
            total: Optional[Dim] = Dim.of(0)
            for d in dims:
                total = None if (total is None or d is None) else total + d
            out.append(total)
            continue
        first = dims[0]
        for d in dims[1:]:
            _require_eq(
                first,
                d,
                f"concat along axis {ax} requires equal axis-{position} "
                "sizes",
            )
            if first is None:
                first = d
        out.append(first)
    return AT(shape=tuple(out), dtype="float64")


@_transfer("stack")
def _t_stack(*args: Any, axis: Any = 0, **_kw: Any) -> AT:
    if not args or not isinstance(args[0], ATuple):
        return AT(dtype="float64")
    items = [_as_tensor(item) for item in args[0].items]
    if len(args) > 1:
        axis = args[1]
    ax = _axis_int(axis)
    shapes = [t.shape for t in items]
    if not items or any(s is None for s in shapes) or ax is None:
        return AT(dtype="float64")
    rank = len(shapes[0])
    for s in shapes[1:]:
        if len(s) != rank:
            raise ShapeError(
                "RA301",
                "stack of tensors with different ranks: "
                + ", ".join(_fmt(s) for s in shapes),
            )
        for position in range(rank):
            _require_eq(
                shapes[0][position],
                s[position],
                "stack requires identical shapes",
            )
    if not -rank - 1 <= ax <= rank:
        raise ShapeError(
            "RA301", f"stack axis {ax} out of range for rank {rank}"
        )
    ax %= rank + 1
    base = list(shapes[0])
    base.insert(ax, Dim.of(len(items)))
    return AT(shape=tuple(base), dtype="float64")


@_transfer("embedding_gather")
def _t_embedding_gather(*args: Any, **_kw: Any) -> AT:
    weight = _as_tensor(args[0])
    indices = _as_tensor(args[1]) if len(args) > 1 else AT()
    if weight.shape is not None and len(weight.shape) != 2:
        raise ShapeError(
            "RA301",
            f"embedding_gather weight must be 2-D, got {_fmt(weight.shape)}",
        )
    if indices.dtype == "float64":
        raise ShapeError(
            "RA302",
            "embedding_gather indices must be integers, got float tensor "
            "data",
        )
    if weight.shape is None or indices.shape is None:
        return AT(dtype="float64")
    return AT(shape=indices.shape + (weight.shape[1],), dtype="float64")


def _rnn_sequence(gates: int, op: str):
    def transfer(*args: Any, **_kw: Any) -> AT:
        if len(args) < 5:
            return AT(dtype="float64")
        x, mask, w_x, w_h, b = (_as_tensor(a) for a in args[:5])
        if x.shape is not None and len(x.shape) != 3:
            raise ShapeError(
                "RA301", f"{op} expects (B, T, E) input, got {_fmt(x.shape)}"
            )
        if w_x.shape is not None and len(w_x.shape) != 2:
            raise ShapeError(
                "RA301", f"{op} w_x must be 2-D, got {_fmt(w_x.shape)}"
            )
        if w_h.shape is not None and len(w_h.shape) != 2:
            raise ShapeError(
                "RA301", f"{op} w_h must be 2-D, got {_fmt(w_h.shape)}"
            )
        hidden = w_h.shape[0] if w_h.shape is not None else None
        gated = hidden.scaled(gates) if hidden is not None else None
        if w_h.shape is not None:
            _require_eq(
                w_h.shape[1],
                gated,
                f"{op} w_h must stack {gates} gates of the hidden size",
            )
        if w_x.shape is not None:
            _require_eq(
                w_x.shape[1], gated, f"{op} w_x gate width"
            )
        if b.shape is not None and len(b.shape) == 1:
            _require_eq(b.shape[0], gated, f"{op} bias gate width")
        if x.shape is not None and w_x.shape is not None:
            _require_eq(
                x.shape[2], w_x.shape[0], f"{op} input feature size"
            )
        if (
            mask.shape is not None
            and len(mask.shape) == 2
            and x.shape is not None
        ):
            _require_eq(mask.shape[0], x.shape[0], f"{op} mask batch")
            _require_eq(mask.shape[1], x.shape[1], f"{op} mask length")
        if x.shape is None or hidden is None:
            return AT(dtype="float64")
        return AT(shape=(x.shape[0], x.shape[1], hidden), dtype="float64")

    return transfer


TRANSFERS["gru_sequence"] = _rnn_sequence(3, "gru_sequence")
TRANSFERS["lstm_sequence"] = _rnn_sequence(4, "lstm_sequence")


@_transfer("gdu_layer")
def _t_gdu_layer(*args: Any, **kwargs: Any) -> AT:
    if len(args) < 5:
        return AT(dtype="float64")
    x, z, t, w_u, b_u = (_as_tensor(a) for a in args[:5])
    for name, at in (("x", x), ("z", z), ("t", t)):
        if at.shape is not None and len(at.shape) != 2:
            raise ShapeError(
                "RA301",
                f"gdu_layer {name} must be a (n, ·) batch, got "
                f"{_fmt(at.shape)}",
            )
    batch = x.shape[0] if x.shape is not None else None
    if z.shape is not None:
        _require_eq(batch, z.shape[0], "gdu_layer batch of x vs z")
    if t.shape is not None:
        _require_eq(batch, t.shape[0], "gdu_layer batch of x vs t")
    hidden = z.shape[1] if z.shape is not None else None
    if t.shape is not None:
        _require_eq(hidden, t.shape[1], "gdu_layer state width of z vs t")
        if hidden is None:
            hidden = t.shape[1]
    concat = None
    if (
        x.shape is not None
        and z.shape is not None
        and t.shape is not None
        and x.shape[1] is not None
        and z.shape[1] is not None
        and t.shape[1] is not None
    ):
        concat = x.shape[1] + z.shape[1] + t.shape[1]

    def check_gate(name: str, w: Any, b: Any) -> None:
        wt = _as_tensor(w)
        if wt.shape is not None:
            if len(wt.shape) != 2:
                raise ShapeError(
                    "RA301",
                    f"gdu_layer {name} weight must be 2-D, got "
                    f"{_fmt(wt.shape)}",
                )
            _require_eq(
                wt.shape[0],
                concat,
                f"gdu_layer {name} weight rows vs [x|z|t] width",
            )
            _require_eq(
                wt.shape[1], hidden, f"gdu_layer {name} weight hidden width"
            )
        bt = _as_tensor(b)
        if bt.shape is not None and len(bt.shape) == 1:
            _require_eq(bt.shape[0], hidden, f"gdu_layer {name} bias width")

    check_gate("candidate", w_u, b_u)
    for gate, width in (("forget", 2), ("adjust", 2), ("select", 4)):
        bundle = kwargs.get(gate)
        if isinstance(bundle, ATuple) and len(bundle.items) == width:
            for j in range(0, width, 2):
                check_gate(gate, bundle.items[j], bundle.items[j + 1])
    if batch is None or hidden is None:
        return AT(dtype="float64")
    return AT(shape=(batch, hidden), dtype="float64")


@_transfer("segment_sum")
def _t_segment_sum(*args: Any, **_kw: Any) -> AT:
    source = _as_tensor(args[0])
    segments = args[2] if len(args) > 2 else None
    seg_dim = segments if isinstance(segments, Dim) else None
    if source.shape is None or len(source.shape) < 1:
        return AT(dtype="float64")
    return AT(shape=(seg_dim,) + source.shape[1:], dtype="float64")


@_transfer("gather_segment_mean")
def _t_gather_segment_mean(*args: Any, **_kw: Any) -> AT:
    source = _as_tensor(args[0])
    segments = args[3] if len(args) > 3 else None
    seg_dim = segments if isinstance(segments, Dim) else None
    if source.shape is not None and len(source.shape) != 2:
        raise ShapeError(
            "RA301",
            f"gather_segment_mean source must be 2-D, got "
            f"{_fmt(source.shape)}",
        )
    if source.shape is None:
        return AT(dtype="float64")
    return AT(shape=(seg_dim, source.shape[1]), dtype="float64")


# ---------------------------------------------------------------------------
# Abstract interpreter over __init__ / forward
# ---------------------------------------------------------------------------

#: Symbolic input bindings for forward() of well-known classes. Entries are
#: shape tuples of atom names (matching the class's __init__ parameters) or
#: nested tuples for tuple-valued arguments (LSTM state).
FORWARD_SPECS: Dict[str, Dict[str, Any]] = {
    "Linear": {"x": ("batch", "in_features")},
    "RNNCell": {"x": ("batch", "input_size"), "h": ("batch", "hidden_size")},
    "GRUCell": {"x": ("batch", "input_size"), "h": ("batch", "hidden_size")},
    "LSTMCell": {
        "x": ("batch", "input_size"),
        "state": (
            ("batch", "hidden_size"),
            ("batch", "hidden_size"),
        ),
    },
    "GDU": {
        "x": ("batch", "input_dim"),
        "z": ("batch", "hidden_dim"),
        "t": ("batch", "hidden_dim"),
    },
}

#: Tensor method names that dispatch straight to a transfer function.
_TENSOR_METHODS = {
    "exp",
    "log",
    "sqrt",
    "tanh",
    "sigmoid",
    "relu",
    "abs",
    "clip",
    "sum",
    "mean",
    "max",
    "reshape",
    "transpose",
    "squeeze",
    "expand_dims",
}

#: Shape-constructor call terminals: first argument is the shape tuple.
_SHAPE_CTORS = {
    "zeros",
    "ones",
    "empty",
    "xavier_uniform",
    "orthogonal",
    "normal",
    "uniform",
}

_LIKE_CTORS = {"zeros_like", "ones_like", "empty_like"}

_FN_OPS = {
    "concatenate": "concat",
    "concat": "concat",
    "stack": "stack",
    "where": "where",
    "embedding_gather": "embedding_gather",
    "gru_sequence": "gru_sequence",
    "lstm_sequence": "lstm_sequence",
    "gdu_layer": "gdu_layer",
    "segment_sum": "segment_sum",
    "gather_segment_mean": "gather_segment_mean",
}

_BINOPS = {
    ast.Add: "add",
    ast.Sub: "sub",
    ast.Mult: "mul",
    ast.Div: "div",
    ast.Pow: "pow",
    ast.MatMult: "matmul",
}


@dataclasses.dataclass
class _Closure:
    node: Any
    env: Dict[str, Any]


def _join(a: Any, b: Any) -> Any:
    if a is b:
        return a
    if isinstance(a, AT) and isinstance(b, AT):
        return AT(
            shape=a.shape if a.shape == b.shape else None,
            dtype=a.dtype if a.dtype == b.dtype else None,
        )
    if a == b:
        return a
    return None


class ClassAnalyzer:
    """Abstractly execute one class's ``__init__`` then ``forward``."""

    def __init__(self, class_node: ast.ClassDef):
        self.class_node = class_node
        self.attrs: Dict[str, Any] = {}
        self.errors: List[Tuple[int, str, str]] = []
        self._seen: set = set()
        self.init_line: Optional[int] = None

    # -- public ----------------------------------------------------------
    def run(self) -> List[Tuple[int, str, str]]:
        init_fn = self._method("__init__")
        forward_fn = self._method("forward")
        if forward_fn is None:
            return []
        if init_fn is not None:
            self.init_line = init_fn.lineno
            env = self._bind_init_params(init_fn)
            self._exec_body(init_fn.body, env)
        env = self._bind_forward_params(forward_fn)
        self._exec_body(forward_fn.body, env)
        return self.errors

    # -- setup -----------------------------------------------------------
    def _method(self, name: str) -> Optional[ast.FunctionDef]:
        for stmt in self.class_node.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
                return stmt
        return None

    @staticmethod
    def _params(fn: ast.FunctionDef) -> List[str]:
        names = [a.arg for a in fn.args.args]
        return [n for n in names if n != "self"]

    def _bind_init_params(self, fn: ast.FunctionDef) -> Dict[str, Any]:
        return {name: Dim.atom(name) for name in self._params(fn)}

    def _bind_forward_params(self, fn: ast.FunctionDef) -> Dict[str, Any]:
        spec = FORWARD_SPECS.get(self.class_node.name, {})
        env: Dict[str, Any] = {}
        for name in self._params(fn):
            bound = spec.get(name)
            env[name] = _spec_value(bound) if bound is not None else None
        return env

    # -- statements ------------------------------------------------------
    def _exec_body(self, body: List[ast.stmt], env: Dict[str, Any]) -> None:
        for stmt in body:
            self._exec(stmt, env)

    def _exec(self, stmt: ast.stmt, env: Dict[str, Any]) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            op = _BINOPS.get(type(stmt.op))
            left = self._eval(stmt.target, env)
            right = self._eval(stmt.value, env)
            result = self._apply_binop(op, left, right, stmt.lineno)
            self._assign(stmt.target, result, env)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            if getattr(stmt, "value", None) is not None:
                self._eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            if _is_guard(stmt):
                self._exec_body(stmt.orelse, env)
                return
            then_env = dict(env)
            else_env = dict(env)
            self._exec_body(stmt.body, then_env)
            self._exec_body(stmt.orelse, else_env)
            for key in set(then_env) | set(else_env):
                if key in then_env and key in else_env:
                    env[key] = _join(then_env[key], else_env[key])
                else:
                    env[key] = None
        elif isinstance(stmt, (ast.For, ast.While)):
            if isinstance(stmt, ast.For):
                self._assign(stmt.target, None, env)
            self._exec_body(stmt.body, env)
            self._exec_body(stmt.orelse, env)
        elif isinstance(stmt, ast.With):
            self._exec_body(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            self._exec_body(stmt.body, env)
            self._exec_body(stmt.finalbody, env)
        elif isinstance(stmt, ast.FunctionDef):
            env[stmt.name] = _Closure(stmt, dict(env))
        # Raise/Pass/Assert/Import/...: no shape effect.

    def _assign(self, target: ast.expr, value: Any, env: Dict[str, Any]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, ast.Attribute):
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self.attrs[target.attr] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            items = (
                value.items
                if isinstance(value, ATuple)
                and len(value.items) == len(target.elts)
                else [None] * len(target.elts)
            )
            for element, item in zip(target.elts, items):
                self._assign(element, item, env)

    # -- expressions -----------------------------------------------------
    def _record(self, lineno: int, err: ShapeError) -> None:
        key = (lineno, err.rule, err.message)
        if key not in self._seen:
            self._seen.add(key)
            self.errors.append(key)

    def _apply(self, op: str, lineno: int, args, kwargs) -> Any:
        transfer = TRANSFERS.get(op)
        if transfer is None:
            return None
        try:
            return transfer(*args, **kwargs)
        except ShapeError as err:
            self._record(lineno, err)
            return AT(dtype="float64")
        except Exception:
            return None

    def _apply_binop(self, op: Optional[str], left, right, lineno: int) -> Any:
        if op is None:
            return None
        if isinstance(left, Dim) or isinstance(left, int):
            left_dim = left if isinstance(left, Dim) else Dim.of(left)
            if isinstance(right, Dim) or isinstance(right, int):
                right_dim = right if isinstance(right, Dim) else Dim.of(right)
                if op == "add":
                    return left_dim + right_dim
                if op == "sub":
                    return left_dim - right_dim
                if op == "mul":
                    if left_dim.is_const():
                        return right_dim.scaled(left_dim.const)
                    if right_dim.is_const():
                        return left_dim.scaled(right_dim.const)
                return None
        if isinstance(left, AT) or isinstance(right, AT):
            return self._apply(op, lineno, (left, right), {})
        return None

    def _eval(self, node: ast.expr, env: Dict[str, Any]) -> Any:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return node.value
            if isinstance(node.value, int):
                return Dim.of(node.value)
            if isinstance(node.value, float):
                return AT(shape=(), dtype="float64")
            return node.value
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return self.attrs.get(node.attr)
            value = self._eval(node.value, env)
            if node.attr == "data":
                return value
            if isinstance(value, AT):
                if node.attr == "T":
                    return self._apply("transpose", node.lineno, (value,), {})
                if node.attr == "shape" and value.shape is not None:
                    return ATuple(items=tuple(value.shape))
            return None
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            return self._apply_binop(
                _BINOPS.get(type(node.op)), left, right, node.lineno
            )
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, env)
            if isinstance(node.op, ast.USub):
                if isinstance(operand, Dim):
                    return operand.scaled(-1)
                if isinstance(operand, AT):
                    return self._apply("neg", node.lineno, (operand,), {})
            return None
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Subscript):
            value = self._eval(node.value, env)
            key = node.slice
            if isinstance(value, ATuple) and isinstance(key, ast.Constant):
                if (
                    isinstance(key.value, int)
                    and -len(value.items) <= key.value < len(value.items)
                ):
                    return value.items[key.value]
                return None
            if isinstance(value, AT):
                return self._apply("index", node.lineno, (value,), {})
            return None
        if isinstance(node, (ast.Tuple, ast.List)):
            return ATuple(
                items=tuple(self._eval(e, env) for e in node.elts)
            )
        if isinstance(node, ast.IfExp):
            return _join(
                self._eval(node.body, env), self._eval(node.orelse, env)
            )
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child, env)
            return None
        if isinstance(node, ast.Starred):
            self._eval(node.value, env)
            return None
        return None

    def _eval_call(self, node: ast.Call, env: Dict[str, Any]) -> Any:
        has_star = any(isinstance(a, ast.Starred) for a in node.args) or any(
            kw.arg is None for kw in node.keywords
        )
        args = [self._eval(a, env) for a in node.args]
        kwargs = {
            kw.arg: self._eval(kw.value, env)
            for kw in node.keywords
            if kw.arg is not None
        }
        if has_star:
            return None
        func = node.func
        if isinstance(func, ast.Attribute):
            name = func.attr
            obj = self._eval(func.value, env)
            if isinstance(obj, AT) and name in _TENSOR_METHODS:
                return self._apply(name, node.lineno, [obj] + args, kwargs)
            if name in _SHAPE_CTORS and args:
                return AT(shape=_shape_from(args[0]), dtype="float64")
            if name in _LIKE_CTORS and args:
                model = _as_tensor(args[0])
                return AT(shape=model.shape, dtype="float64")
            if name in ("asarray", "array") and args:
                value = args[0]
                dtype = kwargs.get("dtype")
                if isinstance(value, AT):
                    out_dtype = value.dtype
                    if isinstance(dtype, str) and "int" in dtype:
                        out_dtype = "intp"
                    return AT(shape=value.shape, dtype=out_dtype)
                return None
            if name == "full" and args:
                return AT(shape=_shape_from(args[0]), dtype="float64")
            return None
        if isinstance(func, ast.Name):
            name = func.id
            bound = env.get(name)
            if isinstance(bound, _Closure):
                return self._call_closure(bound, args)
            if name in ("Tensor", "Parameter", "ensure_tensor") and args:
                return _as_tensor(args[0]) if args[0] is not None else AT()
            op = _FN_OPS.get(name)
            if op is not None:
                return self._apply(op, node.lineno, args, kwargs)
            if name in _SHAPE_CTORS and args:
                return AT(shape=_shape_from(args[0]), dtype="float64")
        return None

    def _call_closure(self, closure: _Closure, args: List[Any]) -> Any:
        fn = closure.node
        env = dict(closure.env)
        params = [a.arg for a in fn.args.args if a.arg != "self"]
        for param, value in zip(params, args):
            env[param] = value
        result: Any = "__unset__"
        for stmt in fn.body:
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                value = self._eval(stmt.value, env)
                result = value if result == "__unset__" else _join(result, value)
            else:
                self._exec(stmt, env)
        return None if result == "__unset__" else result


def _spec_value(spec: Any) -> Any:
    if isinstance(spec, tuple) and spec and isinstance(spec[0], tuple):
        return ATuple(items=tuple(_spec_value(s) for s in spec))
    return AT(
        shape=tuple(Dim.atom(name) for name in spec), dtype="float64"
    )


def _shape_from(value: Any) -> ShapeT:
    if isinstance(value, ATuple):
        return tuple(
            item if isinstance(item, Dim) else None for item in value.items
        )
    if isinstance(value, Dim):
        return (value,)
    return None


def _is_guard(stmt: ast.If) -> bool:
    """An ``if ...: raise`` validation guard — skip the raising arm."""
    return all(isinstance(s, ast.Raise) for s in stmt.body) and bool(stmt.body)


# ---------------------------------------------------------------------------
# Pass rules
# ---------------------------------------------------------------------------


def analyze_classes(
    index: ProgramIndex,
) -> List[Tuple[ModuleInfo, ast.ClassDef, List[Tuple[int, str, str]]]]:
    """Run the interpreter over every class with a ``forward`` method."""
    cached = getattr(index, "_shape_analysis", None)
    if cached is not None:
        return cached
    results = []
    for info in index.modules.values():
        for stmt in info.tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            if not any(
                isinstance(s, ast.FunctionDef) and s.name == "forward"
                for s in stmt.body
            ):
                continue
            analyzer = ClassAnalyzer(stmt)
            try:
                errors = analyzer.run()
            except Exception:  # pragma: no cover - robustness backstop
                errors = []
            results.append((info, stmt, errors, analyzer.init_line))
    index._shape_analysis = results
    return results


class _InterpreterRule(ProgramRule):
    """Shared driver: report interpreter errors carrying this rule's id."""

    def check(self, index: ProgramIndex) -> Iterator[Finding]:
        for info, cls, errors, init_line in analyze_classes(index):
            for lineno, rule, message in errors:
                if rule != self.id:
                    continue
                evidence = [
                    Evidence(
                        info.path,
                        lineno,
                        f"in {cls.name}.forward abstract execution",
                    )
                ]
                if init_line is not None:
                    evidence.append(
                        Evidence(
                            info.path,
                            init_line,
                            f"parameter shapes bound in {cls.name}.__init__",
                        )
                    )
                yield self.finding(
                    info.path,
                    lineno,
                    f"{cls.name}: {message}",
                    evidence=evidence,
                )


class ShapeMismatchRule(_InterpreterRule):
    id = "RA301"
    title = "provable shape mismatch"
    hint = (
        "the symbolic shapes cannot agree for any input size; fix the "
        "parameter shape or the op wiring"
    )


class DtypeMismatchRule(_InterpreterRule):
    id = "RA302"
    title = "provable dtype misuse"
    hint = "this op requires integer inputs; cast or re-route the data"


class MissingTransferRule(ProgramRule):
    """RA303: every instrumented op must have a transfer function.

    Compares the runtime op registry
    (:data:`repro.autograd.tensor.INSTRUMENTED_OPS`) against
    :data:`TRANSFERS`; an op the interpreter cannot model silently blinds
    the whole shapes pass, so the gap itself is a finding.
    """

    id = "RA303"
    title = "instrumented op without shape transfer"
    hint = (
        "add a transfer function to repro.analysis.shapes.TRANSFERS for "
        "this op"
    )

    def check(self, index: ProgramIndex) -> Iterator[Finding]:
        try:
            from ..autograd.tensor import INSTRUMENTED_OPS
        except Exception:  # numpy-less environment: nothing to compare
            return
        # Anchor findings on an indexed autograd module when available so
        # suppressions have a place to live; fall back to the first file.
        anchor = None
        for info in index.modules.values():
            if info.name == "repro.autograd.tensor":
                anchor = info
                break
        if anchor is None and index.modules:
            anchor = next(iter(index.modules.values()))
        if anchor is None:
            return
        for op in INSTRUMENTED_OPS:
            if op not in TRANSFERS:
                yield self.finding(
                    anchor.path,
                    1,
                    f"op {op!r} is instrumented but has no transfer "
                    "function in the shapes pass",
                )


SHAPE_RULES = (
    ShapeMismatchRule(),
    DtypeMismatchRule(),
    MissingTransferRule(),
)
