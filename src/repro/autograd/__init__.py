"""From-scratch reverse-mode autodiff and neural-network substrate.

Public surface::

    from repro.autograd import Tensor, nn, optim, functional as F

See DESIGN.md §2 for why this substrate exists (no PyTorch in the
environment) and tests/test_autograd_*.py for finite-difference checks.
"""

from . import functional, init, kernels, optim
from .kernels import embedding_gather, gdu_layer, gru_sequence, lstm_sequence
from .nn import (
    Dropout,
    Embedding,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Tanh,
)
from .gradcheck import GradientCheckError, gradcheck, numeric_gradient
from .conv import CNNEncoder, Conv1d, conv1d, max_pool_over_time
from .rnn import GRUCell, GRUEncoder, LSTMCell, RNNCell, run_rnn
from .serialization import load_arrays, load_state, save_arrays, save_state
from .tensor import (
    Tensor,
    concatenate,
    ensure_tensor,
    no_tape,
    ones,
    randn,
    stack,
    tape_enabled,
    where,
    zeros,
)

__all__ = [
    "Tensor",
    "concatenate",
    "ensure_tensor",
    "stack",
    "where",
    "zeros",
    "ones",
    "randn",
    "functional",
    "init",
    "kernels",
    "optim",
    "embedding_gather",
    "gdu_layer",
    "gru_sequence",
    "lstm_sequence",
    "no_tape",
    "tape_enabled",
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "Dropout",
    "Sequential",
    "ReLU",
    "Tanh",
    "RNNCell",
    "GRUCell",
    "LSTMCell",
    "GRUEncoder",
    "Conv1d",
    "CNNEncoder",
    "conv1d",
    "max_pool_over_time",
    "run_rnn",
    "save_state",
    "load_state",
    "save_arrays",
    "load_arrays",
    "gradcheck",
    "numeric_gradient",
    "GradientCheckError",
]
