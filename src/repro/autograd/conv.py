"""1-D convolution for text, used by the CNN latent-feature encoder.

The paper's latent features are motivated by Kim (2014) sentence CNNs
(reference [32] in §4.1.2); :class:`repro.core` exposes a CNN encoder as an
HFLU alternative built on this op.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import init
from .nn import Module, Parameter
from .tensor import Tensor, ensure_tensor


def conv1d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Valid (no padding) 1-D convolution.

    Parameters
    ----------
    x:
        Input of shape ``(batch, seq_len, in_channels)``.
    weight:
        Kernel of shape ``(kernel_size, in_channels, out_channels)``.
    bias:
        Optional ``(out_channels,)``.

    Returns ``(batch, seq_len - kernel_size + 1, out_channels)``.
    """
    x = ensure_tensor(x)
    weight = ensure_tensor(weight)
    if x.ndim != 3:
        raise ValueError(f"conv1d expects (batch, seq, channels) input, got {x.shape}")
    if weight.ndim != 3:
        raise ValueError(f"conv1d expects (k, in, out) kernel, got {weight.shape}")
    batch, seq_len, in_channels = x.shape
    kernel_size, w_in, out_channels = weight.shape
    if w_in != in_channels:
        raise ValueError(
            f"channel mismatch: input has {in_channels}, kernel expects {w_in}"
        )
    if seq_len < kernel_size:
        raise ValueError(
            f"sequence length {seq_len} shorter than kernel size {kernel_size}"
        )
    out_len = seq_len - kernel_size + 1

    # im2col: windows (batch, out_len, kernel*in) @ flat kernel.
    windows = np.lib.stride_tricks.sliding_window_view(x.data, kernel_size, axis=1)
    # windows: (batch, out_len, in_channels, kernel) -> (batch, out_len, kernel, in)
    windows = windows.transpose(0, 1, 3, 2)
    flat_windows = windows.reshape(batch, out_len, kernel_size * in_channels)
    flat_kernel = weight.data.reshape(kernel_size * in_channels, out_channels)
    out = flat_windows @ flat_kernel

    def backward(grad):
        # grad: (batch, out_len, out_channels)
        grad_flat_kernel = np.einsum("boi,boc->ic", flat_windows, grad)
        grad_weight = grad_flat_kernel.reshape(kernel_size, in_channels, out_channels)
        grad_windows = grad @ flat_kernel.T  # (batch, out_len, kernel*in)
        grad_windows = grad_windows.reshape(batch, out_len, kernel_size, in_channels)
        grad_x = np.zeros_like(x.data)
        for k in range(kernel_size):
            grad_x[:, k : k + out_len, :] += grad_windows[:, :, k, :]
        return (grad_x, grad_weight)

    result = Tensor._make(out, (x, weight), backward)
    if bias is not None:
        result = result + bias
    return result


def max_pool_over_time(x: Tensor) -> Tensor:
    """Max over the sequence axis of ``(batch, seq, channels)`` -> ``(batch, channels)``.

    The standard Kim-CNN pooling: one scalar per filter, position-invariant.
    """
    x = ensure_tensor(x)
    if x.ndim != 3:
        raise ValueError(f"max_pool_over_time expects 3-D input, got {x.shape}")
    return x.max(axis=1)


class Conv1d(Module):
    """Learnable valid 1-D convolution layer."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if min(in_channels, out_channels, kernel_size) <= 0:
            raise ValueError("Conv1d dimensions must be positive")
        rng = rng or np.random.default_rng()  # repro: noqa[RA002] explicit opt-in randomness when no generator is supplied
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.weight = Parameter(
            init.xavier_uniform((kernel_size, in_channels, out_channels), rng)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv1d(x, self.weight, self.bias)

    def __repr__(self):
        return (
            f"Conv1d(in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size})"
        )


class CNNEncoder(Module):
    """Kim (2014)-style sentence encoder: embed -> multi-width conv -> max-pool.

    Drop-in alternative to :class:`repro.autograd.rnn.GRUEncoder` for the
    HFLU latent branch (``FakeDetectorConfig(rnn_cell="cnn")``). Produces a
    sigmoid-squashed latent vector like the GRU fusion layer so downstream
    GDU inputs share the same range.
    """

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int,
        num_filters: int,
        output_size: int,
        kernel_sizes: tuple = (2, 3, 4),
        rng: Optional[np.random.Generator] = None,
        padding_idx: int = 0,
    ):
        super().__init__()
        from .nn import Embedding, Linear

        rng = rng or np.random.default_rng()  # repro: noqa[RA002] explicit opt-in randomness when no generator is supplied
        if not kernel_sizes:
            raise ValueError("kernel_sizes must be non-empty")
        self.padding_idx = padding_idx
        self.kernel_sizes = tuple(kernel_sizes)
        self.embedding = Embedding(vocab_size, embed_dim, rng=rng, padding_idx=padding_idx)
        self.convs = []
        for i, k in enumerate(self.kernel_sizes):
            conv = Conv1d(embed_dim, num_filters, k, rng=rng)
            setattr(self, f"conv{i}", conv)
            self.convs.append(conv)
        self.fusion = Linear(num_filters * len(self.kernel_sizes), output_size, rng=rng)

    def forward(self, sequences) -> Tensor:
        from .tensor import concatenate

        seq = np.asarray(
            sequences.data if isinstance(sequences, Tensor) else sequences,
            dtype=np.intp,
        )
        if seq.ndim == 1:
            seq = seq[None, :]
        max_k = max(self.kernel_sizes)
        if seq.shape[1] < max_k:
            pad = np.zeros((seq.shape[0], max_k - seq.shape[1]), dtype=seq.dtype)
            seq = np.concatenate([seq, pad], axis=1)
        embedded = self.embedding(seq)  # (batch, seq, embed)
        pooled = [max_pool_over_time(conv(embedded).relu()) for conv in self.convs]
        return self.fusion(concatenate(pooled, axis=1)).sigmoid()
