"""Differentiable functional ops built on :class:`repro.autograd.Tensor`.

These are the loss/activation compositions the FakeDetector equations use:
softmax heads, cross-entropy with the paper's joint objective, and the gate
nonlinearities. All functions accept and return :class:`Tensor`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, ensure_tensor


__all__ = [
    "sigmoid",
    "tanh",
    "relu",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "inverse_frequency_weights",
    "nll_loss",
    "mse_loss",
    "hinge_loss",
    "l2_regularization",
    "dropout_mask",
]


def sigmoid(x: Tensor) -> Tensor:
    """Elementwise logistic function σ(x)."""
    return ensure_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    return ensure_tensor(x).tanh()


def relu(x: Tensor) -> Tensor:
    """Elementwise rectifier max(0, x)."""
    return ensure_tensor(x).relu()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    Implemented with differentiable primitives (max-shift, exp, sum) so a
    single backward pass covers it without a bespoke gradient.
    """
    x = ensure_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """log(softmax(x)) computed stably via the log-sum-exp trick."""
    x = ensure_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    reduction: str = "mean",
    class_weights: Optional[np.ndarray] = None,
) -> Tensor:
    """Cross-entropy between ``logits`` (N, C) and integer ``targets`` (N,).

    This is the per-node-type loss term of the paper's objective,
    ``L(T) = -Σ_i Σ_k ŷ_i[k] log y_i[k]`` with one-hot ground truth.

    Parameters
    ----------
    logits:
        Unnormalized class scores, shape ``(N, C)``.
    targets:
        Integer class indices, shape ``(N,)``.
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``. The mean is weight-normalized
        (sum of weighted losses / sum of weights) when ``class_weights`` is
        given, matching the standard convention.
    class_weights:
        Optional per-class loss weights of shape ``(C,)``, e.g. inverse
        class frequencies to counter the Truth-O-Meter imbalance.
    """
    logits = ensure_tensor(logits)
    targets = np.asarray(targets, dtype=np.intp)
    if logits.ndim != 2:
        raise ValueError(f"cross_entropy expects 2-D logits, got shape {logits.shape}")
    if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ValueError(
            f"targets shape {targets.shape} incompatible with logits {logits.shape}"
        )
    n = logits.shape[0]
    logp = log_softmax(logits, axis=-1)
    picked = logp[np.arange(n), targets]
    losses = -picked
    if class_weights is not None:
        class_weights = np.asarray(class_weights, dtype=np.float64)
        if class_weights.shape != (logits.shape[1],):
            raise ValueError(
                f"class_weights shape {class_weights.shape} != ({logits.shape[1]},)"
            )
        if (class_weights < 0).any():
            raise ValueError("class_weights must be non-negative")
        sample_weights = class_weights[targets]
        losses = losses * Tensor(sample_weights)
        if reduction == "mean":
            total = sample_weights.sum()
            if total == 0:
                raise ValueError("all sample weights are zero")
            return losses.sum() / total
    if reduction == "mean":
        return losses.mean()
    if reduction == "sum":
        return losses.sum()
    if reduction == "none":
        return losses
    raise ValueError(f"unknown reduction {reduction!r}")


def inverse_frequency_weights(targets: np.ndarray, num_classes: int) -> np.ndarray:
    """Class weights ∝ 1/frequency, normalized to mean 1 over present classes.

    Absent classes get weight 0 (they can contribute no loss anyway).
    """
    targets = np.asarray(targets, dtype=np.intp)
    counts = np.bincount(targets, minlength=num_classes).astype(np.float64)
    weights = np.zeros(num_classes)
    present = counts > 0
    if not present.any():
        raise ValueError("targets are empty")
    weights[present] = 1.0 / counts[present]
    weights[present] /= weights[present].mean()  # mean 1 over present classes
    return weights


def nll_loss(log_probs: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood given precomputed log-probabilities."""
    log_probs = ensure_tensor(log_probs)
    targets = np.asarray(targets, dtype=np.intp)
    n = log_probs.shape[0]
    losses = -log_probs[np.arange(n), targets]
    if reduction == "mean":
        return losses.mean()
    if reduction == "sum":
        return losses.sum()
    if reduction == "none":
        return losses
    raise ValueError(f"unknown reduction {reduction!r}")


def mse_loss(pred: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    """Mean squared error between ``pred`` and ``target``."""
    pred, target = ensure_tensor(pred), ensure_tensor(target)
    diff = pred - target
    sq = diff * diff
    if reduction == "mean":
        return sq.mean()
    if reduction == "sum":
        return sq.sum()
    if reduction == "none":
        return sq
    raise ValueError(f"unknown reduction {reduction!r}")


def hinge_loss(scores: Tensor, targets: np.ndarray, margin: float = 1.0) -> Tensor:
    """Multiclass one-vs-rest hinge loss used by the SVM baseline.

    ``targets`` are ±1 per (sample, class); ``scores`` are raw margins.
    """
    scores = ensure_tensor(scores)
    y = Tensor(np.asarray(targets, dtype=np.float64))
    raw = (margin - scores * y).relu()
    return raw.mean()


def l2_regularization(params, weight: float) -> Tensor:
    """``weight * Σ ||W||²`` over an iterable of parameter tensors.

    Matches the paper's ``α · L_reg(W)`` term.
    """
    total: Optional[Tensor] = None
    for p in params:
        term = (p * p).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total * weight


def dropout_mask(shape: tuple, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Inverted-dropout mask: zeros with prob ``rate``, survivors scaled."""
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    if rate == 0.0:
        return np.ones(shape)
    keep = 1.0 - rate
    return (rng.random(shape) < keep).astype(np.float64) / keep
