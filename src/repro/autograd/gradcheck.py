"""Public finite-difference gradient checking.

The same machinery the test suite uses to validate every op, exposed so
users extending the engine (custom ops, custom cells) can verify their
backward passes:

    from repro.autograd import Tensor, gradcheck
    x = Tensor(np.random.randn(3, 3), requires_grad=True)
    gradcheck(lambda x: (x.tanh() ** 2).sum(), [x])   # raises on mismatch
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


class GradientCheckError(AssertionError):
    """Raised when analytic and numeric gradients disagree."""


def numeric_gradient(
    func: Callable[..., Tensor],
    tensors: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar ``func(*tensors)`` w.r.t. one input."""
    target = tensors[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(func(*tensors).item())
        flat[i] = original - eps
        minus = float(func(*tensors).item())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    func: Callable[..., Tensor],
    tensors: Sequence[Tensor],
    eps: float = 1e-6,
    tolerance: float = 1e-5,
) -> bool:
    """Verify analytic gradients of scalar ``func`` against finite differences.

    Parameters
    ----------
    func:
        Callable taking the tensors and returning a scalar Tensor. Must be
        deterministic (re-evaluated many times).
    tensors:
        Inputs; gradients are checked for those with ``requires_grad``.
    eps / tolerance:
        Finite-difference step and maximum allowed absolute error.

    Returns ``True`` on success; raises :class:`GradientCheckError` with the
    offending tensor index and max error otherwise.
    """
    out = func(*tensors)
    if out.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    for t in tensors:
        t.zero_grad()
    func(*tensors).backward()
    for i, t in enumerate(tensors):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numeric_gradient(func, tensors, i, eps=eps)
        error = float(np.abs(analytic - numeric).max())
        if error > tolerance:
            raise GradientCheckError(
                f"gradient mismatch on input {i} (shape {t.shape}): "
                f"max abs error {error:.3e} > tolerance {tolerance:.0e}"
            )
    return True
