"""Weight initialization schemes for the neural substrate.

All initializers take an explicit ``numpy.random.Generator`` so every model in
the reproduction is seedable end-to-end (the experiment harness relies on
this for deterministic sweeps).
"""

from __future__ import annotations

import math

import numpy as np

from .tensor import Tensor


__all__ = [
    "uniform",
    "normal",
    "xavier_uniform",
    "xavier_normal",
    "he_uniform",
    "he_normal",
    "zeros",
    "orthogonal",
]


def uniform(shape: tuple, low: float, high: float, rng: np.random.Generator) -> Tensor:
    """Uniform init in ``[low, high)``."""
    return Tensor(rng.uniform(low, high, size=shape), requires_grad=True)


def normal(shape: tuple, std: float, rng: np.random.Generator, mean: float = 0.0) -> Tensor:
    """Gaussian init with the given mean / standard deviation."""
    return Tensor(rng.normal(mean, std, size=shape), requires_grad=True)


def xavier_uniform(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> Tensor:
    """Glorot/Xavier uniform init: U(-a, a), a = gain * sqrt(6/(fan_in+fan_out)).

    Appropriate for the tanh/sigmoid gates of the GRU and GDU cells.
    """
    fan_in, fan_out = _fans(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return Tensor(rng.uniform(-bound, bound, size=shape), requires_grad=True)


def xavier_normal(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> Tensor:
    """Glorot/Xavier normal init."""
    fan_in, fan_out = _fans(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return Tensor(rng.normal(0.0, std, size=shape), requires_grad=True)


def he_uniform(shape: tuple, rng: np.random.Generator) -> Tensor:
    """Kaiming/He uniform init, appropriate for ReLU layers."""
    fan_in, _ = _fans(shape)
    bound = math.sqrt(6.0 / fan_in)
    return Tensor(rng.uniform(-bound, bound, size=shape), requires_grad=True)


def he_normal(shape: tuple, rng: np.random.Generator) -> Tensor:
    """Kaiming/He normal init."""
    fan_in, _ = _fans(shape)
    std = math.sqrt(2.0 / fan_in)
    return Tensor(rng.normal(0.0, std, size=shape), requires_grad=True)


def zeros(shape: tuple) -> Tensor:
    """All-zero parameter (the conventional bias init)."""
    return Tensor(np.zeros(shape), requires_grad=True)


def orthogonal(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> Tensor:
    """Orthogonal init (Saxe et al.), useful for recurrent weight matrices."""
    if len(shape) < 2:
        raise ValueError("orthogonal init requires at least a 2-D shape")
    rows = shape[0]
    cols = int(np.prod(shape[1:]))
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))  # make the decomposition unique
    if rows < cols:
        q = q.T
    return Tensor(gain * q[:rows, :cols].reshape(shape), requires_grad=True)


def _fans(shape: tuple) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for a weight shape."""
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
