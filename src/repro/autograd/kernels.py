"""Fused sequence kernels: whole recurrences as single tape nodes.

The unrolled :class:`repro.autograd.GRUEncoder` path emits ~10 tape nodes
per timestep per node type (embedding gather, three gate matmuls,
sigmoid/tanh, mask blends); one full-graph training epoch therefore builds
tens of thousands of Python closures whose dispatch overhead dwarfs the
numpy FLOPs. The kernels here collapse each sequence op into **one** tape
node with a hand-written backward-through-time:

- :func:`embedding_gather` — one ``(B, T)`` index take forward, one
  ``np.add.at`` scatter backward, replacing ``T`` per-timestep lookups;
- :func:`gru_sequence` — the full masked GRU recurrence. Gate weights
  arrive stacked (``(E, 3H)`` input, ``(H, 3H)`` hidden, ``(3H,)`` bias, in
  update/reset/candidate order) so the input projections for *all*
  timesteps are one ``(B·T, E) @ (E, 3H)`` matmul precomputed before the
  time loop; the per-step loop runs in raw numpy with no Tensor wrapping,
  and the saved gate activations are replayed by the backward closure;
- :func:`lstm_sequence` — the LSTM equivalent with ``(E, 4H)`` / ``(H, 4H)``
  stacking in input/forget/cell/output order.

All three are registered through :func:`repro.autograd.tensor.instrument_op`
so the op profiler (``repro train --profile``) and the tape sanitizer
(``--sanitize``) observe them like any other op. Numerical equivalence with
the unrolled reference path — forward values, parameter gradients, and
whole training trajectories — is asserted by ``tests/test_kernels.py`` and
re-asserted inside ``benchmarks/test_training_throughput.py``.

Masking semantics match the encoder exactly: ``mask`` is a ``(B, T)``
``{0, 1}`` array and padded positions carry the previous hidden (and LSTM
cell) state through unchanged, so a kernel fed trailing all-pad columns
produces the same trajectory as one fed the truncated sequence.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, ensure_tensor, instrument_op


def _sigmoid(x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Numerically-stable logistic via ``σ(x) = (1 + tanh(x/2)) / 2``.

    Mathematically identical to the two-branch ``exp`` formula
    ``Tensor.sigmoid`` uses and equally overflow-safe (``tanh`` saturates),
    but a single transcendental evaluation instead of two ``exp`` calls
    plus a branchy ``np.where`` — the cheapest stable logistic numpy can
    express. The two formulas agree to ≤ 2 ulp per element; the encoder
    equivalence suite (tests/test_kernels.py) asserts the fused and
    unrolled paths still match to 1e-12 after full recurrences and to
    1e-6 across whole training trajectories.
    """
    if out is None:
        out = np.empty_like(x)
    np.tanh(x * 0.5, out=out)
    out += 1.0
    out *= 0.5
    return out


def _as_mask(mask, batch: int, length: int) -> np.ndarray:
    m = np.asarray(mask.data if isinstance(mask, Tensor) else mask, dtype=np.float64)
    if m.shape != (batch, length):
        raise ValueError(
            f"mask shape {m.shape} does not match sequence batch/length "
            f"({batch}, {length})"
        )
    return m


def _check_gate_shapes(
    op: str, E: int, H3: int, w_x: Tensor, w_h: Tensor, b: Tensor, gates: int
) -> int:
    """Validate stacked-gate shapes; returns the hidden size ``H``."""
    if H3 % gates != 0:
        raise ValueError(f"{op}: stacked width {H3} is not divisible by {gates}")
    H = H3 // gates
    if w_x.shape != (E, gates * H):
        raise ValueError(f"{op}: w_x shape {w_x.shape} != ({E}, {gates * H})")
    if w_h.shape != (H, gates * H):
        raise ValueError(f"{op}: w_h shape {w_h.shape} != ({H}, {gates * H})")
    if b.shape != (gates * H,):
        raise ValueError(f"{op}: bias shape {b.shape} != ({gates * H},)")
    return H


def embedding_gather(weight, indices) -> Tensor:
    """Full-sequence embedding lookup as one tape node.

    ``weight`` is the ``(V, E)`` embedding table; ``indices`` any integer
    array (typically ``(B, T)``). Forward is a single take producing
    ``indices.shape + (E,)``; backward scatters with one ``np.add.at`` over
    the flattened indices instead of ``T`` separate index nodes.
    """
    weight = ensure_tensor(weight)
    idx = np.asarray(
        indices.data if isinstance(indices, Tensor) else indices, dtype=np.intp
    )
    vocab, dim = weight.shape
    if idx.size and (idx.min() < 0 or idx.max() >= vocab):
        raise IndexError(
            f"embedding index out of range [0, {vocab}): "
            f"min={idx.min()}, max={idx.max()}"
        )
    flat_idx = idx.ravel()

    def backward(grad):
        full = np.zeros_like(weight.data)
        np.add.at(full, flat_idx, grad.reshape(-1, dim))
        return (full,)

    return Tensor._make(weight.data[idx], (weight,), backward)


def gru_sequence(seq_embedded, mask, w_x, w_h, b, reverse: bool = False) -> Tensor:
    """Masked GRU recurrence over a whole sequence as one tape node.

    Parameters
    ----------
    seq_embedded:
        ``(B, T, E)`` embedded inputs.
    mask:
        ``(B, T)`` array, 1.0 on real tokens, 0.0 on padding. Padded
        positions carry the previous hidden state through unchanged.
    w_x, w_h, b:
        Gate weights stacked in update/reset/candidate order:
        ``(E, 3H)``, ``(H, 3H)`` and ``(3H,)``.
    reverse:
        Run the recurrence from the last timestep to the first (the
        backward direction of a bidirectional encoder). The returned
        trajectory is indexed in *original* time order either way.

    Returns the ``(B, T, H)`` post-mask hidden trajectory.
    """
    seq_embedded = ensure_tensor(seq_embedded)
    w_x, w_h, b = ensure_tensor(w_x), ensure_tensor(w_h), ensure_tensor(b)
    x = seq_embedded.data
    if x.ndim != 3:
        raise ValueError(f"gru_sequence expects (B, T, E) inputs, got {x.shape}")
    B, T, E = x.shape
    H = _check_gate_shapes("gru_sequence", E, w_x.shape[1], w_x, w_h, b, gates=3)
    m = _as_mask(mask, B, T)
    Wx, Wh, bias = w_x.data, w_h.data, b.data
    if reverse:
        x = x[:, ::-1]
        m = m[:, ::-1]
    Wh_zr = Wh[:, : 2 * H]
    Wh_c = Wh[:, 2 * H :]
    # Time-major internal layout: every per-step slice below (projections,
    # saved activations, gradients) is a contiguous (B, ·) block.
    xT = np.ascontiguousarray(np.swapaxes(x, 0, 1))
    mT = np.ascontiguousarray(m.T)
    # All input projections for all timesteps in one big matmul.
    proj = (xT.reshape(T * B, E) @ Wx + bias).reshape(T, B, 3 * H)
    m3 = mT[:, :, None]
    keep3 = 1.0 - m3
    # Columns where every row is a real token need no mask blend at all —
    # with trailing padding that is most of the sequence.
    full_cols = mT.all(axis=1)
    h = np.zeros((B, H))
    states = np.empty((T, B, H))
    zrs = np.empty((T, B, 2 * H))
    cs = np.empty((T, B, H))
    for t in range(T):
        pt = proj[t]
        zr = _sigmoid(pt[:, : 2 * H] + h @ Wh_zr, out=zrs[t])
        z = zr[:, :H]
        r = zr[:, H:]
        c = np.tanh(pt[:, 2 * H :] + (r * h) @ Wh_c, out=cs[t])
        h_new = (1.0 - z) * h + z * c
        if not full_cols[t]:
            h_new = m3[t] * h_new + keep3[t] * h
        states[t] = h_new
        h = h_new

    def backward(grad):
        gT = np.swapaxes(grad, 0, 1)
        gT = np.ascontiguousarray(gT[::-1] if reverse else gT)
        dproj = np.empty((T, B, 3 * H))
        zeros_h = np.zeros((B, H))
        gh = np.zeros((B, H))
        for t in range(T - 1, -1, -1):
            gh = gh + gT[t]
            h_prev = states[t - 1] if t > 0 else zeros_h
            zr = zrs[t]
            z = zr[:, :H]
            r = zr[:, H:]
            c = cs[t]
            dh_tilde = gh if full_cols[t] else gh * m3[t]
            # h̃ = (1 − z) ⊙ h_prev + z ⊙ c
            dz = dh_tilde * (c - h_prev)
            # c = tanh(x W_xh + (r ⊙ h_prev) W_hh + b_h)
            da = (dh_tilde * z) * (1.0 - c * c)
            drh = da @ Wh_c.T
            # Pre-activation gate gradients, written straight into dproj so
            # the weight/bias/input grads batch into post-loop matmuls.
            dpt = dproj[t]
            dpt[:, :H] = dz * z * (1.0 - z)
            dpt[:, H : 2 * H] = (drh * h_prev) * r * (1.0 - r)
            dpt[:, 2 * H :] = da
            dh_prev = dh_tilde * (1.0 - z)
            dh_prev += drh * r
            dh_prev += dpt[:, : 2 * H] @ Wh_zr.T
            if not full_cols[t]:
                dh_prev += gh * keep3[t]
            gh = dh_prev
        # h_{t-1} trajectory: zeros at t=0, then the saved states shifted.
        h_prev_all = np.empty((T, B, H))
        if T:
            h_prev_all[0] = 0.0
            h_prev_all[1:] = states[:-1]
        flat = dproj.reshape(T * B, 3 * H)
        hp_flat = h_prev_all.reshape(T * B, H)
        dWh = np.empty_like(Wh)
        dWh[:, : 2 * H] = hp_flat.T @ flat[:, : 2 * H]
        dWh[:, 2 * H :] = (
            (zrs[:, :, H:] * h_prev_all).reshape(T * B, H).T @ flat[:, 2 * H :]
        )
        dxT = (flat @ Wx.T).reshape(T, B, E)
        if reverse:
            dxT = dxT[::-1]
        dx = np.ascontiguousarray(np.swapaxes(dxT, 0, 1))
        dWx = xT.reshape(T * B, E).T @ flat
        db = flat.sum(axis=0)
        return (dx, dWx, dWh, db)

    traj = states[::-1] if reverse else states
    out = np.ascontiguousarray(np.swapaxes(traj, 0, 1))
    return Tensor._make(out, (seq_embedded, w_x, w_h, b), backward)


def lstm_sequence(seq_embedded, mask, w_x, w_h, b, reverse: bool = False) -> Tensor:
    """Masked LSTM recurrence over a whole sequence as one tape node.

    Same contract as :func:`gru_sequence` with four stacked gates in
    input/forget/cell/output order: ``(E, 4H)``, ``(H, 4H)``, ``(4H,)``.
    Padded positions carry both the hidden and the cell state through.
    Returns the ``(B, T, H)`` post-mask hidden trajectory.
    """
    seq_embedded = ensure_tensor(seq_embedded)
    w_x, w_h, b = ensure_tensor(w_x), ensure_tensor(w_h), ensure_tensor(b)
    x = seq_embedded.data
    if x.ndim != 3:
        raise ValueError(f"lstm_sequence expects (B, T, E) inputs, got {x.shape}")
    B, T, E = x.shape
    H = _check_gate_shapes("lstm_sequence", E, w_x.shape[1], w_x, w_h, b, gates=4)
    m = _as_mask(mask, B, T)
    Wx, Wh, bias = w_x.data, w_h.data, b.data
    if reverse:
        x = x[:, ::-1]
        m = m[:, ::-1]
    # Time-major internal layout: every per-step slice below (projections,
    # saved activations, gradients) is a contiguous (B, ·) block.
    xT = np.ascontiguousarray(np.swapaxes(x, 0, 1))
    mT = np.ascontiguousarray(m.T)
    proj = (xT.reshape(T * B, E) @ Wx + bias).reshape(T, B, 4 * H)
    m3 = mT[:, :, None]
    keep3 = 1.0 - m3
    # Columns where every row is a real token need no mask blend at all —
    # with trailing padding that is most of the sequence.
    full_cols = mT.all(axis=1)
    h = np.zeros((B, H))
    c = np.zeros((B, H))
    states = np.empty((T, B, H))
    cells = np.empty((T, B, H))
    # i/f/g/o activations, stored stacked the same way the weights are.
    gates = np.empty((T, B, 4 * H))
    tanhc = np.empty((T, B, H))
    for t in range(T):
        gt = gates[t]
        p = proj[t] + h @ Wh
        i_f = _sigmoid(p[:, : 2 * H], out=gt[:, : 2 * H])
        i = i_f[:, :H]
        f = i_f[:, H:]
        g_gate = np.tanh(p[:, 2 * H : 3 * H], out=gt[:, 2 * H : 3 * H])
        o = _sigmoid(p[:, 3 * H :], out=gt[:, 3 * H :])
        c_new = f * c + i * g_gate
        tc = np.tanh(c_new, out=tanhc[t])
        h_new = o * tc
        if not full_cols[t]:
            mt = m3[t]
            kt = keep3[t]
            h_new = mt * h_new + kt * h
            c_new = mt * c_new + kt * c
        states[t] = h_new
        cells[t] = c_new
        h = h_new
        c = c_new

    def backward(grad):
        gT = np.swapaxes(grad, 0, 1)
        gT = np.ascontiguousarray(gT[::-1] if reverse else gT)
        dproj = np.empty((T, B, 4 * H))
        zeros_h = np.zeros((B, H))
        gh = np.zeros((B, H))
        gc = np.zeros((B, H))
        for t in range(T - 1, -1, -1):
            gh = gh + gT[t]
            h_prev = states[t - 1] if t > 0 else zeros_h
            c_prev = cells[t - 1] if t > 0 else zeros_h
            full = full_cols[t]
            gt = gates[t]
            i = gt[:, :H]
            f = gt[:, H : 2 * H]
            g_gate = gt[:, 2 * H : 3 * H]
            o = gt[:, 3 * H :]
            tc = tanhc[t]
            dh_new = gh if full else gh * m3[t]
            # h_new = o ⊙ tanh(c_new); masked cell carry adds gc ⊙ m.
            dc_new = dh_new * o * (1.0 - tc * tc)
            dc_new += gc if full else gc * m3[t]
            do = dh_new * tc
            # c_new = f ⊙ c_prev + i ⊙ g — pre-activation grads go straight
            # into dproj so the weight/bias/input grads batch after the loop.
            dpt = dproj[t]
            dpt[:, :H] = (dc_new * g_gate) * i * (1.0 - i)
            dpt[:, H : 2 * H] = (dc_new * c_prev) * f * (1.0 - f)
            dpt[:, 2 * H : 3 * H] = (dc_new * i) * (1.0 - g_gate * g_gate)
            dpt[:, 3 * H :] = do * o * (1.0 - o)
            dh_prev = dpt @ Wh.T
            if not full:
                dh_prev += gh * keep3[t]
                gc = dc_new * f + gc * keep3[t]
            else:
                gc = dc_new * f
            gh = dh_prev
        # h_{t-1} trajectory: zeros at t=0, then the saved states shifted.
        h_prev_all = np.empty((T, B, H))
        if T:
            h_prev_all[0] = 0.0
            h_prev_all[1:] = states[:-1]
        flat = dproj.reshape(T * B, 4 * H)
        dWh = h_prev_all.reshape(T * B, H).T @ flat
        dxT = (flat @ Wx.T).reshape(T, B, E)
        if reverse:
            dxT = dxT[::-1]
        dx = np.ascontiguousarray(np.swapaxes(dxT, 0, 1))
        dWx = xT.reshape(T * B, E).T @ flat
        db = flat.sum(axis=0)
        return (dx, dWx, dWh, db)

    traj = states[::-1] if reverse else states
    out = np.ascontiguousarray(np.swapaxes(traj, 0, 1))
    return Tensor._make(out, (seq_embedded, w_x, w_h, b), backward)


# Register with the op profiler / tape sanitizer like every other tape op.
embedding_gather = instrument_op("embedding_gather", embedding_gather)
gru_sequence = instrument_op("gru_sequence", gru_sequence)
lstm_sequence = instrument_op("lstm_sequence", lstm_sequence)
