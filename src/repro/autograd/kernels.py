"""Fused sequence kernels: whole recurrences as single tape nodes.

The unrolled :class:`repro.autograd.GRUEncoder` path emits ~10 tape nodes
per timestep per node type (embedding gather, three gate matmuls,
sigmoid/tanh, mask blends); one full-graph training epoch therefore builds
tens of thousands of Python closures whose dispatch overhead dwarfs the
numpy FLOPs. The kernels here collapse each sequence op into **one** tape
node with a hand-written backward-through-time:

- :func:`embedding_gather` — one ``(B, T)`` index take forward, one
  ``np.add.at`` scatter backward, replacing ``T`` per-timestep lookups;
- :func:`gru_sequence` — the full masked GRU recurrence. Gate weights
  arrive stacked (``(E, 3H)`` input, ``(H, 3H)`` hidden, ``(3H,)`` bias, in
  update/reset/candidate order) so the input projections for *all*
  timesteps are one ``(B·T, E) @ (E, 3H)`` matmul precomputed before the
  time loop; the per-step loop runs in raw numpy with no Tensor wrapping,
  and the saved gate activations are replayed by the backward closure;
- :func:`lstm_sequence` — the LSTM equivalent with ``(E, 4H)`` / ``(H, 4H)``
  stacking in input/forget/cell/output order.

All three are registered through :func:`repro.autograd.tensor.instrument_op`
so the op profiler (``repro train --profile``) and the tape sanitizer
(``--sanitize``) observe them like any other op. Numerical equivalence with
the unrolled reference path — forward values, parameter gradients, and
whole training trajectories — is asserted by ``tests/test_kernels.py`` and
re-asserted inside ``benchmarks/test_training_throughput.py``.

Masking semantics match the encoder exactly: ``mask`` is a ``(B, T)``
``{0, 1}`` array and padded positions carry the previous hidden (and LSTM
cell) state through unchanged, so a kernel fed trailing all-pad columns
produces the same trajectory as one fed the truncated sequence.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, ensure_tensor, instrument_op


def _sigmoid(x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Numerically-stable logistic via ``σ(x) = (1 + tanh(x/2)) / 2``.

    Mathematically identical to the two-branch ``exp`` formula
    ``Tensor.sigmoid`` uses and equally overflow-safe (``tanh`` saturates),
    but a single transcendental evaluation instead of two ``exp`` calls
    plus a branchy ``np.where`` — the cheapest stable logistic numpy can
    express. The two formulas agree to ≤ 2 ulp per element; the encoder
    equivalence suite (tests/test_kernels.py) asserts the fused and
    unrolled paths still match to 1e-12 after full recurrences and to
    1e-6 across whole training trajectories.
    """
    if out is None:
        out = np.empty_like(x)
    np.tanh(x * 0.5, out=out)
    out += 1.0
    out *= 0.5
    return out


def _as_mask(mask, batch: int, length: int) -> np.ndarray:
    m = np.asarray(mask.data if isinstance(mask, Tensor) else mask, dtype=np.float64)
    if m.shape != (batch, length):
        raise ValueError(
            f"mask shape {m.shape} does not match sequence batch/length "
            f"({batch}, {length})"
        )
    return m


def _check_gate_shapes(
    op: str, E: int, H3: int, w_x: Tensor, w_h: Tensor, b: Tensor, gates: int
) -> int:
    """Validate stacked-gate shapes; returns the hidden size ``H``."""
    if H3 % gates != 0:
        raise ValueError(f"{op}: stacked width {H3} is not divisible by {gates}")
    H = H3 // gates
    if w_x.shape != (E, gates * H):
        raise ValueError(f"{op}: w_x shape {w_x.shape} != ({E}, {gates * H})")
    if w_h.shape != (H, gates * H):
        raise ValueError(f"{op}: w_h shape {w_h.shape} != ({H}, {gates * H})")
    if b.shape != (gates * H,):
        raise ValueError(f"{op}: bias shape {b.shape} != ({gates * H},)")
    return H


def embedding_gather(weight, indices) -> Tensor:
    """Full-sequence embedding lookup as one tape node.

    ``weight`` is the ``(V, E)`` embedding table; ``indices`` any integer
    array (typically ``(B, T)``). Forward is a single take producing
    ``indices.shape + (E,)``; backward scatters with one ``np.add.at`` over
    the flattened indices instead of ``T`` separate index nodes.
    """
    weight = ensure_tensor(weight)
    idx = np.asarray(
        indices.data if isinstance(indices, Tensor) else indices, dtype=np.intp
    )
    vocab, dim = weight.shape
    if idx.size and (idx.min() < 0 or idx.max() >= vocab):
        raise IndexError(
            f"embedding index out of range [0, {vocab}): "
            f"min={idx.min()}, max={idx.max()}"
        )
    flat_idx = idx.ravel()

    def backward(grad):
        full = np.zeros_like(weight.data)
        np.add.at(full, flat_idx, grad.reshape(-1, dim))
        return (full,)

    return Tensor._make(weight.data[idx], (weight,), backward)


def gru_sequence(seq_embedded, mask, w_x, w_h, b, reverse: bool = False) -> Tensor:
    """Masked GRU recurrence over a whole sequence as one tape node.

    Parameters
    ----------
    seq_embedded:
        ``(B, T, E)`` embedded inputs.
    mask:
        ``(B, T)`` array, 1.0 on real tokens, 0.0 on padding. Padded
        positions carry the previous hidden state through unchanged.
    w_x, w_h, b:
        Gate weights stacked in update/reset/candidate order:
        ``(E, 3H)``, ``(H, 3H)`` and ``(3H,)``.
    reverse:
        Run the recurrence from the last timestep to the first (the
        backward direction of a bidirectional encoder). The returned
        trajectory is indexed in *original* time order either way.

    Returns the ``(B, T, H)`` post-mask hidden trajectory.
    """
    seq_embedded = ensure_tensor(seq_embedded)
    w_x, w_h, b = ensure_tensor(w_x), ensure_tensor(w_h), ensure_tensor(b)
    x = seq_embedded.data
    if x.ndim != 3:
        raise ValueError(f"gru_sequence expects (B, T, E) inputs, got {x.shape}")
    B, T, E = x.shape
    H = _check_gate_shapes("gru_sequence", E, w_x.shape[1], w_x, w_h, b, gates=3)
    m = _as_mask(mask, B, T)
    Wx, Wh, bias = w_x.data, w_h.data, b.data
    if reverse:
        x = x[:, ::-1]
        m = m[:, ::-1]
    Wh_zr = Wh[:, : 2 * H]
    Wh_c = Wh[:, 2 * H :]
    # Time-major internal layout: every per-step slice below (projections,
    # saved activations, gradients) is a contiguous (B, ·) block.
    xT = np.ascontiguousarray(np.swapaxes(x, 0, 1))
    mT = np.ascontiguousarray(m.T)
    # All input projections for all timesteps in one big matmul.
    proj = (xT.reshape(T * B, E) @ Wx + bias).reshape(T, B, 3 * H)
    m3 = mT[:, :, None]
    keep3 = 1.0 - m3
    # Columns where every row is a real token need no mask blend at all —
    # with trailing padding that is most of the sequence.
    full_cols = mT.all(axis=1)
    h = np.zeros((B, H))
    states = np.empty((T, B, H))
    zrs = np.empty((T, B, 2 * H))
    cs = np.empty((T, B, H))
    rh = np.empty((B, H))
    # The step below is (1 − z) ⊙ h + z ⊙ c regrouped as h + z ⊙ (c − h)
    # and written straight into the saved buffers — every reordering is a
    # commutative add/multiply, so the trajectory is bit-identical to the
    # naive form while skipping the per-step temporaries (single-article
    # serving pays numpy dispatch, not FLOPs, in this loop).
    for t in range(T):
        pt = proj[t]
        zr = zrs[t]
        np.dot(h, Wh_zr, out=zr)
        zr += pt[:, : 2 * H]
        _sigmoid(zr, out=zr)
        z = zr[:, :H]
        r = zr[:, H:]
        c = cs[t]
        np.multiply(r, h, out=rh)
        np.dot(rh, Wh_c, out=c)
        c += pt[:, 2 * H :]
        np.tanh(c, out=c)
        h_new = states[t]
        np.subtract(c, h, out=h_new)
        h_new *= z
        h_new += h
        if not full_cols[t]:
            h_new *= m3[t]
            h_new += keep3[t] * h
        h = h_new

    def backward(grad):
        gT = np.swapaxes(grad, 0, 1)
        gT = np.ascontiguousarray(gT[::-1] if reverse else gT)
        dproj = np.empty((T, B, 3 * H))
        zeros_h = np.zeros((B, H))
        gh = np.zeros((B, H))
        for t in range(T - 1, -1, -1):
            gh = gh + gT[t]
            h_prev = states[t - 1] if t > 0 else zeros_h
            zr = zrs[t]
            z = zr[:, :H]
            r = zr[:, H:]
            c = cs[t]
            dh_tilde = gh if full_cols[t] else gh * m3[t]
            # h̃ = (1 − z) ⊙ h_prev + z ⊙ c
            dz = dh_tilde * (c - h_prev)
            # c = tanh(x W_xh + (r ⊙ h_prev) W_hh + b_h)
            da = (dh_tilde * z) * (1.0 - c * c)
            drh = da @ Wh_c.T
            # Pre-activation gate gradients, written straight into dproj so
            # the weight/bias/input grads batch into post-loop matmuls.
            dpt = dproj[t]
            dpt[:, :H] = dz * z * (1.0 - z)
            dpt[:, H : 2 * H] = (drh * h_prev) * r * (1.0 - r)
            dpt[:, 2 * H :] = da
            dh_prev = dh_tilde * (1.0 - z)
            dh_prev += drh * r
            dh_prev += dpt[:, : 2 * H] @ Wh_zr.T
            if not full_cols[t]:
                dh_prev += gh * keep3[t]
            gh = dh_prev
        # h_{t-1} trajectory: zeros at t=0, then the saved states shifted.
        h_prev_all = np.empty((T, B, H))
        if T:
            h_prev_all[0] = 0.0
            h_prev_all[1:] = states[:-1]
        flat = dproj.reshape(T * B, 3 * H)
        hp_flat = h_prev_all.reshape(T * B, H)
        dWh = np.empty_like(Wh)
        dWh[:, : 2 * H] = hp_flat.T @ flat[:, : 2 * H]
        dWh[:, 2 * H :] = (
            (zrs[:, :, H:] * h_prev_all).reshape(T * B, H).T @ flat[:, 2 * H :]
        )
        dxT = (flat @ Wx.T).reshape(T, B, E)
        if reverse:
            dxT = dxT[::-1]
        dx = np.ascontiguousarray(np.swapaxes(dxT, 0, 1))
        dWx = xT.reshape(T * B, E).T @ flat
        db = flat.sum(axis=0)
        return (dx, dWx, dWh, db)

    traj = states[::-1] if reverse else states
    out = np.ascontiguousarray(np.swapaxes(traj, 0, 1))
    return Tensor._make(out, (seq_embedded, w_x, w_h, b), backward)


def lstm_sequence(seq_embedded, mask, w_x, w_h, b, reverse: bool = False) -> Tensor:
    """Masked LSTM recurrence over a whole sequence as one tape node.

    Same contract as :func:`gru_sequence` with four stacked gates in
    input/forget/cell/output order: ``(E, 4H)``, ``(H, 4H)``, ``(4H,)``.
    Padded positions carry both the hidden and the cell state through.
    Returns the ``(B, T, H)`` post-mask hidden trajectory.
    """
    seq_embedded = ensure_tensor(seq_embedded)
    w_x, w_h, b = ensure_tensor(w_x), ensure_tensor(w_h), ensure_tensor(b)
    x = seq_embedded.data
    if x.ndim != 3:
        raise ValueError(f"lstm_sequence expects (B, T, E) inputs, got {x.shape}")
    B, T, E = x.shape
    H = _check_gate_shapes("lstm_sequence", E, w_x.shape[1], w_x, w_h, b, gates=4)
    m = _as_mask(mask, B, T)
    Wx, Wh, bias = w_x.data, w_h.data, b.data
    if reverse:
        x = x[:, ::-1]
        m = m[:, ::-1]
    # Time-major internal layout: every per-step slice below (projections,
    # saved activations, gradients) is a contiguous (B, ·) block.
    xT = np.ascontiguousarray(np.swapaxes(x, 0, 1))
    mT = np.ascontiguousarray(m.T)
    proj = (xT.reshape(T * B, E) @ Wx + bias).reshape(T, B, 4 * H)
    m3 = mT[:, :, None]
    keep3 = 1.0 - m3
    # Columns where every row is a real token need no mask blend at all —
    # with trailing padding that is most of the sequence.
    full_cols = mT.all(axis=1)
    h = np.zeros((B, H))
    c = np.zeros((B, H))
    states = np.empty((T, B, H))
    cells = np.empty((T, B, H))
    # i/f/g/o activations, stored stacked the same way the weights are.
    gates = np.empty((T, B, 4 * H))
    tanhc = np.empty((T, B, H))
    for t in range(T):
        gt = gates[t]
        p = proj[t] + h @ Wh
        i_f = _sigmoid(p[:, : 2 * H], out=gt[:, : 2 * H])
        i = i_f[:, :H]
        f = i_f[:, H:]
        g_gate = np.tanh(p[:, 2 * H : 3 * H], out=gt[:, 2 * H : 3 * H])
        o = _sigmoid(p[:, 3 * H :], out=gt[:, 3 * H :])
        c_new = f * c + i * g_gate
        tc = np.tanh(c_new, out=tanhc[t])
        h_new = o * tc
        if not full_cols[t]:
            mt = m3[t]
            kt = keep3[t]
            h_new = mt * h_new + kt * h
            c_new = mt * c_new + kt * c
        states[t] = h_new
        cells[t] = c_new
        h = h_new
        c = c_new

    def backward(grad):
        gT = np.swapaxes(grad, 0, 1)
        gT = np.ascontiguousarray(gT[::-1] if reverse else gT)
        dproj = np.empty((T, B, 4 * H))
        zeros_h = np.zeros((B, H))
        gh = np.zeros((B, H))
        gc = np.zeros((B, H))
        for t in range(T - 1, -1, -1):
            gh = gh + gT[t]
            h_prev = states[t - 1] if t > 0 else zeros_h
            c_prev = cells[t - 1] if t > 0 else zeros_h
            full = full_cols[t]
            gt = gates[t]
            i = gt[:, :H]
            f = gt[:, H : 2 * H]
            g_gate = gt[:, 2 * H : 3 * H]
            o = gt[:, 3 * H :]
            tc = tanhc[t]
            dh_new = gh if full else gh * m3[t]
            # h_new = o ⊙ tanh(c_new); masked cell carry adds gc ⊙ m.
            dc_new = dh_new * o * (1.0 - tc * tc)
            dc_new += gc if full else gc * m3[t]
            do = dh_new * tc
            # c_new = f ⊙ c_prev + i ⊙ g — pre-activation grads go straight
            # into dproj so the weight/bias/input grads batch after the loop.
            dpt = dproj[t]
            dpt[:, :H] = (dc_new * g_gate) * i * (1.0 - i)
            dpt[:, H : 2 * H] = (dc_new * c_prev) * f * (1.0 - f)
            dpt[:, 2 * H : 3 * H] = (dc_new * i) * (1.0 - g_gate * g_gate)
            dpt[:, 3 * H :] = do * o * (1.0 - o)
            dh_prev = dpt @ Wh.T
            if not full:
                dh_prev += gh * keep3[t]
                gc = dc_new * f + gc * keep3[t]
            else:
                gc = dc_new * f
            gh = dh_prev
        # h_{t-1} trajectory: zeros at t=0, then the saved states shifted.
        h_prev_all = np.empty((T, B, H))
        if T:
            h_prev_all[0] = 0.0
            h_prev_all[1:] = states[:-1]
        flat = dproj.reshape(T * B, 4 * H)
        dWh = h_prev_all.reshape(T * B, H).T @ flat
        dxT = (flat @ Wx.T).reshape(T, B, E)
        if reverse:
            dxT = dxT[::-1]
        dx = np.ascontiguousarray(np.swapaxes(dxT, 0, 1))
        dWx = xT.reshape(T * B, E).T @ flat
        db = flat.sum(axis=0)
        return (dx, dWx, dWh, db)

    traj = states[::-1] if reverse else states
    out = np.ascontiguousarray(np.swapaxes(traj, 0, 1))
    return Tensor._make(out, (seq_embedded, w_x, w_h, b), backward)


def _gdu_t_zero(
    parents, gate_ws, gate_bs, gate_slots, has_forget, has_select,
    xd, zd, Wu, Wux, Wuz, bu, D, H,
) -> Tensor:
    """:func:`gdu_layer` fast path for an exactly-zero, no-grad t port.

    With ``t = 0`` the adjust product vanishes (``e ⊙ t = 0``, so the
    adjust gate and the ``W_ut`` rows are dead) and the four selection
    candidates pairwise coincide (``c(z̃,t̃) = c(z̃,t)``, ``c(z,t̃) =
    c(z,t)``), which sums the r gate out of the mixture::

        h = g ⊙ tanh(W_u[x, z̃, 0]) + (1 − g) ⊙ tanh(W_u[x, z, 0])

    Only the forget gate and (when forget is present, so z̃ ≠ z) the g
    gate survive, on the ``[x|z]`` block of their weights. Dead gates get
    explicit all-zero gradients so every parameter still receives a grad.
    """
    k = len(gate_ws)
    need_f = has_forget
    # Without a forget gate z̃ == z, the two surviving candidates coincide
    # and g sums out of the mixture as well.
    need_g = has_select and has_forget
    f = g = None
    S2 = W2 = None
    stack = []  # gate-stack layout: (slot, column) in f-then-g order
    if need_f or need_g:
        ws, bs = [], []
        if need_f:
            stack.append(gate_slots["forget"])
            ws.append(gate_ws[stack[-1]][: D + H])
            bs.append(gate_bs[stack[-1]])
        if need_g:
            stack.append(gate_slots["select-g"])
            ws.append(gate_ws[stack[-1]][: D + H])
            bs.append(gate_bs[stack[-1]])
        S2 = np.concatenate((xd, zd), axis=1)
        W2 = np.concatenate(ws, axis=1) if len(ws) > 1 else ws[0]
        G2 = _sigmoid(S2 @ W2 + np.concatenate(bs))
        if need_f:
            f = G2[:, :H]
        if need_g:
            g = G2[:, H:] if need_f else G2

    z1 = f * zd if need_f else zd
    px = xd @ Wux + bu
    if need_g:
        ca = np.tanh(px + z1 @ Wuz)
        cb = np.tanh(px + zd @ Wuz)
        one_m_g = 1.0 - g
        out = g * ca + one_m_g * cb
    else:
        c = np.tanh(px + z1 @ Wuz)
        out = c

    def backward(gh):
        if need_g:
            da_a = (gh * g) * (1.0 - ca * ca)
            da_b = (gh * one_m_g) * (1.0 - cb * cb)
            da_sum = da_a + da_b
            dg = gh * (ca - cb)
            dz1 = da_a @ Wuz.T
            df = dz1 * zd
            dz = dz1 * f + da_b @ Wuz.T
        else:
            da_sum = gh * (1.0 - c * c)
            dz1 = da_sum @ Wuz.T
            dg = None
            if need_f:
                df = dz1 * zd
                dz = dz1 * f
            else:
                df = None
                dz = dz1

        dWu = np.zeros_like(Wu)
        dWu[:D] = xd.T @ da_sum
        if need_g:
            dWu[D : D + H] = z1.T @ da_a + zd.T @ da_b
        else:
            dWu[D : D + H] = z1.T @ da_sum
        db_u = da_sum.sum(axis=0)
        dx = da_sum @ Wux.T

        gate_grads = [None] * (2 * k)
        if stack:
            dus = []
            if need_f:
                dus.append(df * f * (1.0 - f))
            if need_g:
                dus.append(dg * g * (1.0 - g))
            dU2 = np.concatenate(dus, axis=1) if len(dus) > 1 else dus[0]
            dW2 = S2.T @ dU2
            db2 = dU2.sum(axis=0)
            dS2 = dU2 @ W2.T
            dx = dx + dS2[:, :D]
            dz = dz + dS2[:, D:]
            for col, slot in enumerate(stack):
                dw = np.zeros_like(Wu)
                dw[: D + H] = dW2[:, col * H : (col + 1) * H]
                gate_grads[2 * slot] = dw
                gate_grads[2 * slot + 1] = db2[col * H : (col + 1) * H]
        # Dead gates (adjust always; r always; f/g when not stacked) have
        # exactly-zero gradients — materialize them so optimizers and
        # grad-coverage checks see every parameter.
        for slot in range(k):
            if gate_grads[2 * slot] is None:
                gate_grads[2 * slot] = np.zeros_like(gate_ws[slot])
                gate_grads[2 * slot + 1] = np.zeros_like(gate_bs[slot])

        grads = [dx, dz, None]
        grads.extend(gate_grads)
        grads.append(dWu)
        grads.append(db_u)
        return tuple(grads)

    return Tensor._make(out, tuple(parents), backward)


def gdu_layer(x, z, t, w_u, b_u, forget=None, adjust=None, select=None) -> Tensor:
    """Whole Gated Diffusive Unit (paper §4.2) as one fused tape node.

    The unrolled :class:`repro.core.GDU` builds ~25 tape nodes per call:
    a ``concatenate``, one matmul+bias+sigmoid per gate, and the four
    ``tanh(W_u[·])`` candidates blended by the g/r selection mixture. This
    kernel stacks every *active* gate weight column-wise so the entire gate
    block is a single ``[x|z|t] @ W_gates`` matmul, splits the shared
    candidate weight into its x/z/t row blocks (so the four candidates
    reuse one ``x @ W_ux`` projection and four cheap ``(n, H)`` state
    projections), and evaluates the whole mixture in raw numpy. The
    handwritten backward replays the saved activations and accumulates all
    five weight gradients (plus x/z/t input grads) in closed form.

    Parameters
    ----------
    x, z, t:
        ``(n, D)`` HFLU features and the two ``(n, H)`` diffused states.
    w_u, b_u:
        Shared candidate weight ``(D + 2H, H)`` and bias ``(H,)``.
    forget / adjust / select:
        Optional gate parameter tuples — ``(w_f, b_f)``, ``(w_e, b_e)`` and
        ``(w_g, b_g, w_r, b_r)`` respectively, each weight ``(D + 2H, H)``.
        ``None`` reproduces the matching ablation switch of the unrolled
        path: identity forget/adjust, or the plain ``tanh(W_u[x, z̃, t̃])``
        candidate when the selection pair is absent.

    Returns the ``(n, H)`` diffused hidden state ``h``. Forward values and
    all parameter/input gradients match the unrolled path to 1e-12
    (``tests/test_kernels.py``); gate sigmoids use :func:`_sigmoid`, which
    agrees with ``Tensor.sigmoid`` to ≤ 2 ulp.
    """
    x, z, t = ensure_tensor(x), ensure_tensor(z), ensure_tensor(t)
    w_u, b_u = ensure_tensor(w_u), ensure_tensor(b_u)
    if x.ndim != 2 or z.ndim != 2 or t.ndim != 2:
        raise ValueError(
            f"gdu_layer expects (n, ·) batches, got x={x.shape}, "
            f"z={z.shape}, t={t.shape}"
        )
    n = x.shape[0]
    D = x.shape[1]
    if z.shape[0] != n or t.shape[0] != n:
        raise ValueError(
            f"batch mismatch: x={x.shape}, z={z.shape}, t={t.shape}"
        )
    H = z.shape[1]
    if t.shape[1] != H:
        raise ValueError(f"state width mismatch: z={z.shape}, t={t.shape}")
    C = D + 2 * H
    if w_u.shape != (C, H):
        raise ValueError(f"gdu_layer: w_u shape {w_u.shape} != ({C}, {H})")
    if b_u.shape != (H,):
        raise ValueError(f"gdu_layer: b_u shape {b_u.shape} != ({H},)")

    parents = [x, z, t]
    gate_ws: list = []
    gate_bs: list = []
    gate_slots: dict = {}

    def _add_gate(name: str, w, bias) -> None:
        w, bias = ensure_tensor(w), ensure_tensor(bias)
        if w.shape != (C, H) or bias.shape != (H,):
            raise ValueError(
                f"gdu_layer: {name} gate shapes {w.shape}/{bias.shape} "
                f"!= ({C}, {H})/({H},)"
            )
        parents.append(w)
        parents.append(bias)
        gate_slots[name] = len(gate_ws)
        gate_ws.append(w.data)
        gate_bs.append(bias.data)

    if forget is not None:
        _add_gate("forget", forget[0], forget[1])
    if adjust is not None:
        _add_gate("adjust", adjust[0], adjust[1])
    if select is not None:
        _add_gate("select-g", select[0], select[1])
        _add_gate("select-r", select[2], select[3])
    parents.append(w_u)
    parents.append(b_u)

    xd, zd, td = x.data, z.data, t.data
    k = len(gate_ws)

    # Candidate weight split by input port: W_u = [W_ux; W_uz; W_ut].
    Wu = w_u.data
    Wux = Wu[:D]
    Wuz = Wu[D : D + H]
    Wut = Wu[D + H :]

    # ------------------------------------------------------------------
    # Zero-port fast paths. ``FakeDetectorModel.diffuse`` feeds the §4.2
    # zero defaults through these ports constantly: round 1 starts from
    # all-zero states (both ports zero for every unit) and the creator/
    # subject units never receive a t input at all. With an exactly-zero,
    # no-grad port the gate algebra collapses — the forget/adjust products
    # vanish, candidates that differ only in the dead port coincide, and
    # the mixture weights sum out — so most of the gate matmul and half
    # the candidate work is provably dead. Both paths keep every parent
    # grad exact: dead gates receive explicit all-zero gradient arrays.
    z_inert = not z.requires_grad and not zd.any()
    t_inert = not t.requires_grad and not td.any()
    if t_inert and z_inert:
        # Every candidate is tanh(W_ux x + b_u) and the mixture weights
        # sum to one, so no gate influences the output (or any gradient).
        out = np.tanh(xd @ Wux + b_u.data)

        def backward_zz(gh):
            da = gh * (1.0 - out * out)
            dWu = np.zeros_like(Wu)
            dWu[:D] = xd.T @ da
            grads = [da @ Wux.T, None, None]
            for gw, gb in zip(gate_ws, gate_bs):
                grads.append(np.zeros_like(gw))
                grads.append(np.zeros_like(gb))
            grads.append(dWu)
            grads.append(da.sum(axis=0))
            return tuple(grads)

        return Tensor._make(out, tuple(parents), backward_zz)
    if t_inert:
        return _gdu_t_zero(
            parents, gate_ws, gate_bs, gate_slots,
            forget is not None, select is not None,
            xd, zd, Wu, Wux, Wuz, b_u.data, D, H,
        )
    # ------------------------------------------------------------------

    f = e = g = r = None
    S = Wg = None
    if k:
        # One stacked matmul for every active gate: σ([x|z|t] @ (C, kH)).
        S = np.concatenate((xd, zd, td), axis=1)
        Wg = np.concatenate(gate_ws, axis=1)
        G = _sigmoid(S @ Wg + np.concatenate(gate_bs))
        col = 0
        if forget is not None:
            f = G[:, col : col + H]
            col += H
        if adjust is not None:
            e = G[:, col : col + H]
            col += H
        if select is not None:
            g = G[:, col : col + H]
            r = G[:, col + H : col + 2 * H]

    z1 = f * zd if forget is not None else zd  # z̃ = f ⊙ z
    t1 = e * td if adjust is not None else td  # t̃ = e ⊙ t

    px = xd @ Wux + b_u.data

    if select is not None:
        pz1 = z1 @ Wuz
        pz0 = zd @ Wuz if forget is not None else pz1
        pt1 = t1 @ Wut
        pt0 = td @ Wut if adjust is not None else pt1
        # The four shared-weight candidates of the selection mixture, in
        # the paper's (z̃,t̃) / (z,t̃) / (z̃,t) / (z,t) order, built with
        # in-place adds (commutative, so bit-identical to the naive form).
        ca = px + pz1
        ca += pt1
        np.tanh(ca, out=ca)
        cb = px + pz0
        cb += pt1
        np.tanh(cb, out=cb)
        cc = px + pz1
        cc += pt0
        np.tanh(cc, out=cc)
        cd = px + pz0
        cd += pt0
        np.tanh(cd, out=cd)
        one_m_g = 1.0 - g
        one_m_r = 1.0 - r
        ma = g * r
        mb = one_m_g * r
        mc = g * one_m_r
        md = one_m_g * one_m_r
        out = ma * ca
        out += mb * cb
        out += mc * cc
        out += md * cd
    else:
        c_single = np.tanh(px + z1 @ Wuz + t1 @ Wut)
        out = c_single

    def backward(gh):
        if select is not None:
            # h = Σ m_k ⊙ c_k with m ∈ {gr, (1−g)r, g(1−r), (1−g)(1−r)}.
            daa = (gh * ma) * (1.0 - ca * ca)
            dab = (gh * mb) * (1.0 - cb * cb)
            dac = (gh * mc) * (1.0 - cc * cc)
            dad = (gh * md) * (1.0 - cd * cd)
            da_sum = daa + dab + dac + dad
            da_z1 = daa + dac  # candidates reading the z̃ port
            da_z0 = dab + dad  # candidates reading the raw z port
            da_t1 = daa + dab
            da_t0 = dac + dad
            dg = gh * (r * (ca - cb) + one_m_r * (cc - cd))
            dr = gh * (g * (ca - cc) + one_m_g * (cb - cd))
        else:
            da_sum = gh * (1.0 - c_single * c_single)
            da_z1 = da_t1 = da_sum
            da_z0 = da_t0 = None
            dg = dr = None

        dz1 = da_z1 @ Wuz.T
        dt1 = da_t1 @ Wut.T
        if forget is not None:
            df = dz1 * zd
            dz = dz1 * f
        else:
            df = None
            dz = dz1
        if adjust is not None:
            de = dt1 * td
            dt = dt1 * e
        else:
            de = None
            dt = dt1
        if da_z0 is not None:
            dz = dz + da_z0 @ Wuz.T
            dt = dt + da_t0 @ Wut.T

        dWu = np.empty_like(Wu)
        dWu[:D] = xd.T @ da_sum
        if da_z0 is not None:
            dWu[D : D + H] = z1.T @ da_z1 + zd.T @ da_z0
            dWu[D + H :] = t1.T @ da_t1 + td.T @ da_t0
        else:
            dWu[D : D + H] = z1.T @ da_z1
            dWu[D + H :] = t1.T @ da_t1
        db_u = da_sum.sum(axis=0)
        dx = da_sum @ Wux.T

        grads = [dx, dz, dt]
        if k:
            # Pre-activation grads for the stacked gate block, in the same
            # f/e/g/r stacking order as the forward matmul.
            d_gates = []
            if forget is not None:
                d_gates.append(df * f * (1.0 - f))
            if adjust is not None:
                d_gates.append(de * e * (1.0 - e))
            if select is not None:
                d_gates.append(dg * g * (1.0 - g))
                d_gates.append(dr * r * (1.0 - r))
            dU = np.concatenate(d_gates, axis=1)
            dWg = S.T @ dU
            dbg = dU.sum(axis=0)
            dS = dU @ Wg.T
            grads[0] = grads[0] + dS[:, :D]
            grads[1] = grads[1] + dS[:, D : D + H]
            grads[2] = grads[2] + dS[:, D + H :]
            for i in range(k):
                grads.append(np.ascontiguousarray(dWg[:, i * H : (i + 1) * H]))
                grads.append(dbg[i * H : (i + 1) * H])
        grads.append(dWu)
        grads.append(db_u)
        return tuple(grads)

    return Tensor._make(out, tuple(parents), backward)


# Register with the op profiler / tape sanitizer like every other tape op.
embedding_gather = instrument_op("embedding_gather", embedding_gather)
gru_sequence = instrument_op("gru_sequence", gru_sequence)
lstm_sequence = instrument_op("lstm_sequence", lstm_sequence)
gdu_layer = instrument_op("gdu_layer", gdu_layer)
