"""Neural network layers: Module base class, Linear, Embedding, Dropout.

Follows the familiar Module/Parameter organization so the FakeDetector model
reads like its PyTorch equivalent, while staying pure numpy underneath.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional

import numpy as np

from . import init
from .functional import dropout_mask
from .tensor import Tensor, ensure_tensor, tape_enabled


class Parameter(Tensor):
    """A Tensor that is registered as a trainable parameter of a Module."""

    def __init__(self, data, name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are auto-registered for :meth:`parameters`,
    :meth:`state_dict` and :meth:`zero_grad`.
    """

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its children."""
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Snapshot of all parameter arrays keyed by dotted path."""
        return OrderedDict((name, p.data.copy()) for name, p in self.named_parameters())

    def load_state_dict(self, state: dict) -> None:
        """Load parameter arrays produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: expected {param.shape}, got {value.shape}"
                )
            param.data = value.copy()


class Linear(Module):
    """Affine map ``y = x W + b`` with W of shape (in_features, out_features)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear dimensions must be positive")
        rng = rng or np.random.default_rng()  # repro: noqa[RA002] explicit opt-in randomness when no generator is supplied
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        x = ensure_tensor(x)
        if not tape_enabled():
            # Inference: the same (x @ W) + b arithmetic without the two
            # tape-op wrappers (per-request serving calls this twice per
            # article, for the fusion layer and the softmax head).
            data = x.data @ self.weight.data
            if self.bias is not None:
                data = data + self.bias.data
            return Tensor(data)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self):
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class Embedding(Module):
    """Lookup table mapping integer indices to dense vectors.

    Used by the latent-feature RNN: the paper represents words by a compact
    index code rather than full one-hot vectors ("the latter representation
    will save the computational space cost greatly"); an embedding lookup is
    the differentiable realization of that choice.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
        padding_idx: Optional[int] = None,
    ):
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("Embedding dimensions must be positive")
        rng = rng or np.random.default_rng()  # repro: noqa[RA002] explicit opt-in randomness when no generator is supplied
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), 0.1, rng))
        if padding_idx is not None:
            self.weight.data[padding_idx] = 0.0  # repro: noqa[RA004] init-time write, no tape exists yet

    def forward(self, indices) -> Tensor:
        idx = np.asarray(indices.data if isinstance(indices, Tensor) else indices, dtype=np.intp)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={idx.min()}, max={idx.max()}"
            )
        return self.weight[idx]

    def __repr__(self):
        return f"Embedding(num={self.num_embeddings}, dim={self.embedding_dim})"


class Dropout(Module):
    """Inverted dropout; identity when the module is in eval mode."""

    def __init__(self, rate: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng or np.random.default_rng()  # repro: noqa[RA002] explicit opt-in randomness when no generator is supplied

    def forward(self, x: Tensor) -> Tensor:
        x = ensure_tensor(x)
        if not self.training or self.rate == 0.0:
            return x
        mask = dropout_mask(x.shape, self.rate, self._rng)
        return x * Tensor(mask)

    def __repr__(self):
        return f"Dropout(rate={self.rate})"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __repr__(self):
        inner = ", ".join(repr(l) for l in self.layers)
        return f"Sequential({inner})"


class ReLU(Module):
    """Stateless ReLU layer for use inside Sequential."""

    def forward(self, x: Tensor) -> Tensor:
        return ensure_tensor(x).relu()

    def __repr__(self):
        return "ReLU()"


class Tanh(Module):
    """Stateless tanh layer for use inside Sequential."""

    def forward(self, x: Tensor) -> Tensor:
        return ensure_tensor(x).tanh()

    def __repr__(self):
        return "Tanh()"
