"""First-order optimizers and gradient utilities.

The paper trains FakeDetector "with the back-propagation algorithm"; the
reproduction defaults to Adam for stability, with SGD(+momentum), AdaGrad and
RMSProp available for ablations.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np

from .tensor import Tensor


__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdaGrad",
    "RMSProp",
    "clip_grad_norm",
    "StepLR",
    "ExponentialLR",
]


class Optimizer:
    """Base optimizer holding a list of parameters."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum / Nesterov / weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if momentum < 0:
            raise ValueError("momentum must be non-negative")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.nesterov = nesterov
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = grad + self.momentum * v if self.nesterov else v
            else:
                update = grad
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction and optional weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdaGrad(Optimizer):
    """AdaGrad: per-parameter learning rates from accumulated squared grads."""

    def __init__(self, params: Iterable[Tensor], lr: float = 0.01, eps: float = 1e-10):
        super().__init__(params, lr)
        self.eps = eps
        self._accum = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, acc in zip(self.params, self._accum):
            if p.grad is None:
                continue
            acc += p.grad * p.grad
            p.data -= self.lr * p.grad / (np.sqrt(acc) + self.eps)


class RMSProp(Optimizer):
    """RMSProp with exponentially decaying squared-gradient average."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.001,
        decay: float = 0.9,
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        if not 0 <= decay < 1:
            raise ValueError(f"decay must be in [0, 1), got {decay}")
        self.decay = decay
        self.eps = eps
        self._avg = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, avg in zip(self.params, self._avg):
            if p.grad is None:
                continue
            avg *= self.decay
            avg += (1.0 - self.decay) * p.grad * p.grad
            p.data -= self.lr * p.grad / (np.sqrt(avg) + self.eps)


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm. Essential for the unrolled GRU over long
    articles, where gradients otherwise explode.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    params = [p for p in params if p.grad is not None]
    total = math.sqrt(sum(float((p.grad ** 2).sum()) for p in params))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total


class StepLR:
    """Multiply the optimizer's lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma


class ExponentialLR:
    """Multiply the optimizer's lr by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95):
        self.optimizer = optimizer
        self.gamma = gamma

    def step(self) -> None:
        self.optimizer.lr *= self.gamma
