"""Recurrent cells: vanilla RNN, GRU (used by the paper's HFLU), and LSTM.

The paper's latent-feature extractor is an RNN with GRU hidden units over the
token sequence; the fusion layer is ``x_l = σ(Σ_t W h_t)`` (a mean/sum pool of
hidden states through a learned projection). :class:`GRUEncoder` packages
that exact architecture.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import init
from .tensor import Tensor, concatenate, ensure_tensor, stack, tape_enabled
from .nn import Linear, Module, Parameter


class RNNCell(Module):
    """Elman cell: ``h' = tanh(x W_ih + h W_hh + b)``."""

    def __init__(self, input_size: int, hidden_size: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()  # repro: noqa[RA002] explicit opt-in randomness when no generator is supplied
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(init.xavier_uniform((input_size, hidden_size), rng))
        self.w_hh = Parameter(init.orthogonal((hidden_size, hidden_size), rng))
        self.bias = Parameter(init.zeros((hidden_size,)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        x, h = ensure_tensor(x), ensure_tensor(h)
        return (x @ self.w_ih + h @ self.w_hh + self.bias).tanh()

    def initial_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size)))


class GRUCell(Module):
    """Gated Recurrent Unit cell (Cho et al. 2014).

    update gate  z = σ(x W_xz + h W_hz + b_z)
    reset gate   r = σ(x W_xr + h W_hr + b_r)
    candidate    ĥ = tanh(x W_xh + (r ⊙ h) W_hh + b_h)
    new state    h' = (1 − z) ⊙ h + z ⊙ ĥ
    """

    def __init__(self, input_size: int, hidden_size: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()  # repro: noqa[RA002] explicit opt-in randomness when no generator is supplied
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_xz = Parameter(init.xavier_uniform((input_size, hidden_size), rng))
        self.w_hz = Parameter(init.orthogonal((hidden_size, hidden_size), rng))
        self.b_z = Parameter(init.zeros((hidden_size,)))
        self.w_xr = Parameter(init.xavier_uniform((input_size, hidden_size), rng))
        self.w_hr = Parameter(init.orthogonal((hidden_size, hidden_size), rng))
        self.b_r = Parameter(init.zeros((hidden_size,)))
        self.w_xh = Parameter(init.xavier_uniform((input_size, hidden_size), rng))
        self.w_hh = Parameter(init.orthogonal((hidden_size, hidden_size), rng))
        self.b_h = Parameter(init.zeros((hidden_size,)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        x, h = ensure_tensor(x), ensure_tensor(h)
        z = (x @ self.w_xz + h @ self.w_hz + self.b_z).sigmoid()
        r = (x @ self.w_xr + h @ self.w_hr + self.b_r).sigmoid()
        cand = (x @ self.w_xh + (r * h) @ self.w_hh + self.b_h).tanh()
        return (1.0 - z) * h + z * cand

    def initial_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size)))


class LSTMCell(Module):
    """Long Short-Term Memory cell (provided as an HFLU drop-in alternative)."""

    def __init__(self, input_size: int, hidden_size: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()  # repro: noqa[RA002] explicit opt-in randomness when no generator is supplied
        self.input_size = input_size
        self.hidden_size = hidden_size
        # One fused weight per gate family: input, forget, cell, output.
        self.w_xi = Parameter(init.xavier_uniform((input_size, hidden_size), rng))
        self.w_hi = Parameter(init.orthogonal((hidden_size, hidden_size), rng))
        self.b_i = Parameter(init.zeros((hidden_size,)))
        self.w_xf = Parameter(init.xavier_uniform((input_size, hidden_size), rng))
        self.w_hf = Parameter(init.orthogonal((hidden_size, hidden_size), rng))
        # Forget-gate bias starts at 1 so memories persist early in training.
        self.b_f = Parameter(np.ones((hidden_size,)))
        self.w_xc = Parameter(init.xavier_uniform((input_size, hidden_size), rng))
        self.w_hc = Parameter(init.orthogonal((hidden_size, hidden_size), rng))
        self.b_c = Parameter(init.zeros((hidden_size,)))
        self.w_xo = Parameter(init.xavier_uniform((input_size, hidden_size), rng))
        self.w_ho = Parameter(init.orthogonal((hidden_size, hidden_size), rng))
        self.b_o = Parameter(init.zeros((hidden_size,)))

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h, c = state
        x, h, c = ensure_tensor(x), ensure_tensor(h), ensure_tensor(c)
        i = (x @ self.w_xi + h @ self.w_hi + self.b_i).sigmoid()
        f = (x @ self.w_xf + h @ self.w_hf + self.b_f).sigmoid()
        g = (x @ self.w_xc + h @ self.w_hc + self.b_c).tanh()
        o = (x @ self.w_xo + h @ self.w_ho + self.b_o).sigmoid()
        c_new = f * c + i * g
        h_new = o * c_new.tanh()
        return h_new, c_new

    def initial_state(self, batch_size: int) -> tuple[Tensor, Tensor]:
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros.copy()), Tensor(zeros.copy())


class GRUEncoder(Module):
    """The paper's latent feature extractor.

    3-layer architecture per §4.1.2: input layer (embedded word vectors),
    hidden layer of GRU cells unrolled over the sequence, and a fusion layer
    ``x^l_i = σ(Σ_t W h_{i,t})`` that pools the hidden trajectory into a
    fixed-size latent feature vector.

    Zero-padded positions (index == ``padding_idx`` in the raw sequences) are
    masked out of both the recurrence and the fusion sum, matching the
    paper's "zero-padding will be adopted" treatment without letting padding
    tokens perturb the state.

    With ``fused=True`` (the default) the gru/lstm/bigru recurrences run
    through :mod:`repro.autograd.kernels` — the whole sequence is a single
    tape node with a hand-written BPTT backward — instead of the unrolled
    per-timestep tape. The two paths are numerically equivalent (asserted
    by tests/test_kernels.py); the fused one is several times faster
    because it spends its time in large numpy matmuls rather than Python
    closure dispatch. The 'rnn' cell keeps the unrolled path.
    """

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int,
        hidden_size: int,
        output_size: int,
        rng: Optional[np.random.Generator] = None,
        padding_idx: int = 0,
        cell: str = "gru",
        fused: bool = True,
    ):
        super().__init__()
        from .nn import Embedding  # local import to avoid a cycle at module load

        rng = rng or np.random.default_rng()  # repro: noqa[RA002] explicit opt-in randomness when no generator is supplied
        self.padding_idx = padding_idx
        self.hidden_size = hidden_size
        self.output_size = output_size
        self.cell_type = cell
        self.fused = bool(fused)
        self.embedding = Embedding(vocab_size, embed_dim, rng=rng, padding_idx=padding_idx)
        if cell == "gru":
            self.cell = GRUCell(embed_dim, hidden_size, rng=rng)
        elif cell == "rnn":
            self.cell = RNNCell(embed_dim, hidden_size, rng=rng)
        elif cell == "lstm":
            self.cell = LSTMCell(embed_dim, hidden_size, rng=rng)
        elif cell == "bigru":
            # Bidirectional: independent forward/backward GRUs, states
            # concatenated per position before the fusion layer.
            self.cell = GRUCell(embed_dim, hidden_size, rng=rng)
            self.cell_backward = GRUCell(embed_dim, hidden_size, rng=rng)
        else:
            raise ValueError(
                f"unknown cell type {cell!r} "
                "(expected 'gru', 'rnn', 'lstm' or 'bigru')"
            )
        fusion_in = hidden_size * (2 if cell == "bigru" else 1)
        self.fusion = Linear(fusion_in, output_size, rng=rng)

    def forward(self, sequences: np.ndarray) -> Tensor:
        """Encode integer sequences (batch, seq_len) into (batch, output_size)."""
        seq = np.asarray(
            sequences.data if isinstance(sequences, Tensor) else sequences, dtype=np.intp
        )
        if seq.ndim == 1:
            seq = seq[None, :]
        batch, length = seq.shape
        mask = (seq != self.padding_idx).astype(np.float64)  # (batch, seq_len)
        # Trailing-pad truncation: columns past the longest real sequence in
        # the batch cannot change any state (padded positions carry the
        # previous state) nor the fusion sum (their mask is 0), so clipping
        # the recurrence there is free speedup on ragged batches.
        valid_cols = np.flatnonzero(mask.any(axis=0))
        effective = int(valid_cols[-1]) + 1 if valid_cols.size else 0
        if effective < length:
            seq = seq[:, :effective]
            mask = mask[:, :effective]
            length = effective
        if length == 0:
            width = self.hidden_size * (2 if self.cell_type == "bigru" else 1)
            return self.fusion(Tensor(np.zeros((batch, width)))).sigmoid()
        if self.fused and self.cell_type in ("gru", "lstm", "bigru"):
            return self._forward_fused(seq, mask)
        if self.cell_type == "bigru":
            return self._forward_bidirectional(seq, mask)
        is_lstm = self.cell_type == "lstm"
        if is_lstm:
            h, c = self.cell.initial_state(batch)
        else:
            h = self.cell.initial_state(batch)
        m_cols = mask[:, :, None]            # hoisted out of the time loop
        keep_cols = 1.0 - m_cols
        hidden_sum: Optional[Tensor] = None
        for t in range(length):
            x_t = self.embedding(seq[:, t])
            m = Tensor(m_cols[:, t])
            keep = Tensor(keep_cols[:, t])
            if is_lstm:
                h_new, c_new = self.cell(x_t, (h, c))
                # Carry the previous state through padded positions.
                h = m * h_new + keep * h
                c = m * c_new + keep * c
            else:
                h_new = self.cell(x_t, h)
                h = m * h_new + keep * h
            contribution = m * h
            hidden_sum = contribution if hidden_sum is None else hidden_sum + contribution
        if hidden_sum is None:
            hidden_sum = Tensor(np.zeros((batch, self.hidden_size)))
        return self.fusion(hidden_sum).sigmoid()

    @staticmethod
    def _stacked_gru_gates(cell: GRUCell) -> tuple:
        """Stack a GRUCell's per-gate parameters for the fused kernel.

        One :func:`concatenate` tape node per matrix; its backward splits
        the kernel's stacked gradient back onto the per-gate Parameters, so
        checkpoints keep the historical per-gate state-dict layout. With
        the tape off there is no gradient to split, so the stack is a raw
        ``np.concatenate`` — same bytes, none of the node bookkeeping
        (single-article serving calls this per request).
        """
        if not tape_enabled():
            return (
                np.concatenate((cell.w_xz.data, cell.w_xr.data, cell.w_xh.data), axis=1),
                np.concatenate((cell.w_hz.data, cell.w_hr.data, cell.w_hh.data), axis=1),
                np.concatenate((cell.b_z.data, cell.b_r.data, cell.b_h.data), axis=0),
            )
        return (
            concatenate([cell.w_xz, cell.w_xr, cell.w_xh], axis=1),
            concatenate([cell.w_hz, cell.w_hr, cell.w_hh], axis=1),
            concatenate([cell.b_z, cell.b_r, cell.b_h], axis=0),
        )

    def _forward_fused(self, seq: np.ndarray, mask: np.ndarray) -> Tensor:
        """Single-tape-node path: fused gather + fused recurrence + pool."""
        from .kernels import embedding_gather, gru_sequence, lstm_sequence

        embedded = embedding_gather(self.embedding.weight, seq)  # (B, T, E)
        if self.cell_type == "lstm":
            cell = self.cell
            if tape_enabled():
                w_x = concatenate([cell.w_xi, cell.w_xf, cell.w_xc, cell.w_xo], axis=1)
                w_h = concatenate([cell.w_hi, cell.w_hf, cell.w_hc, cell.w_ho], axis=1)
                b = concatenate([cell.b_i, cell.b_f, cell.b_c, cell.b_o], axis=0)
            else:
                w_x = np.concatenate((cell.w_xi.data, cell.w_xf.data, cell.w_xc.data, cell.w_xo.data), axis=1)
                w_h = np.concatenate((cell.w_hi.data, cell.w_hf.data, cell.w_hc.data, cell.w_ho.data), axis=1)
                b = np.concatenate((cell.b_i.data, cell.b_f.data, cell.b_c.data, cell.b_o.data), axis=0)
            states = lstm_sequence(embedded, mask, w_x, w_h, b)
        elif self.cell_type == "bigru":
            states = concatenate(
                [
                    gru_sequence(
                        embedded, mask, *self._stacked_gru_gates(self.cell)
                    ),
                    gru_sequence(
                        embedded, mask,
                        *self._stacked_gru_gates(self.cell_backward),
                        reverse=True,
                    ),
                ],
                axis=2,
            )
        else:
            states = gru_sequence(
                embedded, mask, *self._stacked_gru_gates(self.cell)
            )
        if tape_enabled():
            hidden_sum = (states * Tensor(mask[:, :, None])).sum(axis=1)
        else:
            # Same multiply-then-reduce, minus per-op Tensor bookkeeping.
            hidden_sum = Tensor((states.data * mask[:, :, None]).sum(axis=1))
        return self.fusion(hidden_sum).sigmoid()

    def _forward_bidirectional(self, seq: np.ndarray, mask: np.ndarray) -> Tensor:
        """Bidirectional pass: fuse Σ_t [h_fw(t) ; h_bw(t)] over valid steps."""
        batch, length = seq.shape
        m_cols = mask[:, :, None]            # hoisted out of the time loops
        keep_cols = 1.0 - m_cols

        def direction(cell: GRUCell, time_indices) -> dict:
            h = cell.initial_state(batch)
            states = {}
            for t in time_indices:
                x_t = self.embedding(seq[:, t])
                m = Tensor(m_cols[:, t])
                keep = Tensor(keep_cols[:, t])
                h = m * cell(x_t, h) + keep * h
                states[t] = h
            return states

        fw = direction(self.cell, range(length))
        bw = direction(self.cell_backward, range(length - 1, -1, -1))
        hidden_sum: Optional[Tensor] = None
        for t in range(length):
            m = Tensor(m_cols[:, t])
            joint = concatenate([fw[t], bw[t]], axis=1)
            contribution = m * joint
            hidden_sum = contribution if hidden_sum is None else hidden_sum + contribution
        if hidden_sum is None:
            hidden_sum = Tensor(np.zeros((batch, 2 * self.hidden_size)))
        return self.fusion(hidden_sum).sigmoid()


def run_rnn(
    cell: Module,
    inputs: Tensor,
    initial_state: Optional[Tensor] = None,
    return_sequence: bool = False,
):
    """Unroll ``cell`` over ``inputs`` of shape (batch, seq_len, features).

    Returns the final hidden state, or the full stacked trajectory
    (batch, seq_len, hidden) if ``return_sequence``. Works with RNNCell and
    GRUCell (single-state cells).
    """
    inputs = ensure_tensor(inputs)
    if inputs.ndim != 3:
        raise ValueError(f"run_rnn expects (batch, seq, feat) inputs, got {inputs.shape}")
    batch, length, _ = inputs.shape
    h = initial_state if initial_state is not None else cell.initial_state(batch)
    states = []
    for t in range(length):
        x_t = inputs[:, t, :]
        h = cell(x_t, h)
        if return_sequence:
            states.append(h)
    if return_sequence:
        return stack(states, axis=1)
    return h
