"""Model checkpointing: save/load Module state dicts as ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from .nn import Module

PathLike = Union[str, Path]

# npz keys cannot contain '/' cleanly across platforms; keep dotted names as-is
# but guard against collisions with the reserved metadata key.
_META_KEY = "__repro_format__"
_FORMAT_VERSION = "1"


def save_state(module: Module, path: PathLike) -> None:
    """Serialize ``module.state_dict()`` to ``path`` (``.npz``)."""
    state = module.state_dict()
    if _META_KEY in state:
        raise ValueError(f"parameter name collides with reserved key {_META_KEY!r}")
    payload = dict(state)
    payload[_META_KEY] = np.array(_FORMAT_VERSION)
    np.savez(str(path), **payload)


def load_state(module: Module, path: PathLike) -> None:
    """Load a ``.npz`` checkpoint saved by :func:`save_state` into ``module``."""
    path = Path(path)
    if not path.exists():
        # np.savez appends .npz if missing; accept either spelling.
        alt = path.with_suffix(path.suffix + ".npz")
        if alt.exists():
            path = alt
        else:
            raise FileNotFoundError(f"checkpoint not found: {path}")
    with np.load(str(path)) as archive:
        version = str(archive[_META_KEY]) if _META_KEY in archive.files else None
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format {version!r} (expected {_FORMAT_VERSION!r})"
            )
        state = {k: archive[k] for k in archive.files if k != _META_KEY}
    module.load_state_dict(state)
