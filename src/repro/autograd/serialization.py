"""Model checkpointing: save/load Module state dicts as ``.npz`` archives.

Two layers:

- :func:`save_arrays` / :func:`load_arrays` — generic versioned array
  archives (any ``{name: ndarray}`` mapping). Used by the serving
  checkpoints for feature matrices and graph indices.
- :func:`save_state` / :func:`load_state` — Module state dicts on top of
  the array layer.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Mapping, Union

import numpy as np

from .nn import Module

PathLike = Union[str, Path]

# npz keys cannot contain '/' cleanly across platforms; keep dotted names as-is
# but guard against collisions with the reserved metadata key.
_META_KEY = "__repro_format__"
_FORMAT_VERSION = "1"


def save_arrays(arrays: Mapping[str, np.ndarray], path: PathLike) -> None:
    """Serialize a ``{name: ndarray}`` mapping to ``path`` (``.npz``).

    Arrays round-trip bit-exactly (dtype and values preserved), which is
    what lets detector checkpoints reproduce identical logits after load.
    """
    if _META_KEY in arrays:
        raise ValueError(f"array name collides with reserved key {_META_KEY!r}")
    payload = {key: np.asarray(value) for key, value in arrays.items()}
    payload[_META_KEY] = np.array(_FORMAT_VERSION)
    np.savez(str(path), **payload)


def load_arrays(path: PathLike) -> Dict[str, np.ndarray]:
    """Load an archive written by :func:`save_arrays` (or :func:`save_state`)."""
    path = Path(path)
    if not path.exists():
        # np.savez appends .npz if missing; accept either spelling.
        alt = path.with_suffix(path.suffix + ".npz")
        if alt.exists():
            path = alt
        else:
            raise FileNotFoundError(f"checkpoint not found: {path}")
    with np.load(str(path)) as archive:
        version = str(archive[_META_KEY]) if _META_KEY in archive.files else None
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format {version!r} (expected {_FORMAT_VERSION!r})"
            )
        return {k: archive[k] for k in archive.files if k != _META_KEY}


def save_state(module: Module, path: PathLike) -> None:
    """Serialize ``module.state_dict()`` to ``path`` (``.npz``)."""
    save_arrays(module.state_dict(), path)


def load_state(module: Module, path: PathLike) -> None:
    """Load a ``.npz`` checkpoint saved by :func:`save_state` into ``module``."""
    module.load_state_dict(load_arrays(path))
