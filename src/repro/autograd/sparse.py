"""Differentiable sparse aggregation for graph diffusion.

The GDU layer needs, for every article, the *mean of its neighbors' hidden
states* (and symmetrically for creators/subjects). Materializing dense
normalized adjacency matrices would cost O(n·m) memory; this op works off
edge lists instead, making full-corpus diffusion feasible.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, instrument_op


def segment_sum(source: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``source`` into ``num_segments`` buckets.

    ``out[s] = Σ_{j: segment_ids[j]==s} source[j]``. Differentiable; the
    gradient of an output row flows unchanged to each contributing row.
    Building block for attention-weighted neighbor aggregation.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.intp)
    if segment_ids.ndim != 1 or segment_ids.shape[0] != source.shape[0]:
        raise ValueError("segment_ids must be 1-D and align with source rows")
    if segment_ids.size and segment_ids.max() >= num_segments:
        raise IndexError("segment_ids out of range for num_segments")
    out_shape = (num_segments,) + source.shape[1:]
    out = np.zeros(out_shape, dtype=np.float64)
    np.add.at(out, segment_ids, source.data)

    def backward(grad):
        return (grad[segment_ids],)

    return Tensor._make(out, (source,), backward)


def gather_segment_mean(
    source: Tensor,
    gather_index: np.ndarray,
    segment_ids: np.ndarray,
    num_segments: int,
) -> Tensor:
    """Mean-aggregate rows of ``source`` into ``num_segments`` output rows.

    For each edge ``j``: row ``gather_index[j]`` of ``source`` contributes to
    output row ``segment_ids[j]``; each output row is the mean of its
    contributions (zero if it received none).

    Parameters
    ----------
    source:
        (n_src, d) node states.
    gather_index:
        (n_edges,) indices into ``source`` rows.
    segment_ids:
        (n_edges,) indices into output rows, aligned with ``gather_index``.
    num_segments:
        Number of output rows.
    """
    gather_index = np.asarray(gather_index, dtype=np.intp)
    segment_ids = np.asarray(segment_ids, dtype=np.intp)
    if gather_index.shape != segment_ids.shape or gather_index.ndim != 1:
        raise ValueError("gather_index and segment_ids must be equal-length 1-D arrays")
    if gather_index.size and gather_index.max() >= source.shape[0]:
        raise IndexError("gather_index out of range for source")
    if segment_ids.size and segment_ids.max() >= num_segments:
        raise IndexError("segment_ids out of range for num_segments")

    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    safe_counts = np.maximum(counts, 1.0)

    out = np.zeros((num_segments, source.shape[1]), dtype=np.float64)
    np.add.at(out, segment_ids, source.data[gather_index])
    out /= safe_counts[:, None]

    def backward(grad):
        # d out[s] / d source[g] = 1/count[s] for each (g, s) edge.
        edge_grad = grad[segment_ids] / safe_counts[segment_ids][:, None]
        src_grad = np.zeros_like(source.data)
        np.add.at(src_grad, gather_index, edge_grad)
        return (src_grad,)

    return Tensor._make(out, (source,), backward)


# The diffusion layer's hot aggregation ops show up in op profiles under
# their own names rather than dissolving into generic index/sum time.
segment_sum = instrument_op("segment_sum", segment_sum)
gather_segment_mean = instrument_op("gather_segment_mean", gather_segment_mean)
