"""Reverse-mode automatic differentiation on numpy arrays.

This module is the computational substrate for the FakeDetector reproduction.
The paper's model (HFLU + GDU) is defined entirely in terms of dense linear
algebra, elementwise gates and reductions, so the engine implements exactly
that surface: a :class:`Tensor` wrapping an ``ndarray``, a tape of backward
closures, and broadcasting-aware gradients.

Design notes
------------
- Gradients accumulate into ``Tensor.grad`` (a plain ``ndarray``) during
  :meth:`Tensor.backward`; the graph is walked in reverse topological order.
- Broadcasting follows numpy semantics; :func:`_unbroadcast` sums gradients
  back down to the operand's original shape.
- The engine is deliberately eager and single-threaded. Everything is float64
  by default so finite-difference gradient checks are tight.
"""

from __future__ import annotations

import functools
from time import perf_counter
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

# ----------------------------------------------------------------------
# Op-level profiling and sanitizing hooks
# ----------------------------------------------------------------------
#: Global timing hook, installed by :mod:`repro.obs.profiler`. When ``None``
#: (the default) every instrumented op takes a single ``is None`` fast path;
#: when set it is called as ``hook(phase, op, seconds)`` with phase
#: ``"forward"`` or ``"backward"`` for each tape op executed.
_OP_HOOK: Optional[Callable[[str, str, float], None]] = None

#: Global value-inspection hook, installed by
#: :class:`repro.analysis.sanitize.Sanitizer`. Called as
#: ``check("forward", op, out_tensor)`` after each instrumented forward and
#: as ``check("backward", op, (out_tensor, grads))`` after the matching
#: backward closure. Unlike the timing hook it sees the produced values, so
#: it can guard numerics (NaN/Inf) and tape integrity (in-place mutation).
_CHECK_HOOK: Optional[Callable[[str, str, object], None]] = None

#: Global op *tagging* hook, installed by :mod:`repro.obs.flame`. An
#: ``(enter, exit)`` pair called as ``enter(op)`` immediately before an
#: instrumented op body runs and ``exit()`` after it returns, on the
#: executing thread — unlike the timing hook (which fires post-hoc with a
#: duration), the tag hook brackets the op *while it is in flight*, which
#: is what a sampling profiler needs to attribute samples to the op.
_OP_TAG_HOOK: Optional[
    "tuple[Callable[[str], None], Callable[[], None]]"
] = None


def set_op_hook(
    hook: Optional[Callable[[str, str, float], None]],
) -> Optional[Callable[[str, str, float], None]]:
    """Install (or clear, with ``None``) the global op-timing hook.

    Returns the previously installed hook so callers can restore it,
    which makes nested profilers well-behaved.
    """
    global _OP_HOOK
    previous = _OP_HOOK
    _OP_HOOK = hook
    return previous


def set_check_hook(
    hook: Optional[Callable[[str, str, object], None]],
) -> Optional[Callable[[str, str, object], None]]:
    """Install (or clear, with ``None``) the global op value-check hook.

    Returns the previous hook so nested sanitizers restore cleanly. The
    check hook composes with the timing hook: both can be active at once.
    """
    global _CHECK_HOOK
    previous = _CHECK_HOOK
    _CHECK_HOOK = hook
    return previous


def set_op_tag_hook(
    hook: Optional["tuple[Callable[[str], None], Callable[[], None]]"],
) -> Optional["tuple[Callable[[str], None], Callable[[], None]]"]:
    """Install (or clear, with ``None``) the global op-tagging hook pair.

    Returns the previous pair so nested profilers restore cleanly; the tag
    hook composes with the timing and check hooks.
    """
    global _OP_TAG_HOOK
    previous = _OP_TAG_HOOK
    _OP_TAG_HOOK = hook
    return previous


#: Public name of every op wrapped by :func:`instrument_op`, in registration
#: order. This is the authoritative tape-op registry: the profiler and the
#: sanitizer observe exactly these ops, and the static shape interpreter
#: (:mod:`repro.analysis.shapes`) must declare a transfer function for each.
INSTRUMENTED_OPS: list = []

# ----------------------------------------------------------------------
# No-tape forward mode
# ----------------------------------------------------------------------
#: When ``False`` (inside a :class:`no_tape` block) every op returns a bare
#: ``Tensor(data)``: no parent tuple, no backward closure, no grad plumbing.
#: Inference-only callers (:class:`repro.serve.InferenceSession`, sharded
#: workers) use this to skip the tape allocation entirely.
_TAPE_ENABLED: bool = True


def tape_enabled() -> bool:
    """True when ops record parents/backward closures (the default)."""
    return _TAPE_ENABLED


class no_tape:
    """Context manager: run tensor ops with autograd bookkeeping disabled.

    Inside the block every op short-circuits in :meth:`Tensor._make` and
    returns a constant ``Tensor`` — no parents, no backward closure, no
    graph retained. ``backward()`` on a result raises (nothing requires
    grad), which is the point: this is a forward-only mode for serving.

    The op hooks (profiler / sanitizer / flame op tags) exist to observe
    the tape, so :func:`instrument_op` skips hook dispatch entirely while
    the tape is off — an :class:`repro.obs.OpProfiler` legitimately records
    zero ops inside the block. Re-entrant and exception-safe.
    """

    __slots__ = ("_previous",)

    def __enter__(self) -> "no_tape":
        global _TAPE_ENABLED
        self._previous = _TAPE_ENABLED
        _TAPE_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _TAPE_ENABLED
        _TAPE_ENABLED = self._previous


def instrument_op(op: str, fn: Callable) -> Callable:
    """Wrap a tape op so the global hooks observe its forward and backward.

    The forward wrapper also rebinds the produced tensor's ``_backward``
    closure, so backward time (and backward value checks) land on the op
    that created the node. With no hook installed the wrapper is two global
    reads and one comparison.
    """
    if op not in INSTRUMENTED_OPS:
        INSTRUMENTED_OPS.append(op)

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        if not _TAPE_ENABLED:
            # No tape → nothing for the hooks to observe (see ``no_tape``).
            return fn(*args, **kwargs)
        hook = _OP_HOOK
        check = _CHECK_HOOK
        op_tag = _OP_TAG_HOOK
        if hook is None and check is None and op_tag is None:
            return fn(*args, **kwargs)
        if op_tag is not None:
            op_tag[0](op)
        try:
            if hook is None:
                out = fn(*args, **kwargs)
            else:
                t0 = perf_counter()
                out = fn(*args, **kwargs)
                hook("forward", op, perf_counter() - t0)
        finally:
            if op_tag is not None:
                op_tag[1]()
        if not isinstance(out, Tensor):
            return out
        if check is not None:
            check("forward", op, out)
        if out._backward is not None:
            inner = out._backward
            # The node reference is only captured when a checker is active:
            # it creates a benign reference cycle (node -> closure -> node)
            # that the profiler-only path should not pay for.
            ref = out if check is not None else None

            def observed_backward(grad, _inner=inner, _op=op, _ref=ref):
                backward_hook = _OP_HOOK
                backward_check = _CHECK_HOOK
                backward_tag = _OP_TAG_HOOK
                if backward_tag is not None:
                    backward_tag[0](_op)
                try:
                    if backward_hook is None:
                        grads = _inner(grad)
                    else:
                        t1 = perf_counter()
                        grads = _inner(grad)
                        backward_hook("backward", _op, perf_counter() - t1)
                finally:
                    if backward_tag is not None:
                        backward_tag[1]()
                if backward_check is not None and _ref is not None:
                    backward_check("backward", _op, (_ref, grads))
                return grads

            out._backward = observed_backward
        return out

    return wrapper


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    """Coerce ``value`` to a float ndarray without copying when possible."""
    if isinstance(value, np.ndarray):
        if value.dtype == dtype:
            return value
        return value.astype(dtype)
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting can (a) prepend axes and (b) stretch length-1 axes. Both
    must be reduced by summation for the chain rule to hold.
    """
    if grad.shape == shape:
        return grad
    # Remove prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Collapse stretched axes.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array contents (any array-like).
    requires_grad:
        Whether gradients should flow into this tensor during ``backward``.
    _parents:
        Internal: tensors this one was computed from.
    _backward:
        Internal: closure that, given the output gradient, returns one
        gradient array (or ``None``) per parent.
    """

    # __weakref__ lets observers (the repro.obs.memory profiler) track node
    # lifetimes without extending them; it costs one pointer per tensor.
    __slots__ = (
        "data", "requires_grad", "grad", "_parents", "_backward", "name",
        "__weakref__",
    )

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: tuple = (),
        _backward: Optional[Callable] = None,
        name: str = "",
    ):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents = _parents
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_tag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple,
        backward: Callable,
    ) -> "Tensor":
        if not _TAPE_ENABLED:
            return Tensor(data)
        requires = any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)

        def backward(grad):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(grad, other.shape),
            )

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)

        def backward(grad):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(-grad, other.shape),
            )

        return Tensor._make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return ensure_tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)

        def backward(grad):
            return (
                _unbroadcast(grad * other.data, self.shape),
                _unbroadcast(grad * self.data, other.shape),
            )

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)

        def backward(grad):
            return (
                _unbroadcast(grad / other.data, self.shape),
                _unbroadcast(-grad * self.data / (other.data ** 2), other.shape),
            )

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return ensure_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor ** exponent requires a Python scalar")

        def backward(grad):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._make(self.data ** exponent, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)
        a, b = self.data, other.data

        def backward(grad):
            if a.ndim == 1 and b.ndim == 1:
                return (grad * b, grad * a)
            if a.ndim == 1:  # (k,) @ (k, n) -> (n,)
                return (grad @ b.T, np.outer(a, grad))
            if b.ndim == 1:  # (m, k) @ (k,) -> (m,)
                return (np.outer(grad, b), a.T @ grad)
            ga = grad @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ grad
            return (_unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape))

        return Tensor._make(a @ b, (self, other), backward)

    # ------------------------------------------------------------------
    # Comparisons (non-differentiable; return plain arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other):
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other):
        return self.data <= (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def backward(grad):
            return (grad.reshape(original),)

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(grad):
            return (grad.transpose(inverse),)

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        if isinstance(index, Tensor):
            index = index.data.astype(np.intp)

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor._make(self.data[index], (self,), backward)

    def squeeze(self, axis=None) -> "Tensor":
        original = self.shape

        def backward(grad):
            return (grad.reshape(original),)

        return Tensor._make(np.squeeze(self.data, axis=axis), (self,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        def backward(grad):
            return (np.squeeze(grad, axis=axis),)

        return Tensor._make(np.expand_dims(self.data, axis), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            return (np.broadcast_to(g, self.shape).copy(),)

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]

        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            return (np.broadcast_to(g, self.shape).copy() / count,)

        return Tensor._make(self.data.mean(axis=axis, keepdims=keepdims), (self,), backward)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = grad
            o = out
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                o = np.expand_dims(o, axis=axis)
            mask = (self.data == o).astype(self.data.dtype)
            # Split gradient evenly across ties, matching subgradient choice.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            return (g * mask / counts,)

        return Tensor._make(out, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out = np.exp(self.data)

        def backward(grad):
            return (grad * out,)

        return Tensor._make(out, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad):
            return (grad / self.data,)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out = np.sqrt(self.data)

        def backward(grad):
            return (grad / (2.0 * out),)

        return Tensor._make(out, (self,), backward)

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)

        def backward(grad):
            return (grad * (1.0 - out ** 2),)

        return Tensor._make(out, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic.
        out = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500))),
            np.exp(np.clip(self.data, -500, 500))
            / (1.0 + np.exp(np.clip(self.data, -500, 500))),
        )

        def backward(grad):
            return (grad * out * (1.0 - out),)

        return Tensor._make(out, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(self.data * mask, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad):
            return (grad * sign,)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient. Defaults to 1 for scalar outputs; required for
            non-scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} != tensor shape {self.shape}"
                )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.grad is None:
                node.grad = node_grad.copy()
            else:
                node.grad = node.grad + node_grad
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + pgrad
                else:
                    grads[id(parent)] = pgrad


def ensure_tensor(value: ArrayLike) -> Tensor:
    """Wrap ``value`` in a :class:`Tensor` if it is not one already."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


# ----------------------------------------------------------------------
# Free-function constructors
# ----------------------------------------------------------------------
def zeros(*shape, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def randn(*shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    rng = rng or np.random.default_rng()  # repro: noqa[RA002] explicit opt-in randomness when no generator is supplied
    return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [ensure_tensor(t) for t in tensors]
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        out = []
        for i, t in enumerate(tensors):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            out.append(grad[tuple(slicer)])
        return tuple(out)

    data = np.concatenate([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stacking along a new ``axis``."""
    tensors = [ensure_tensor(t) for t in tensors]

    def backward(grad):
        return tuple(np.take(grad, i, axis=axis) for i in range(len(tensors)))

    data = np.stack([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tuple(tensors), backward)


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Differentiable selection: ``a`` where condition else ``b``."""
    a, b = ensure_tensor(a), ensure_tensor(b)
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    cond = cond.astype(bool)

    def backward(grad):
        return (
            _unbroadcast(grad * cond, a.shape),
            _unbroadcast(grad * ~cond, b.shape),
        )

    return Tensor._make(np.where(cond, a.data, b.data), (a, b), backward)


# ----------------------------------------------------------------------
# Tape instrumentation
# ----------------------------------------------------------------------
#: Tensor methods timed by the op profiler, keyed by public op name.
PROFILED_OPS = {
    "add": "__add__",
    "neg": "__neg__",
    "sub": "__sub__",
    "mul": "__mul__",
    "div": "__truediv__",
    "pow": "__pow__",
    "matmul": "__matmul__",
    "reshape": "reshape",
    "transpose": "transpose",
    "index": "__getitem__",
    "squeeze": "squeeze",
    "expand_dims": "expand_dims",
    "sum": "sum",
    "mean": "mean",
    "max": "max",
    "exp": "exp",
    "log": "log",
    "sqrt": "sqrt",
    "tanh": "tanh",
    "sigmoid": "sigmoid",
    "relu": "relu",
    "abs": "abs",
    "clip": "clip",
}

for _op_name, _attr in PROFILED_OPS.items():
    setattr(Tensor, _attr, instrument_op(_op_name, getattr(Tensor, _attr)))
# The reflected aliases were bound in the class body before wrapping; they
# must point at the instrumented implementations.
Tensor.__radd__ = Tensor.__add__
Tensor.__rmul__ = Tensor.__mul__

concatenate = instrument_op("concat", concatenate)
stack = instrument_op("stack", stack)
where = instrument_op("where", where)
