"""All comparison methods from the paper's §5.1.2, plus a majority floor."""

from .base import ENTITY_KINDS, CredibilityModel, standardize
from .deepwalk import DeepWalkBaseline
from .embeddings import NegativeSampler, SkipGramModel, walks_to_pairs
from .fakedetector_adapter import FakeDetectorMethod
from .gcn import GCNBaseline
from .label_propagation import LabelPropagationBaseline
from .line import LINEBaseline, LINEEmbedding
from .majority import MajorityBaseline
from .node2vec import Node2VecBaseline
from .rnn_text import RNNBaseline
from .svm import LinearSVM, SVMBaseline

__all__ = [
    "CredibilityModel",
    "ENTITY_KINDS",
    "standardize",
    "LinearSVM",
    "SVMBaseline",
    "RNNBaseline",
    "DeepWalkBaseline",
    "LINEBaseline",
    "LINEEmbedding",
    "LabelPropagationBaseline",
    "MajorityBaseline",
    "Node2VecBaseline",
    "GCNBaseline",
    "FakeDetectorMethod",
    "SkipGramModel",
    "NegativeSampler",
    "walks_to_pairs",
]
