"""Common interface for all credibility-inference methods.

Every method in the paper's comparison (§5.1.2) — FakeDetector, DeepWalk,
LINE, label propagation, RNN, SVM — implements :class:`CredibilityModel`,
so the experiment harness can sweep them uniformly.
"""

from __future__ import annotations

import abc
from typing import Dict

import numpy as np

from ..data.schema import NewsDataset
from ..graph.sampling import TriSplit

ENTITY_KINDS = ("article", "creator", "subject")


class CredibilityModel(abc.ABC):
    """fit/predict contract over a News-HSN corpus and one CV split."""

    #: short name used in result tables (matches the paper's legend)
    name: str = "base"

    @abc.abstractmethod
    def fit(self, dataset: NewsDataset, split: TriSplit) -> "CredibilityModel":
        """Train using only the split's training labels."""

    @abc.abstractmethod
    def predict(self, kind: str) -> Dict[str, int]:
        """Class index (0..5) for every node of ``kind``."""

    # ------------------------------------------------------------------
    @staticmethod
    def check_kind(kind: str) -> None:
        if kind not in ENTITY_KINDS:
            raise ValueError(f"unknown entity kind {kind!r}; expected one of {ENTITY_KINDS}")


def standardize(train: np.ndarray, full: np.ndarray) -> np.ndarray:
    """Z-score ``full`` using statistics of ``train`` (constant cols -> 0)."""
    mean = train.mean(axis=0)
    std = train.std(axis=0)
    std[std == 0] = 1.0
    return (full - mean) / std
