"""DeepWalk baseline (Perozzi et al. 2014; paper §5.1.2).

Truncated random walks over the News-HSN -> skip-gram embeddings -> an SVM
on the embedded nodes, matching the paper's setup: "Based on the learned
embedding results, we can further build a SVM model to determine the class
labels".
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.schema import NUM_CLASSES, NewsDataset
from ..graph.hsn import HeterogeneousNetwork, NodeType
from ..graph.random_walk import generate_walk_corpus
from ..graph.sampling import TriSplit
from .base import CredibilityModel, standardize
from .embeddings import NegativeSampler, SkipGramModel, walks_to_pairs
from .svm import LinearSVM

_KIND_TO_TYPE = {
    "article": NodeType.ARTICLE,
    "creator": NodeType.CREATOR,
    "subject": NodeType.SUBJECT,
}


class DeepWalkBaseline(CredibilityModel):
    """Structure-only embedding baseline."""

    name = "deepwalk"

    def __init__(
        self,
        dim: int = 32,
        num_walks: int = 8,
        walk_length: int = 30,
        window: int = 5,
        negatives: int = 5,
        epochs: int = 3,
        svm_epochs: int = 200,
        seed: int = 0,
        rng: Optional[np.random.Generator] = None,
    ):
        self.dim = dim
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.window = window
        self.negatives = negatives
        self.epochs = epochs
        self.svm_epochs = svm_epochs
        self.seed = seed
        #: Explicit generator for walks + skip-gram init; ``None`` means
        #: derive independent ``default_rng(seed)`` streams as before.
        self.rng = rng
        self.embeddings: Optional[np.ndarray] = None
        self._node_index: Dict[Tuple[NodeType, str], int] = {}
        self._predictions: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    def embed(self, dataset: NewsDataset) -> np.ndarray:
        """Learn structure embeddings for every node of the News-HSN."""
        network = HeterogeneousNetwork.from_dataset(dataset)
        nodes = network.nodes()
        self._node_index = {node: i for i, node in enumerate(nodes)}
        walks_raw = generate_walk_corpus(
            network,
            num_walks=self.num_walks,
            walk_length=self.walk_length,
            seed=self.seed,
            rng=self.rng,
        )
        walks = [[self._node_index[n] for n in walk] for walk in walks_raw]
        centers, contexts = walks_to_pairs(walks, window=self.window)

        freq = Counter()
        for walk in walks:
            freq.update(walk)
        frequencies = np.asarray([freq.get(i, 0) for i in range(len(nodes))], dtype=np.float64)
        sampler = NegativeSampler(frequencies)

        model = SkipGramModel(
            num_nodes=len(nodes), dim=self.dim, negatives=self.negatives,
            seed=self.seed, rng=self.rng,
        )
        model.train_pairs(centers, contexts, sampler, epochs=self.epochs)
        self.embeddings = model.embeddings
        return self.embeddings

    # ------------------------------------------------------------------
    def fit(self, dataset: NewsDataset, split: TriSplit) -> "DeepWalkBaseline":
        self.embed(dataset)
        self._predictions = {}
        jobs = {
            "article": (
                {a: dataset.articles[a].label.class_index for a in dataset.articles},
                split.articles.train,
            ),
            "creator": (
                {
                    c: (dataset.creators[c].label.class_index if dataset.creators[c].label else None)
                    for c in dataset.creators
                },
                split.creators.train,
            ),
            "subject": (
                {
                    s: (dataset.subjects[s].label.class_index if dataset.subjects[s].label else None)
                    for s in dataset.subjects
                },
                split.subjects.train,
            ),
        }
        for kind, (labels_by_id, train_ids) in jobs.items():
            node_type = _KIND_TO_TYPE[kind]
            ids = sorted(labels_by_id)
            rows = np.asarray(
                [self._node_index[(node_type, eid)] for eid in ids], dtype=np.intp
            )
            features = self.embeddings[rows]
            id_to_local = {eid: i for i, eid in enumerate(ids)}
            train_local = [
                id_to_local[eid] for eid in train_ids if labels_by_id.get(eid) is not None
            ]
            train_labels = [labels_by_id[ids[i]] for i in train_local]
            if not train_local:
                self._predictions[kind] = {eid: 0 for eid in ids}
                continue
            features = standardize(features[train_local], features)
            svm = LinearSVM(
                num_classes=NUM_CLASSES, epochs=self.svm_epochs, seed=self.seed
            ).fit(features[train_local], train_labels)
            predictions = svm.predict(features)
            self._predictions[kind] = {eid: int(predictions[id_to_local[eid]]) for eid in ids}
        return self

    def predict(self, kind: str) -> Dict[str, int]:
        self.check_kind(kind)
        if kind not in self._predictions:
            raise RuntimeError("fit() must be called first")
        return dict(self._predictions[kind])
