"""Skip-gram with negative sampling (SGNS), shared by DeepWalk and LINE.

Vectorized numpy implementation: minibatches of (center, context) pairs plus
``k`` negatives drawn from the unigram^0.75 table, trained with SGD on the
standard SGNS objective  log σ(u·v) + Σ log σ(−u·v⁻).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


class NegativeSampler:
    """Draws negatives from the unigram^0.75 distribution."""

    def __init__(self, frequencies: np.ndarray, power: float = 0.75):
        freqs = np.asarray(frequencies, dtype=np.float64)
        if freqs.ndim != 1 or freqs.size == 0:
            raise ValueError("frequencies must be a non-empty 1-D array")
        if (freqs < 0).any():
            raise ValueError("frequencies must be non-negative")
        weights = np.power(np.maximum(freqs, 1e-12), power)
        self.probs = weights / weights.sum()
        self.num_items = freqs.size

    def sample(self, shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.choice(self.num_items, size=shape, p=self.probs)


class SkipGramModel:
    """Two-matrix SGNS embedding trainer.

    ``W_in`` holds the node embeddings returned to callers; ``W_out`` the
    context vectors.
    """

    def __init__(
        self,
        num_nodes: int,
        dim: int = 32,
        negatives: int = 5,
        lr: float = 0.05,
        seed: int = 0,
        rng: Optional[np.random.Generator] = None,
    ):
        if num_nodes <= 0 or dim <= 0:
            raise ValueError("num_nodes and dim must be positive")
        self.num_nodes = num_nodes
        self.dim = dim
        self.negatives = negatives
        self.lr = lr
        rng = rng if rng is not None else np.random.default_rng(seed)
        self.w_in = rng.uniform(-0.5 / dim, 0.5 / dim, size=(num_nodes, dim))
        self.w_out = np.zeros((num_nodes, dim))
        self._rng = rng

    def train_pairs(
        self,
        centers: np.ndarray,
        contexts: np.ndarray,
        sampler: NegativeSampler,
        epochs: int = 1,
        batch_size: int = 128,
    ) -> float:
        """SGD over (center, context) pairs; returns the mean final-epoch loss."""
        centers = np.asarray(centers, dtype=np.intp)
        contexts = np.asarray(contexts, dtype=np.intp)
        if centers.shape != contexts.shape or centers.ndim != 1:
            raise ValueError("centers and contexts must be equal-length 1-D arrays")
        if centers.size == 0:
            return 0.0
        last_loss = 0.0
        for epoch in range(epochs):
            order = self._rng.permutation(centers.size)
            lr = self.lr * (1.0 - epoch / max(1, epochs)) + 1e-4
            total, batches = 0.0, 0
            for start in range(0, order.size, batch_size):
                idx = order[start : start + batch_size]
                total += self._step(centers[idx], contexts[idx], sampler, lr)
                batches += 1
            last_loss = total / max(1, batches)
        return last_loss

    def _step(
        self,
        centers: np.ndarray,
        contexts: np.ndarray,
        sampler: NegativeSampler,
        lr: float,
    ) -> float:
        b = centers.size
        neg = sampler.sample((b, self.negatives), self._rng)
        v = self.w_in[centers]                      # (b, d)
        u_pos = self.w_out[contexts]                # (b, d)
        u_neg = self.w_out[neg]                     # (b, k, d)

        pos_score = _sigmoid((v * u_pos).sum(axis=1))           # (b,)
        neg_score = _sigmoid((u_neg @ v[:, :, None]).squeeze(-1))  # (b, k)

        # Gradients of -log σ(x) terms.
        g_pos = pos_score - 1.0                                  # (b,)
        g_neg = neg_score                                        # (b, k)

        grad_v = g_pos[:, None] * u_pos + (g_neg[:, :, None] * u_neg).sum(axis=1)
        grad_u_pos = g_pos[:, None] * v
        grad_u_neg = g_neg[:, :, None] * v[:, None, :]

        np.add.at(self.w_in, centers, -lr * grad_v)
        np.add.at(self.w_out, contexts, -lr * grad_u_pos)
        np.add.at(self.w_out, neg.ravel(), -lr * grad_u_neg.reshape(-1, self.dim))

        loss = -np.log(np.maximum(pos_score, 1e-10)).mean()
        loss += -np.log(np.maximum(1.0 - neg_score, 1e-10)).sum(axis=1).mean()
        return float(loss)

    @property
    def embeddings(self) -> np.ndarray:
        return self.w_in


def walks_to_pairs(
    walks: Sequence[Sequence[int]], window: int = 5
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand walks into (center, context) skip-gram pairs within ``window``."""
    centers, contexts = [], []
    for walk in walks:
        n = len(walk)
        for i, center in enumerate(walk):
            lo = max(0, i - window)
            hi = min(n, i + window + 1)
            for j in range(lo, hi):
                if j != i:
                    centers.append(center)
                    contexts.append(walk[j])
    return np.asarray(centers, dtype=np.intp), np.asarray(contexts, dtype=np.intp)
