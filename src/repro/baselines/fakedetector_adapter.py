"""Adapter exposing FakeDetector through the common baseline interface."""

from __future__ import annotations

from typing import Dict, Optional

from ..core.config import FakeDetectorConfig
from ..core.trainer import FakeDetector
from ..data.schema import NewsDataset
from ..graph.sampling import TriSplit
from .base import CredibilityModel


class FakeDetectorMethod(CredibilityModel):
    """CredibilityModel wrapper around :class:`repro.core.FakeDetector`."""

    name = "FakeDetector"

    def __init__(self, config: Optional[FakeDetectorConfig] = None):
        self.config = config or FakeDetectorConfig()
        self.detector: Optional[FakeDetector] = None

    def fit(self, dataset: NewsDataset, split: TriSplit) -> "FakeDetectorMethod":
        self.detector = FakeDetector(self.config).fit(dataset, split)
        return self

    def predict(self, kind: str) -> Dict[str, int]:
        self.check_kind(kind)
        if self.detector is None:
            raise RuntimeError("fit() must be called first")
        return self.detector.predict(kind)
