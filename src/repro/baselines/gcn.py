"""Graph Convolutional Network baseline (Kipf & Welling 2017) — extension.

A modern comparator the paper predates: two graph-convolution layers over
the News-HSN, where each node's representation averages its neighbors'
(plus its own) projected features. Per-type input projections map the
heterogeneous explicit features into one shared space; a single weight per
conv layer then operates type-agnostically — the usual "relational lite"
simplification of GCN for heterogeneous graphs.

Trained end-to-end on the same joint objective as FakeDetector, so the
comparison isolates the *architecture* (GDU gating + typed diffusion vs
plain symmetric convolution).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..autograd import Linear, Module, Tensor, concatenate
from ..autograd import functional as F
from ..autograd import optim
from ..autograd.sparse import gather_segment_mean
from ..data.schema import NUM_CLASSES, NewsDataset
from ..graph.sampling import TriSplit
from ..core.pipeline import build_features, build_graph_index
from .base import CredibilityModel


class _GCNLayer(Module):
    """One mean-aggregation graph convolution with self loops.

    h'_v = ReLU(W · mean({h_v} ∪ {h_u : u ~ v}))
    """

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__()
        self.linear = Linear(in_dim, out_dim, rng=rng)

    def forward(self, h: Tensor, gather: np.ndarray, segment: np.ndarray) -> Tensor:
        neighbor_mean = gather_segment_mean(h, gather, segment, h.shape[0])
        combined = (h + neighbor_mean) * 0.5
        return self.linear(combined).relu()


class _GCNModel(Module):
    """Per-type input projections + shared conv stack + per-type heads."""

    def __init__(self, input_dims: Dict[str, int], hidden: int, rng: np.random.Generator):
        super().__init__()
        self.proj_article = Linear(input_dims["article"], hidden, rng=rng)
        self.proj_creator = Linear(input_dims["creator"], hidden, rng=rng)
        self.proj_subject = Linear(input_dims["subject"], hidden, rng=rng)
        self.conv1 = _GCNLayer(hidden, hidden, rng)
        self.conv2 = _GCNLayer(hidden, hidden, rng)
        self.head_article = Linear(hidden, NUM_CLASSES, rng=rng)
        self.head_creator = Linear(hidden, NUM_CLASSES, rng=rng)
        self.head_subject = Linear(hidden, NUM_CLASSES, rng=rng)

    def forward(self, x_by_type, gather, segment, offsets):
        h = concatenate(
            [
                self.proj_article(x_by_type["article"]),
                self.proj_creator(x_by_type["creator"]),
                self.proj_subject(x_by_type["subject"]),
            ],
            axis=0,
        ).relu()
        h = self.conv1(h, gather, segment)
        h = self.conv2(h, gather, segment)
        a0, c0, s0 = offsets
        n_articles = c0 - a0
        n_creators = s0 - c0
        return {
            "article": self.head_article(h[np.arange(a0, c0)]),
            "creator": self.head_creator(h[np.arange(c0, s0)]),
            "subject": self.head_subject(h[np.arange(s0, s0 + (h.shape[0] - s0))]),
        }


class GCNBaseline(CredibilityModel):
    """Two-layer GCN on explicit features over the unified node space."""

    name = "gcn"

    def __init__(
        self,
        hidden: int = 32,
        epochs: int = 80,
        lr: float = 0.01,
        alpha: float = 1e-3,
        explicit_dim: int = 100,
        seed: int = 0,
    ):
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.alpha = alpha
        self.explicit_dim = explicit_dim
        self.seed = seed
        self._predictions: Dict[str, Dict[str, int]] = {}
        self.loss_history: list = []

    def fit(self, dataset: NewsDataset, split: TriSplit) -> "GCNBaseline":
        rng = np.random.default_rng(self.seed)
        features = build_features(
            dataset,
            split.articles.train,
            split.creators.train,
            split.subjects.train,
            explicit_dim=self.explicit_dim,
            vocab_size=100,       # latent branch unused; keep the vocab tiny
            max_seq_len=2,
        )
        graph = build_graph_index(dataset, features)
        n_a, n_c, n_s = (
            features.articles.num, features.creators.num, features.subjects.num,
        )
        offsets = (0, n_a, n_a + n_c)

        # Unified undirected edge list in global row space (both directions).
        gathers, segments = [], []
        art = np.arange(n_a)
        creator_global = graph.article_creator + n_a
        gathers.append(creator_global); segments.append(art)         # creator -> article
        gathers.append(art); segments.append(creator_global)          # article -> creator
        subj_global = graph.article_subject_gather + n_a + n_c
        gathers.append(subj_global); segments.append(graph.article_subject_segment)
        gathers.append(graph.article_subject_segment); segments.append(subj_global)
        gather = np.concatenate(gathers)
        segment = np.concatenate(segments)

        x_by_type = {
            "article": Tensor(features.articles.explicit),
            "creator": Tensor(features.creators.explicit),
            "subject": Tensor(features.subjects.explicit),
        }
        input_dims = {k: int(v.shape[1]) for k, v in x_by_type.items()}
        model = _GCNModel(input_dims, self.hidden, rng)

        def labeled_rows(entity, train_ids):
            rows = entity.rows(train_ids)
            return rows[entity.labels[rows] >= 0]

        train_rows = {
            "article": labeled_rows(features.articles, split.articles.train),
            "creator": labeled_rows(features.creators, split.creators.train),
            "subject": labeled_rows(features.subjects, split.subjects.train),
        }
        params = list(model.parameters())
        optimizer = optim.Adam(params, lr=self.lr)
        self.loss_history = []
        for _ in range(self.epochs):
            logits = model(x_by_type, gather, segment, offsets)
            total = None
            for kind, ent in (
                ("article", features.articles),
                ("creator", features.creators),
                ("subject", features.subjects),
            ):
                rows = train_rows[kind]
                if rows.size == 0:
                    continue
                loss = F.cross_entropy(logits[kind][rows], ent.labels[rows])
                total = loss if total is None else total + loss
            if total is None:
                raise ValueError("no labeled training nodes")
            if self.alpha > 0:
                total = total + F.l2_regularization(params, self.alpha)
            optimizer.zero_grad()
            total.backward()
            optim.clip_grad_norm(params, 5.0)
            optimizer.step()
            self.loss_history.append(float(total.item()))

        model.eval()
        logits = model(x_by_type, gather, segment, offsets)
        self._predictions = {}
        for kind, entity in (
            ("article", features.articles),
            ("creator", features.creators),
            ("subject", features.subjects),
        ):
            predicted = logits[kind].data.argmax(axis=1)
            self._predictions[kind] = {
                eid: int(predicted[i]) for i, eid in enumerate(entity.ids)
            }
        return self

    def predict(self, kind: str) -> Dict[str, int]:
        self.check_kind(kind)
        if kind not in self._predictions:
            raise RuntimeError("fit() must be called first")
        return dict(self._predictions[kind])
