"""Type-aware label propagation (the paper's "Propagation"/lp baseline).

Following the Hu et al. style model the paper cites: credibility *scores*
(True=6 .. Pants on Fire!=1) spread over the heterogeneous structure with
per-link-type weights, in the canonical label-spreading form

    s ← (1 − d) · s0 + d · W · s

where ``s0`` carries the training scores (prior 3.5 elsewhere) and ``W`` is
the type-weighted neighbor-mean operator. Converged scores are rounded back
to labels ("The prediction score will be rounded and cast into labels
according to the label-score mappings"). Scores are re-injected through
``s0`` each round rather than hard-clamped, so information decays with graph
distance — the behavior of the diffusion model the paper benchmarks (hard
clamping would instead make creator/subject inference a one-hop oracle,
since their ground truth is by construction the mean of article scores).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..data.credibility import score_to_label
from ..data.schema import NewsDataset
from ..graph.sampling import TriSplit
from .base import CredibilityModel


class LabelPropagationBaseline(CredibilityModel):
    """Iterative score diffusion over the News-HSN.

    Update for a free node v:

        s(v) <- (1 - damping) * prior + damping * Σ_type w_type * mean_{u∈N_type(v)} s(u)

    where the type weights cover (authorship, subject-indication) neighbor
    groups and are renormalized over the groups a node actually has.
    Training nodes stay clamped to their known scores.
    """

    name = "lp"

    def __init__(
        self,
        damping: float = 0.85,
        iterations: int = 50,
        tolerance: float = 1e-6,
        authorship_weight: float = 0.6,
        subject_weight: float = 0.4,
        prior_score: float = 3.5,
    ):
        if not 0.0 < damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self.damping = damping
        self.iterations = iterations
        self.tolerance = tolerance
        self.authorship_weight = authorship_weight
        self.subject_weight = subject_weight
        self.prior_score = prior_score
        self.scores_: Dict[str, np.ndarray] = {}
        self._ids: Dict[str, list] = {}
        self.converged_iterations_: Optional[int] = None

    def fit(self, dataset: NewsDataset, split: TriSplit) -> "LabelPropagationBaseline":
        article_ids = sorted(dataset.articles)
        creator_ids = sorted(dataset.creators)
        subject_ids = sorted(dataset.subjects)
        a_idx = {a: i for i, a in enumerate(article_ids)}
        c_idx = {c: i for i, c in enumerate(creator_ids)}
        s_idx = {s: i for i, s in enumerate(subject_ids)}
        self._ids = {"article": article_ids, "creator": creator_ids, "subject": subject_ids}

        # Edge index arrays.
        art_creator = np.zeros(len(article_ids), dtype=np.intp)
        as_article, as_subject = [], []
        for aid, article in dataset.articles.items():
            row = a_idx[aid]
            art_creator[row] = c_idx[article.creator_id]
            for sid in article.subject_ids:
                as_article.append(row)
                as_subject.append(s_idx[sid])
        as_article = np.asarray(as_article, dtype=np.intp)
        as_subject = np.asarray(as_subject, dtype=np.intp)

        # Clamp masks and scores from the training split.
        def clamp_vector(ids, index, known):
            scores = np.full(len(ids), self.prior_score)
            mask = np.zeros(len(ids), dtype=bool)
            for eid, score in known.items():
                scores[index[eid]] = score
                mask[index[eid]] = True
            return scores, mask

        known_articles = {
            a: float(dataset.articles[a].label) for a in split.articles.train
        }
        known_creators = {
            c: float(dataset.creators[c].label)
            for c in split.creators.train
            if dataset.creators[c].label is not None
        }
        known_subjects = {
            s: float(dataset.subjects[s].label)
            for s in split.subjects.train
            if dataset.subjects[s].label is not None
        }
        s0_a, m_a = clamp_vector(article_ids, a_idx, known_articles)
        s0_c, m_c = clamp_vector(creator_ids, c_idx, known_creators)
        s0_s, m_s = clamp_vector(subject_ids, s_idx, known_subjects)
        s_a, s_c, s_s = s0_a.copy(), s0_c.copy(), s0_s.copy()

        subj_count_per_article = np.bincount(as_article, minlength=len(article_ids)).astype(float)
        art_count_per_creator = np.bincount(art_creator, minlength=len(creator_ids)).astype(float)
        art_count_per_subject = np.bincount(as_subject, minlength=len(subject_ids)).astype(float)

        w_auth, w_subj = self.authorship_weight, self.subject_weight
        self.converged_iterations_ = self.iterations
        for iteration in range(self.iterations):
            prev = np.concatenate([s_a, s_c, s_s])

            # Articles: creator neighbor (authorship) + mean subject score.
            creator_part = s_c[art_creator]
            subj_sum = np.zeros(len(article_ids))
            np.add.at(subj_sum, as_article, s_s[as_subject])
            has_subj = subj_count_per_article > 0
            subj_part = np.where(
                has_subj, subj_sum / np.maximum(subj_count_per_article, 1.0), self.prior_score
            )
            weight_total = w_auth + np.where(has_subj, w_subj, 0.0)
            neigh_a = (w_auth * creator_part + np.where(has_subj, w_subj * subj_part, 0.0)) / weight_total
            s_a = (1 - self.damping) * s0_a + self.damping * neigh_a

            # Creators: mean score of their articles.
            art_sum = np.zeros(len(creator_ids))
            np.add.at(art_sum, art_creator, s_a)
            has_art = art_count_per_creator > 0
            neigh_c = np.where(
                has_art, art_sum / np.maximum(art_count_per_creator, 1.0), self.prior_score
            )
            s_c = (1 - self.damping) * s0_c + self.damping * neigh_c

            # Subjects: mean score of their articles.
            subj_art_sum = np.zeros(len(subject_ids))
            np.add.at(subj_art_sum, as_subject, s_a[as_article])
            has_sart = art_count_per_subject > 0
            neigh_s = np.where(
                has_sart, subj_art_sum / np.maximum(art_count_per_subject, 1.0), self.prior_score
            )
            s_s = (1 - self.damping) * s0_s + self.damping * neigh_s

            delta = np.abs(np.concatenate([s_a, s_c, s_s]) - prev).max()
            if delta < self.tolerance:
                self.converged_iterations_ = iteration + 1
                break

        self.scores_ = {"article": s_a, "creator": s_c, "subject": s_s}
        return self

    def predict(self, kind: str) -> Dict[str, int]:
        self.check_kind(kind)
        if kind not in self.scores_:
            raise RuntimeError("fit() must be called first")
        scores = self.scores_[kind]
        return {
            eid: score_to_label(scores[i]).class_index
            for i, eid in enumerate(self._ids[kind])
        }

    def predict_scores(self, kind: str) -> Dict[str, float]:
        """Raw converged scores in [1, 6] (before rounding)."""
        self.check_kind(kind)
        if kind not in self.scores_:
            raise RuntimeError("fit() must be called first")
        return {eid: float(self.scores_[kind][i]) for i, eid in enumerate(self._ids[kind])}
