"""LINE baseline (Tang et al. 2015; paper §5.1.2).

Large-scale Information Network Embedding with first-order and second-order
proximity, each trained by edge sampling with negative sampling; the final
node representation concatenates both (the paper's recommended LINE(1st+2nd)
variant). A downstream SVM classifies nodes, as in the paper.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..data.schema import NUM_CLASSES, NewsDataset
from ..graph.hsn import HeterogeneousNetwork, NodeType
from ..graph.sampling import TriSplit
from .base import CredibilityModel, standardize
from .embeddings import NegativeSampler, SkipGramModel, _sigmoid
from .svm import LinearSVM

_KIND_TO_TYPE = {
    "article": NodeType.ARTICLE,
    "creator": NodeType.CREATOR,
    "subject": NodeType.SUBJECT,
}


class LINEEmbedding:
    """First+second order LINE embedding of an undirected typed graph."""

    def __init__(
        self,
        dim: int = 32,
        negatives: int = 5,
        samples_per_edge: int = 40,
        lr: float = 0.05,
        seed: int = 0,
    ):
        if dim % 2 != 0:
            raise ValueError("dim must be even (half first-order, half second-order)")
        self.dim = dim
        self.negatives = negatives
        self.samples_per_edge = samples_per_edge
        self.lr = lr
        self.seed = seed
        self.embeddings: Optional[np.ndarray] = None

    def fit(self, edges: np.ndarray, num_nodes: int, degrees: np.ndarray) -> np.ndarray:
        """Learn embeddings from an (m, 2) undirected edge array."""
        edges = np.asarray(edges, dtype=np.intp)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must be (m, 2)")
        rng = np.random.default_rng(self.seed)
        half = self.dim // 2
        sampler = NegativeSampler(np.asarray(degrees, dtype=np.float64))

        first = self._train_first_order(edges, num_nodes, half, sampler, rng)
        second = self._train_second_order(edges, num_nodes, half, sampler, rng)
        self.embeddings = np.concatenate([first, second], axis=1)
        return self.embeddings

    # ------------------------------------------------------------------
    def _train_first_order(
        self,
        edges: np.ndarray,
        num_nodes: int,
        dim: int,
        sampler: NegativeSampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Symmetric objective: log σ(u_i·u_j) over edges with negatives."""
        emb = rng.uniform(-0.5 / dim, 0.5 / dim, size=(num_nodes, dim))
        total = edges.shape[0] * self.samples_per_edge
        # Modest batches: within-batch row updates accumulate, so large
        # batches with a fixed lr diverge.
        batch = 128
        for start in range(0, total, batch):
            b = min(batch, total - start)
            lr = self.lr * (1.0 - start / total) + 1e-4
            pick = rng.integers(edges.shape[0], size=b)
            src, dst = edges[pick, 0], edges[pick, 1]
            neg = sampler.sample((b, self.negatives), rng)

            v_src, v_dst, v_neg = emb[src], emb[dst], emb[neg]
            g_pos = _sigmoid((v_src * v_dst).sum(axis=1)) - 1.0
            g_neg = _sigmoid((v_neg @ v_src[:, :, None]).squeeze(-1))

            grad_src = g_pos[:, None] * v_dst + (g_neg[:, :, None] * v_neg).sum(axis=1)
            grad_dst = g_pos[:, None] * v_src
            grad_neg = g_neg[:, :, None] * v_src[:, None, :]
            np.add.at(emb, src, -lr * grad_src)
            np.add.at(emb, dst, -lr * grad_dst)
            np.add.at(emb, neg.ravel(), -lr * grad_neg.reshape(-1, dim))
        return emb

    def _train_second_order(
        self,
        edges: np.ndarray,
        num_nodes: int,
        dim: int,
        sampler: NegativeSampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Asymmetric center/context objective over directed edge copies."""
        model = SkipGramModel(
            num_nodes=num_nodes,
            dim=dim,
            negatives=self.negatives,
            lr=self.lr,
            seed=self.seed + 1,
        )
        model._rng = rng
        # Both directions of each undirected edge.
        centers = np.concatenate([edges[:, 0], edges[:, 1]])
        contexts = np.concatenate([edges[:, 1], edges[:, 0]])
        epochs = max(1, self.samples_per_edge // 2)
        model.train_pairs(centers, contexts, sampler, epochs=epochs)
        return model.embeddings


class LINEBaseline(CredibilityModel):
    """Structure-only LINE embedding + downstream SVM."""

    name = "line"

    def __init__(
        self,
        dim: int = 32,
        negatives: int = 5,
        samples_per_edge: int = 40,
        svm_epochs: int = 200,
        seed: int = 0,
    ):
        self.dim = dim
        self.negatives = negatives
        self.samples_per_edge = samples_per_edge
        self.svm_epochs = svm_epochs
        self.seed = seed
        self.embeddings: Optional[np.ndarray] = None
        self._node_index: Dict[Tuple[NodeType, str], int] = {}
        self._predictions: Dict[str, Dict[str, int]] = {}

    def embed(self, dataset: NewsDataset) -> np.ndarray:
        network = HeterogeneousNetwork.from_dataset(dataset)
        nodes = network.nodes()
        self._node_index = {node: i for i, node in enumerate(nodes)}
        edge_list = [
            (self._node_index[a], self._node_index[b]) for _, a, b in network.edges()
        ]
        edges = np.asarray(edge_list, dtype=np.intp)
        degrees = np.zeros(len(nodes))
        for a, b in edge_list:
            degrees[a] += 1
            degrees[b] += 1
        line = LINEEmbedding(
            dim=self.dim,
            negatives=self.negatives,
            samples_per_edge=self.samples_per_edge,
            seed=self.seed,
        )
        self.embeddings = line.fit(edges, len(nodes), degrees)
        return self.embeddings

    def fit(self, dataset: NewsDataset, split: TriSplit) -> "LINEBaseline":
        self.embed(dataset)
        self._predictions = {}
        jobs = {
            "article": (
                {a: dataset.articles[a].label.class_index for a in dataset.articles},
                split.articles.train,
            ),
            "creator": (
                {
                    c: (dataset.creators[c].label.class_index if dataset.creators[c].label else None)
                    for c in dataset.creators
                },
                split.creators.train,
            ),
            "subject": (
                {
                    s: (dataset.subjects[s].label.class_index if dataset.subjects[s].label else None)
                    for s in dataset.subjects
                },
                split.subjects.train,
            ),
        }
        for kind, (labels_by_id, train_ids) in jobs.items():
            node_type = _KIND_TO_TYPE[kind]
            ids = sorted(labels_by_id)
            rows = np.asarray(
                [self._node_index[(node_type, eid)] for eid in ids], dtype=np.intp
            )
            features = self.embeddings[rows]
            id_to_local = {eid: i for i, eid in enumerate(ids)}
            train_local = [
                id_to_local[eid] for eid in train_ids if labels_by_id.get(eid) is not None
            ]
            train_labels = [labels_by_id[ids[i]] for i in train_local]
            if not train_local:
                self._predictions[kind] = {eid: 0 for eid in ids}
                continue
            features = standardize(features[train_local], features)
            svm = LinearSVM(
                num_classes=NUM_CLASSES, epochs=self.svm_epochs, seed=self.seed
            ).fit(features[train_local], train_labels)
            predictions = svm.predict(features)
            self._predictions[kind] = {eid: int(predictions[id_to_local[eid]]) for eid in ids}
        return self

    def predict(self, kind: str) -> Dict[str, int]:
        self.check_kind(kind)
        if kind not in self._predictions:
            raise RuntimeError("fit() must be called first")
        return dict(self._predictions[kind])
