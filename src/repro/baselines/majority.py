"""Majority-class baseline — the sanity floor every real method must beat."""

from __future__ import annotations

from collections import Counter
from typing import Dict

from ..data.schema import NewsDataset
from ..graph.sampling import TriSplit
from .base import CredibilityModel


class MajorityBaseline(CredibilityModel):
    """Predicts the most frequent training label of each node type."""

    name = "majority"

    def __init__(self):
        self._majority: Dict[str, int] = {}
        self._ids: Dict[str, list] = {}

    def fit(self, dataset: NewsDataset, split: TriSplit) -> "MajorityBaseline":
        jobs = {
            "article": (
                sorted(dataset.articles),
                [dataset.articles[a].label.class_index for a in split.articles.train],
            ),
            "creator": (
                sorted(dataset.creators),
                [
                    dataset.creators[c].label.class_index
                    for c in split.creators.train
                    if dataset.creators[c].label is not None
                ],
            ),
            "subject": (
                sorted(dataset.subjects),
                [
                    dataset.subjects[s].label.class_index
                    for s in split.subjects.train
                    if dataset.subjects[s].label is not None
                ],
            ),
        }
        for kind, (ids, labels) in jobs.items():
            self._ids[kind] = ids
            self._majority[kind] = Counter(labels).most_common(1)[0][0] if labels else 0
        return self

    def predict(self, kind: str) -> Dict[str, int]:
        self.check_kind(kind)
        if kind not in self._majority:
            raise RuntimeError("fit() must be called first")
        label = self._majority[kind]
        return {eid: label for eid in self._ids[kind]}
