"""node2vec baseline (Grover & Leskovec 2016) — extension beyond the paper.

DeepWalk with second-order biased walks: the return parameter ``p`` and
in-out parameter ``q`` interpolate between BFS-like (community) and DFS-like
(structural) neighborhoods. Included as an ablation point for the
structure-only family the paper benchmarks.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

import numpy as np

from ..data.schema import NewsDataset
from ..graph.hsn import HeterogeneousNetwork
from ..graph.random_walk import generate_walk_corpus
from ..graph.sampling import TriSplit
from .deepwalk import DeepWalkBaseline
from .embeddings import NegativeSampler, SkipGramModel, walks_to_pairs


class Node2VecBaseline(DeepWalkBaseline):
    """DeepWalk variant with p/q-biased walks; downstream SVM unchanged."""

    name = "node2vec"

    def __init__(self, p: float = 0.5, q: float = 2.0, **kwargs):
        super().__init__(**kwargs)
        if p <= 0 or q <= 0:
            raise ValueError("p and q must be positive")
        self.p = p
        self.q = q

    def embed(self, dataset: NewsDataset) -> np.ndarray:
        network = HeterogeneousNetwork.from_dataset(dataset)
        nodes = network.nodes()
        self._node_index = {node: i for i, node in enumerate(nodes)}
        walks_raw = generate_walk_corpus(
            network,
            num_walks=self.num_walks,
            walk_length=self.walk_length,
            seed=self.seed,
            p=self.p,
            q=self.q,
            rng=self.rng,
        )
        walks = [[self._node_index[n] for n in walk] for walk in walks_raw]
        centers, contexts = walks_to_pairs(walks, window=self.window)

        freq = Counter()
        for walk in walks:
            freq.update(walk)
        frequencies = np.asarray(
            [freq.get(i, 0) for i in range(len(nodes))], dtype=np.float64
        )
        sampler = NegativeSampler(frequencies)
        model = SkipGramModel(
            num_nodes=len(nodes), dim=self.dim, negatives=self.negatives,
            seed=self.seed, rng=self.rng,
        )
        model.train_pairs(centers, contexts, sampler, epochs=self.epochs)
        self.embeddings = model.embeddings
        return self.embeddings

    def fit(self, dataset: NewsDataset, split: TriSplit) -> "Node2VecBaseline":
        # DeepWalkBaseline.fit calls self.embed(), which is overridden above.
        super().fit(dataset, split)
        return self
