"""RNN text baseline (the paper's Rnn comparison method, §5.1.2).

"Merely based on the textual contents": a GRU encoder per node type learns
latent representations of the text, fused through a softmax head — i.e. the
HFLU latent branch without the explicit features and without graph
diffusion.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..autograd import GRUEncoder, Linear, Module, Tensor
from ..autograd import functional as F
from ..autograd import optim
from ..data.schema import NUM_CLASSES, NewsDataset
from ..graph.sampling import TriSplit
from ..text.sequences import encode_batch
from ..text.tokenizer import tokenize
from ..text.vocabulary import Vocabulary
from .base import CredibilityModel


class _RNNClassifier(Module):
    """GRU encoder + linear softmax head over a token sequence."""

    def __init__(self, vocab_size, embed_dim, hidden, latent, rng):
        super().__init__()
        self.encoder = GRUEncoder(
            vocab_size=vocab_size,
            embed_dim=embed_dim,
            hidden_size=hidden,
            output_size=latent,
            rng=rng,
        )
        self.head = Linear(latent, NUM_CLASSES, rng=rng)

    def forward(self, sequences: np.ndarray) -> Tensor:
        return self.head(self.encoder(sequences))


class RNNBaseline(CredibilityModel):
    """Latent-text-only credibility classifier, trained per node type."""

    name = "rnn"

    def __init__(
        self,
        vocab_size: int = 4000,
        embed_dim: int = 16,
        hidden: int = 24,
        latent: int = 16,
        max_seq_len: int = 30,
        epochs: int = 40,
        lr: float = 0.01,
        batch_size: int = 128,
        seed: int = 0,
    ):
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.hidden = hidden
        self.latent = latent
        self.max_seq_len = max_seq_len
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.seed = seed
        self._predictions: Dict[str, Dict[str, int]] = {}

    def fit(self, dataset: NewsDataset, split: TriSplit) -> "RNNBaseline":
        rng = np.random.default_rng(self.seed)
        jobs = {
            "article": (
                sorted(dataset.articles),
                {a: dataset.articles[a].label.class_index for a in dataset.articles},
                lambda eid: dataset.articles[eid].text,
                split.articles.train,
            ),
            "creator": (
                sorted(dataset.creators),
                {
                    c: (dataset.creators[c].label.class_index if dataset.creators[c].label else None)
                    for c in dataset.creators
                },
                lambda eid: dataset.creators[eid].profile,
                split.creators.train,
            ),
            "subject": (
                sorted(dataset.subjects),
                {
                    s: (dataset.subjects[s].label.class_index if dataset.subjects[s].label else None)
                    for s in dataset.subjects
                },
                lambda eid: dataset.subjects[eid].description,
                split.subjects.train,
            ),
        }
        self._predictions = {}
        for kind, (ids, labels_by_id, text_of, train_ids) in jobs.items():
            tokens = [tokenize(text_of(eid)) for eid in ids]
            vocab = Vocabulary.build(tokens, max_size=self.vocab_size)
            sequences = encode_batch(tokens, vocab, self.max_seq_len)
            index = {eid: i for i, eid in enumerate(ids)}
            train_rows = np.asarray(
                [index[eid] for eid in train_ids if labels_by_id.get(eid) is not None],
                dtype=np.intp,
            )
            train_labels = np.asarray(
                [labels_by_id[ids[r]] for r in train_rows], dtype=np.int64
            )
            model = _RNNClassifier(
                vocab_size=len(vocab),
                embed_dim=self.embed_dim,
                hidden=self.hidden,
                latent=self.latent,
                rng=rng,
            )
            self._train(model, sequences, train_rows, train_labels, rng)
            logits = model(sequences)
            predictions = logits.data.argmax(axis=1)
            self._predictions[kind] = {eid: int(predictions[index[eid]]) for eid in ids}
        return self

    def _train(
        self,
        model: _RNNClassifier,
        sequences: np.ndarray,
        train_rows: np.ndarray,
        train_labels: np.ndarray,
        rng: np.random.Generator,
    ) -> List[float]:
        if train_rows.size == 0:
            return []
        params = list(model.parameters())
        optimizer = optim.Adam(params, lr=self.lr)
        history: List[float] = []
        for _ in range(self.epochs):
            order = rng.permutation(train_rows.size)
            epoch_loss = 0.0
            for start in range(0, order.size, self.batch_size):
                batch = order[start : start + self.batch_size]
                rows = train_rows[batch]
                logits = model(sequences[rows])
                loss = F.cross_entropy(logits, train_labels[batch])
                optimizer.zero_grad()
                loss.backward()
                optim.clip_grad_norm(params, 5.0)
                optimizer.step()
                epoch_loss += float(loss.item()) * rows.size
            history.append(epoch_loss / order.size)
        return history

    def predict(self, kind: str) -> Dict[str, int]:
        self.check_kind(kind)
        if kind not in self._predictions:
            raise RuntimeError("fit() must be called first")
        return dict(self._predictions[kind])
