"""Linear SVM, from scratch (the paper's Svm baseline, §5.1.2).

One-vs-rest linear SVM trained by full-batch subgradient descent on the
regularized hinge loss. The paper's baseline feeds it the explicit
bag-of-words features ("a set of explicit features can be extracted
according to the descriptions in this paper").
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..data.schema import NUM_CLASSES, NewsDataset
from ..graph.sampling import TriSplit
from ..text.features import BagOfWordsExtractor
from ..text.tokenizer import tokenize
from .base import CredibilityModel, standardize


class LinearSVM:
    """Multi-class (one-vs-rest) linear SVM.

    Minimizes ``mean_i mean_c max(0, 1 - y_ic (x_i·w_c + b_c)) + λ‖W‖²``
    by subgradient descent with a decaying step size.
    """

    def __init__(
        self,
        num_classes: int,
        reg: float = 1e-3,
        lr: float = 0.5,
        epochs: int = 200,
        seed: int = 0,
    ):
        if num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        self.num_classes = num_classes
        self.reg = reg
        self.lr = lr
        self.epochs = epochs
        self.seed = seed
        self.weights: Optional[np.ndarray] = None  # (d, C)
        self.bias: Optional[np.ndarray] = None     # (C,)

    def fit(self, features: np.ndarray, labels: Sequence[int]) -> "LinearSVM":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if features.ndim != 2:
            raise ValueError("features must be 2-D")
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels must align")
        if labels.size == 0:
            raise ValueError("cannot fit on an empty training set")
        n, d = features.shape
        rng = np.random.default_rng(self.seed)
        weights = rng.normal(0, 0.01, size=(d, self.num_classes))
        bias = np.zeros(self.num_classes)
        # ±1 target matrix for one-vs-rest.
        targets = -np.ones((n, self.num_classes))
        targets[np.arange(n), labels] = 1.0

        for epoch in range(self.epochs):
            lr = self.lr / (1.0 + 0.02 * epoch)
            margins = features @ weights + bias           # (n, C)
            active = (1.0 - targets * margins) > 0         # hinge subgradient mask
            coeff = -(targets * active) / n                # (n, C)
            grad_w = features.T @ coeff + 2.0 * self.reg * weights
            grad_b = coeff.sum(axis=0)
            weights -= lr * grad_w
            bias -= lr * grad_b
        self.weights, self.bias = weights, bias
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("fit() must be called first")
        return np.asarray(features, dtype=np.float64) @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.decision_function(features).argmax(axis=1)

    def hinge_objective(self, features: np.ndarray, labels: Sequence[int]) -> float:
        """Current value of the training objective (for convergence tests)."""
        labels = np.asarray(labels, dtype=np.int64)
        margins = self.decision_function(features)
        targets = -np.ones_like(margins)
        targets[np.arange(len(labels)), labels] = 1.0
        hinge = np.maximum(0.0, 1.0 - targets * margins).mean()
        return float(hinge + self.reg * (self.weights ** 2).sum())


class SVMBaseline(CredibilityModel):
    """Paper baseline: explicit BoW features + linear SVM, per node type."""

    name = "svm"

    def __init__(
        self,
        explicit_dim: int = 120,
        reg: float = 1e-3,
        epochs: int = 200,
        word_selection: str = "chi2",
        seed: int = 0,
    ):
        self.explicit_dim = explicit_dim
        self.reg = reg
        self.epochs = epochs
        self.word_selection = word_selection
        self.seed = seed
        self._predictions: Dict[str, Dict[str, int]] = {}

    def fit(self, dataset: NewsDataset, split: TriSplit) -> "SVMBaseline":
        jobs = {
            "article": (
                sorted(dataset.articles),
                {a: dataset.articles[a].label.class_index for a in dataset.articles},
                lambda eid: dataset.articles[eid].text,
                split.articles.train,
            ),
            "creator": (
                sorted(dataset.creators),
                {
                    c: (dataset.creators[c].label.class_index if dataset.creators[c].label else None)
                    for c in dataset.creators
                },
                lambda eid: dataset.creators[eid].profile,
                split.creators.train,
            ),
            "subject": (
                sorted(dataset.subjects),
                {
                    s: (dataset.subjects[s].label.class_index if dataset.subjects[s].label else None)
                    for s in dataset.subjects
                },
                lambda eid: dataset.subjects[eid].description,
                split.subjects.train,
            ),
        }
        self._predictions = {}
        for kind, (ids, labels_by_id, text_of, train_ids) in jobs.items():
            tokens = [tokenize(text_of(eid)) for eid in ids]
            index = {eid: i for i, eid in enumerate(ids)}
            train_rows = [index[eid] for eid in train_ids if labels_by_id.get(eid) is not None]
            train_docs = [tokens[r] for r in train_rows]
            train_labels = [labels_by_id[ids[r]] for r in train_rows]
            extractor = BagOfWordsExtractor.fit(
                train_docs,
                train_labels,
                size=self.explicit_dim,
                method=self.word_selection,
            )
            full = extractor.transform(tokens)
            full = standardize(full[train_rows], full)
            svm = LinearSVM(
                num_classes=NUM_CLASSES,
                reg=self.reg,
                epochs=self.epochs,
                seed=self.seed,
            ).fit(full[train_rows], train_labels)
            predictions = svm.predict(full)
            self._predictions[kind] = {eid: int(predictions[index[eid]]) for eid in ids}
        return self

    def predict(self, kind: str) -> Dict[str, int]:
        self.check_kind(kind)
        if kind not in self._predictions:
            raise RuntimeError("fit() must be called first")
        return dict(self._predictions[kind])
