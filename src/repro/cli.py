"""Command-line interface: ``python -m repro <command>``.

Commands
--------
generate   write a synthetic PolitiFact-like corpus to JSON lines
analyze    print Table 1 + Figure 1 for a corpus (file or synthetic)
train      train FakeDetector on a corpus and report held-out metrics
           (--trace t.jsonl records a span trace, --profile adds an
           autograd op profile, --profile-memory a tape memory profile,
           --sanitize runs the tape sanitizer; every run leaves a
           results/runs/<id>.json record unless --no-run-record)
evaluate   run the Figure 4/5 θ-sweep over the comparison methods
tune       grid-search FakeDetector hyperparameters with inner CV
report     write the complete reproduction artifact set to a directory
infer      one-shot inductive scoring from a saved detector checkpoint
           (emits one repro.serve.response/1 document)
serve      prediction serving, two modes:
           ``serve http`` runs the multi-process sharded service
           (POST /v1/predict + /v1/healthz + /metrics; --workers/--shards
           size the pool, --slo-* budgets drive /v1/healthz);
           ``serve batch`` is the micro-batched JSONL replay loop
           (--metrics-port exposes /metrics + /healthz).
           Bare ``serve MODEL --input F`` still works (deprecated alias
           for ``serve batch``).
obs        observability utilities: ``obs report`` renders a trace
           (including drift breach/recover summaries when present),
           ``obs trace`` renders one merged distributed request timeline
           from a ``--trace-dir`` store, ``obs diff`` regression-gates
           two run records, ``obs runs`` lists the registry
lint       run the repro.analysis static rules over source trees
analysis   static-analysis utilities (``analysis report`` summarizes by rule)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core import FakeDetector, FakeDetectorConfig
from .data import generate_dataset, load_dataset, save_dataset
from .data.schema import NewsDataset
from .graph.sampling import tri_splits
from .metrics import BinaryMetrics, MultiClassMetrics


def _load_or_generate(args) -> NewsDataset:
    if args.dataset:
        return load_dataset(args.dataset)
    return generate_dataset(scale=args.scale, seed=args.seed)


def _add_corpus_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", type=Path, default=None,
        help="JSON-lines corpus to load (default: generate synthetically)",
    )
    parser.add_argument("--scale", type=float, default=0.05,
                        help="synthetic corpus scale (1.0 = paper size)")
    parser.add_argument("--seed", type=int, default=7)


def cmd_generate(args) -> int:
    dataset = generate_dataset(scale=args.scale, seed=args.seed)
    save_dataset(dataset, args.output)
    print(
        f"wrote {dataset.num_articles} articles / {dataset.num_creators} "
        f"creators / {dataset.num_subjects} subjects to {args.output}"
    )
    return 0


def cmd_analyze(args) -> int:
    from .experiments import figure1, table1

    dataset = _load_or_generate(args)
    print(table1(dataset))
    print()
    print(figure1(dataset))
    return 0


def cmd_train(args) -> int:
    import dataclasses

    from .obs import (
        MemoryProfiler,
        OpProfiler,
        RunRegistry,
        SamplingProfiler,
        Tracer,
        install_tracer,
        render_top,
        uninstall_tracer,
        write_flamegraph,
    )

    dataset = _load_or_generate(args)
    split = next(
        tri_splits(
            sorted(dataset.articles),
            sorted(dataset.creators),
            sorted(dataset.subjects),
            k=args.folds,
            seed=args.seed,
        )
    )
    config = FakeDetectorConfig(
        epochs=args.epochs,
        explicit_dim=args.explicit_dim,
        max_seq_len=args.max_seq_len,
        log_every=max(1, args.epochs // 5),
        seed=args.seed,
        fused_kernels=not args.no_fused,
    )
    tracer = Tracer(path=args.trace) if args.trace else None
    profiler = OpProfiler() if args.profile else None
    memory = MemoryProfiler() if args.profile_memory else None
    flame = SamplingProfiler(interval=1.0 / args.flame_hz) if args.flame else None
    flame_tracer = None
    if flame is not None and tracer is None:
        # The sampler learns span names through the tracer's observer
        # hook; without --trace, a keep-nothing tracer exists purely so
        # training-phase spans tag the sampled stacks.
        flame_tracer = Tracer(keep=False)
    if tracer:
        install_tracer(tracer)
    elif flame_tracer:
        install_tracer(flame_tracer)
    if profiler:
        profiler.start()
    if memory:
        memory.start()
    if flame:
        flame.start()
    try:
        detector = FakeDetector(config).fit(dataset, split, sanitize=args.sanitize)
    finally:
        if flame:
            flame.stop()
        if memory:
            memory.stop()
        if profiler:
            profiler.stop()
        if flame_tracer:
            uninstall_tracer()
        if tracer:
            if profiler:
                tracer.write(profiler.to_dict())
            if memory:
                tracer.write(memory.to_dict())
            uninstall_tracer()
            tracer.close()
            print(f"wrote trace to {args.trace}", file=sys.stderr)
    if profiler:
        print(profiler.table(), file=sys.stderr)
    if memory:
        print(memory.table(), file=sys.stderr)
    flame_profile = None
    if flame:
        flame_profile = flame.snapshot(
            meta={
                "kind": "train",
                "fused_kernels": config.fused_kernels,
                "epochs": args.epochs,
            }
        )
        print(render_top(flame_profile), file=sys.stderr)
        if args.flame_svg:
            write_flamegraph(flame_profile, args.flame_svg)
            print(f"wrote flamegraph to {args.flame_svg}", file=sys.stderr)
    if args.checkpoint:
        from .autograd import save_state

        save_state(detector.model, args.checkpoint)
        print(f"saved checkpoint to {args.checkpoint}")
    if args.save:
        detector.save(args.save)
        print(f"saved detector to {args.save}")

    run_metrics = {
        "final_loss": detector.record.final_loss,
        "total_seconds": detector.record.total_seconds,
        "epochs_run": float(len(detector.record.total)),
    }
    if detector.record.epoch_seconds:
        run_metrics["mean_epoch_seconds"] = (
            detector.record.total_seconds / len(detector.record.epoch_seconds)
        )
    if memory:
        run_metrics["peak_live_mib"] = memory.peak_live_bytes / (1024.0 * 1024.0)
    for kind, store, test_ids in (
        ("article", dataset.articles, split.articles.test),
        ("creator", dataset.creators, split.creators.test),
        ("subject", dataset.subjects, split.subjects.test),
    ):
        predictions = detector.predict(kind)
        labeled = [e for e in test_ids if store[e].label is not None]
        if not labeled:
            continue
        y_true = [store[e].label.class_index for e in labeled]
        y_pred = [predictions[e] for e in labeled]
        binary = BinaryMetrics.compute(
            [int(c >= 3) for c in y_true], [int(c >= 3) for c in y_pred]
        )
        multi = MultiClassMetrics.compute(y_true, y_pred)
        run_metrics[f"{kind}_bi_accuracy"] = binary.accuracy
        run_metrics[f"{kind}_bi_f1"] = binary.f1
        run_metrics[f"{kind}_multi_accuracy"] = multi.accuracy
        run_metrics[f"{kind}_macro_f1"] = multi.macro_f1
        print(
            f"{kind:8s} bi-acc={binary.accuracy:.3f} bi-f1={binary.f1:.3f} "
            f"multi-acc={multi.accuracy:.3f} macro-f1={multi.macro_f1:.3f}"
        )
    if not args.no_run_record:
        registry = RunRegistry(args.runs_dir)
        record = registry.record(
            kind="train",
            config=dataclasses.asdict(config),
            metrics=run_metrics,
            series=detector.record.to_dict(),
        )
        print(
            f"recorded run {record.run_id} in {registry.root} "
            f"(diff with `repro obs diff`)",
            file=sys.stderr,
        )
        if flame_profile is not None:
            profile_path = registry.save_profile(record.run_id, flame_profile)
            print(
                f"saved profile to {profile_path} "
                f"(render with `repro obs flame {record.run_id}`)",
                file=sys.stderr,
            )
    return 0


def cmd_evaluate(args) -> int:
    from .experiments import (
        check_paper_claims,
        default_methods,
        figure4,
        figure5,
        render_claims,
        run_sweep,
    )

    dataset = _load_or_generate(args)
    methods = default_methods(fast=True, only=args.methods)
    thetas = tuple(float(t) for t in args.thetas.split(","))
    result = run_sweep(
        dataset, methods, thetas=thetas, folds=args.folds_run, seed=args.seed,
        verbose=True,
    )
    print(figure4(result))
    print()
    print(figure5(result))
    print()
    print(render_claims(check_paper_claims(result)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FakeDetector (ICDE 2020) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="write a synthetic corpus")
    p_gen.add_argument("output", type=Path)
    p_gen.add_argument("--scale", type=float, default=0.05)
    p_gen.add_argument("--seed", type=int, default=7)
    p_gen.set_defaults(func=cmd_generate)

    p_analyze = sub.add_parser("analyze", help="Table 1 + Figure 1 analyses")
    _add_corpus_args(p_analyze)
    p_analyze.set_defaults(func=cmd_analyze)

    p_train = sub.add_parser("train", help="train FakeDetector")
    _add_corpus_args(p_train)
    p_train.add_argument("--epochs", type=int, default=50)
    p_train.add_argument("--explicit-dim", type=int, default=100)
    p_train.add_argument("--max-seq-len", type=int, default=24)
    p_train.add_argument("--folds", type=int, default=10)
    p_train.add_argument("--no-fused", action="store_true",
                         help="disable the fused sequence kernels and train "
                              "on the unrolled per-timestep tape (the slow "
                              "reference path; see docs/performance.md)")
    p_train.add_argument("--checkpoint", type=Path, default=None,
                         help="write model weights only (.npz)")
    p_train.add_argument("--save", type=Path, default=None,
                         help="write a full detector checkpoint directory "
                              "(loadable by `repro infer`/`repro serve`)")
    p_train.add_argument("--trace", type=Path, default=None,
                         help="write a JSONL span trace of the run "
                              "(render with `repro obs report`)")
    p_train.add_argument("--profile", action="store_true",
                         help="profile autograd ops; prints a per-op table "
                              "and embeds it in --trace output")
    p_train.add_argument("--sanitize", action="store_true",
                         help="run training under the tape sanitizer "
                              "(NaN/Inf guards, in-place mutation checks, "
                              "dead-parameter audit)")
    p_train.add_argument("--profile-memory", action="store_true",
                         help="profile tape memory: per-op allocated/peak "
                              "bytes, live-tensor census and lifetimes "
                              "(printed and embedded in --trace output)")
    p_train.add_argument("--flame", action="store_true",
                         help="run the 100 Hz sampling profiler over the "
                              "whole run; prints a self-time table, saves a "
                              "repro.obs.profile/1 artifact next to the run "
                              "record (render with `repro obs flame`)")
    p_train.add_argument("--flame-hz", type=float, default=100.0,
                         help="sampling rate for --flame (default 100)")
    p_train.add_argument("--flame-svg", type=Path, default=None,
                         help="also write the --flame profile as a "
                              "flamegraph SVG to this path")
    p_train.add_argument("--runs-dir", type=Path, default=None,
                         help="run-record directory (default: $REPRO_RUNS_DIR "
                              "or results/runs)")
    p_train.add_argument("--no-run-record", action="store_true",
                         help="skip writing the results/runs/<id>.json record")
    p_train.set_defaults(func=cmd_train)

    p_infer = sub.add_parser(
        "infer", help="score new articles against a saved detector"
    )
    p_infer.add_argument("model", type=Path, help="detector checkpoint directory")
    p_infer.add_argument(
        "--articles", type=Path, default=None,
        help="JSONL requests ({article_id, text, creator_id, subject_ids}); "
             "default: stdin",
    )
    p_infer.add_argument("--proba", action="store_true",
                         help="include the 6-class softmax distribution")
    p_infer.set_defaults(func=cmd_infer)

    p_serve = sub.add_parser(
        "serve", help="prediction serving (http service / batch replay)"
    )
    serve_sub = p_serve.add_subparsers(dest="serve_command", required=True)

    def _add_slo_args(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--slo-p95-ms", type=float, default=None,
                            help="SLO: rolling p95 per-request latency budget "
                                 "in milliseconds")
        parser.add_argument("--slo-error-rate", type=float, default=None,
                            help="SLO: rolling error-rate budget (0..1)")
        parser.add_argument("--slo-queue-wait-ms", type=float, default=None,
                            help="SLO: rolling p95 queue-wait budget in "
                                 "milliseconds")
        parser.add_argument("--slo-drift-psi", type=float, default=None,
                            help="SLO: rolling mean class-distribution PSI "
                                 "budget (needs a drift baseline)")
        parser.add_argument("--slo-window", type=float, default=60.0,
                            help="rolling SLO window in seconds")

    p_serve_http = serve_sub.add_parser(
        "http", help="multi-process sharded HTTP prediction service"
    )
    p_serve_http.add_argument("model", type=Path,
                              help="detector checkpoint directory")
    p_serve_http.add_argument("--host", default="127.0.0.1")
    p_serve_http.add_argument("--port", type=int, default=0,
                              help="bind port (0 = ephemeral, printed to "
                                   "stderr)")
    p_serve_http.add_argument("--workers", type=int, default=2,
                              help="worker processes (model replicas)")
    p_serve_http.add_argument("--shards", type=int, default=1,
                              help="News-HSN community shards (workers are "
                                   "dealt round-robin over shards)")
    p_serve_http.add_argument("--max-batch-size", type=int, default=32,
                              help="per-worker dynamic-batching cap")
    p_serve_http.add_argument("--max-wait", type=float, default=0.002,
                              help="seconds a worker coalesces a micro-batch")
    p_serve_http.add_argument("--queue-depth", type=int, default=32,
                              help="admission control: in-flight requests "
                                   "per worker before 429")
    p_serve_http.add_argument("--timeout", type=float, default=30.0,
                              help="seconds before a dispatched request 504s")
    p_serve_http.add_argument("--cache-size", type=int, default=2048,
                              help="per-worker LRU text-feature cache entries")
    p_serve_http.add_argument("--trace-dir", type=Path, default=None,
                              help="distributed-trace store directory: every "
                                   "request's front-end + worker spans merge "
                                   "into one <trace_id>.jsonl (render with "
                                   "`repro obs trace`)")
    p_serve_http.add_argument("--drift-baseline", default=None,
                              metavar="auto|PATH",
                              help="arm per-worker drift monitors: 'auto' "
                                   "uses the checkpoint's "
                                   "drift_baseline.json, or give an explicit "
                                   "profile path")
    p_serve_http.add_argument("--drift-threshold", type=float, default=0.25,
                              help="PSI level that flags a drift breach")
    p_serve_http.add_argument("--duration", type=float, default=None,
                              help="serve for this many seconds then exit "
                                   "(default: until interrupted)")
    p_serve_http.add_argument("--export", type=Path, default=None,
                              help="periodically flush /metrics to this file "
                                   "(node-exporter textfile style)")
    p_serve_http.add_argument("--export-interval", type=float, default=5.0,
                              help="seconds between --export flushes")
    p_serve_http.add_argument("--export-format", default="prometheus",
                              choices=("prometheus", "json"))
    p_serve_http.add_argument("--profile-hz", type=float, default=None,
                              help="continuous profiling: run a sampling "
                                   "profiler at this rate in every process; "
                                   "GET /debug/profile?seconds=N returns the "
                                   "merged per-shard capture (works unarmed "
                                   "too, via temporary samplers)")
    _add_slo_args(p_serve_http)
    p_serve_http.set_defaults(func=cmd_serve_http)

    p_serve_batch = serve_sub.add_parser(
        "batch", help="micro-batched serving loop over JSONL requests"
    )
    p_serve_batch.add_argument("model", type=Path,
                               help="detector checkpoint directory")
    p_serve_batch.add_argument("--input", type=Path, default=None,
                               help="JSONL request stream (default: stdin)")
    p_serve_batch.add_argument("--proba", action="store_true")
    p_serve_batch.add_argument("--max-batch-size", type=int, default=32)
    p_serve_batch.add_argument("--max-wait", type=float, default=0.01,
                               help="seconds to coalesce a micro-batch")
    p_serve_batch.add_argument("--cache-size", type=int, default=2048,
                               help="LRU text-feature cache entries "
                                    "(0 disables)")
    p_serve_batch.add_argument("--metrics-port", type=int, default=None,
                               help="expose /metrics (Prometheus) and "
                                    "/healthz on this port (0 = ephemeral, "
                                    "printed to stderr)")
    p_serve_batch.add_argument("--drift-baseline", default=None,
                               metavar="auto|PATH",
                               help="arm an in-process drift monitor: 'auto' "
                                    "uses the checkpoint's "
                                    "drift_baseline.json, or give an "
                                    "explicit profile path")
    p_serve_batch.add_argument("--drift-threshold", type=float, default=0.25,
                               help="PSI level that flags a drift breach")
    _add_slo_args(p_serve_batch)
    p_serve_batch.set_defaults(func=cmd_serve_batch)

    p_obs = sub.add_parser("obs", help="observability utilities")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_obs_report = obs_sub.add_parser(
        "report", help="render a JSONL trace (span tree + op profile)"
    )
    p_obs_report.add_argument("trace", type=Path, help="trace JSONL file")
    p_obs_report.add_argument("--json", action="store_true", dest="as_json",
                              help="emit the stable repro.obs.report/1 JSON "
                                   "instead of text")
    p_obs_report.set_defaults(func=cmd_obs_report)
    p_obs_trace = obs_sub.add_parser(
        "trace", help="render one merged distributed request timeline"
    )
    p_obs_trace.add_argument("trace_id",
                             help="32-hex trace id (from the response meta "
                                  "block or the X-Request-Id echo)")
    p_obs_trace.add_argument("--trace-dir", type=Path, required=True,
                             help="trace store directory the service wrote "
                                  "(`repro serve http --trace-dir`)")
    p_obs_trace.add_argument("--json", action="store_true", dest="as_json",
                             help="emit the repro.obs.trace_render/1 JSON "
                                  "timeline (sorted, depth-annotated spans)")
    p_obs_trace.set_defaults(func=cmd_obs_trace)
    p_obs_flame = obs_sub.add_parser(
        "flame", help="render or diff sampling profiles (repro.obs.profile/1)"
    )
    p_obs_flame.add_argument("ref",
                             help="run id (with a saved profile artifact) or "
                                  "a profile JSON path")
    p_obs_flame.add_argument("--diff", default=None, metavar="REF",
                             help="second run id / profile path; report "
                                  "per-frame self-time deltas (REF − ref) "
                                  "instead of a single-profile table")
    p_obs_flame.add_argument("--svg", type=Path, default=None,
                             help="write a flamegraph SVG (differential "
                                  "coloring when --diff is given)")
    p_obs_flame.add_argument("--limit", type=int, default=25,
                             help="table rows to print (default 25)")
    p_obs_flame.add_argument("--runs-dir", type=Path, default=None,
                             help="run-record directory (default: "
                                  "$REPRO_RUNS_DIR or results/runs)")
    p_obs_flame.add_argument("--json", action="store_true", dest="as_json",
                             help="emit repro.obs.profile/1 (or "
                                  "repro.obs.profile_diff/1 with --diff) "
                                  "JSON instead of text")
    p_obs_flame.set_defaults(func=cmd_obs_flame)
    p_obs_diff = obs_sub.add_parser(
        "diff", help="compare two run records; exit 1 on metric regression"
    )
    p_obs_diff.add_argument("a", help="baseline run id or record path")
    p_obs_diff.add_argument("b", help="candidate run id or record path")
    p_obs_diff.add_argument("--runs-dir", type=Path, default=None,
                            help="run-record directory (default: "
                                 "$REPRO_RUNS_DIR or results/runs)")
    p_obs_diff.add_argument(
        "--threshold", action="append", default=[], metavar="METRIC=TOL[,DIR]",
        help="override a gate, e.g. final_loss=0.02 or "
             "throughput_rps=0.1,higher (repeatable)",
    )
    p_obs_diff.add_argument("--json", action="store_true", dest="as_json",
                            help="emit the repro.obs.diff/1 JSON report")
    p_obs_diff.set_defaults(func=cmd_obs_diff)
    p_obs_runs = obs_sub.add_parser(
        "runs", help="list persisted run records, oldest first"
    )
    p_obs_runs.add_argument("--runs-dir", type=Path, default=None,
                            help="run-record directory (default: "
                                 "$REPRO_RUNS_DIR or results/runs)")
    p_obs_runs.add_argument("--kind", default=None,
                            help="only this run kind (train/benchmark/serve)")
    p_obs_runs.set_defaults(func=cmd_obs_runs)

    p_lint = sub.add_parser(
        "lint", help="run the repro.analysis static rules over source trees"
    )
    p_lint.add_argument(
        "paths", nargs="*", default=["src/repro"], type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    p_lint.add_argument("--select", default=None,
                        help="comma-separated rule ids or RAnXX wildcards "
                             "to run (e.g. RA001,RA2XX)")
    p_lint.add_argument("--pass", default=None, dest="passes",
                        help="comma-separated pass families to run "
                             "(file,arch,concurrency,shapes; default: all)")
    p_lint.add_argument("--fix-hints", action="store_true",
                        help="print a fix hint under each rule's first finding")
    p_lint.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the stable JSON report instead of text")
    p_lint.add_argument("--baseline", type=Path, default=None,
                        help="committed baseline file; with --fail-on-new, "
                             "only findings absent from it fail the run")
    p_lint.add_argument("--fail-on-new", action="store_true",
                        help="exit non-zero only on findings not in --baseline")
    p_lint.add_argument("--write-baseline", type=Path, default=None,
                        help="write the current findings as a baseline file "
                             "and exit 0")
    p_lint.set_defaults(func=cmd_lint)

    p_analysis = sub.add_parser("analysis", help="static-analysis utilities")
    analysis_sub = p_analysis.add_subparsers(dest="analysis_command", required=True)
    p_analysis_report = analysis_sub.add_parser(
        "report", help="per-rule summary of lint findings over source trees"
    )
    p_analysis_report.add_argument(
        "paths", nargs="*", default=["src/repro"], type=Path,
        help="files or directories to analyze (default: src/repro)",
    )
    p_analysis_report.add_argument("--select", default=None,
                                   help="comma-separated rule ids to run")
    p_analysis_report.add_argument("--json", action="store_true", dest="as_json",
                                   help="emit JSON instead of the table")
    p_analysis_report.set_defaults(func=cmd_analysis_report)
    p_analysis_deps = analysis_sub.add_parser(
        "deps", help="render the eager import graph with layer ranks"
    )
    p_analysis_deps.add_argument(
        "paths", nargs="*", default=["src/repro"], type=Path,
        help="source tree to index (default: src/repro)",
    )
    p_analysis_deps.add_argument("--dot", action="store_true",
                                 help="emit Graphviz DOT instead of text")
    p_analysis_deps.add_argument("--modules", action="store_true",
                                 help="module-level graph (default collapses "
                                      "to subpackages)")
    p_analysis_deps.set_defaults(func=cmd_analysis_deps)

    p_eval = sub.add_parser("evaluate", help="Figure 4/5 method sweep")
    _add_corpus_args(p_eval)
    p_eval.add_argument("--thetas", default="0.1,0.5,1.0")
    p_eval.add_argument("--folds-run", type=int, default=1)
    p_eval.add_argument(
        "--methods", nargs="*", default=None,
        help="subset of: FakeDetector lp deepwalk line svm rnn",
    )
    p_eval.set_defaults(func=cmd_evaluate)

    p_tune = sub.add_parser("tune", help="grid-search FakeDetector hyperparameters")
    _add_corpus_args(p_tune)
    p_tune.add_argument("--epochs", type=int, default=30)
    p_tune.add_argument("--inner-folds", type=int, default=3)
    p_tune.add_argument(
        "--grid", default="gdu_hidden=16,32;diffusion_iterations=1,2",
        help="semicolon-separated field=v1,v2 axes",
    )
    p_tune.set_defaults(func=cmd_tune)

    p_report = sub.add_parser(
        "report", help="write the full reproduction artifact set to a directory"
    )
    _add_corpus_args(p_report)
    p_report.add_argument("output", type=Path)
    p_report.add_argument("--thetas", default="0.1,0.5,1.0")
    p_report.add_argument("--folds-run", type=int, default=1)
    p_report.set_defaults(func=cmd_report)
    return parser


def cmd_obs_report(args) -> int:
    """Render a trace JSONL file: span self-time tree + op profile tables."""
    import json

    from .obs import render_trace_file, report_to_dict

    if args.as_json:
        print(json.dumps(report_to_dict(args.trace), indent=2, sort_keys=True))
    else:
        print(render_trace_file(args.trace))
    return 0


def cmd_obs_trace(args) -> int:
    """Render one merged per-request timeline from a trace-dir store."""
    import json

    from .obs import TraceStore, render_timeline, timeline_to_dict

    store = TraceStore(args.trace_dir)
    try:
        records = store.read(args.trace_id)
    except (FileNotFoundError, ValueError) as exc:
        print(f"trace {args.trace_id} not found in {args.trace_dir}: {exc}",
              file=sys.stderr)
        return 1
    finally:
        store.close()
    if args.as_json:
        print(json.dumps(timeline_to_dict(records), indent=2, sort_keys=True))
    else:
        print(render_timeline(records))
    return 0


def cmd_obs_flame(args) -> int:
    """Render one sampling profile, or diff two by per-frame self time."""
    import json

    from .obs import (
        RunRegistry,
        diff_profiles,
        render_diff,
        render_top,
        write_flamegraph,
    )

    registry = RunRegistry(args.runs_dir)
    try:
        profile = registry.load_profile(args.ref)
        other = (
            registry.load_profile(args.diff) if args.diff is not None else None
        )
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if other is not None:
        diff = diff_profiles(profile, other, limit=args.limit)
        if args.as_json:
            print(json.dumps(diff, indent=2, sort_keys=True))
        else:
            print(render_diff(diff, limit=args.limit))
    elif args.as_json:
        print(json.dumps(profile.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_top(profile, limit=args.limit))
    if args.svg:
        # Single profile: its own flamegraph. With --diff: the OTHER
        # profile's tree, heat-colored by self-share movement vs ref.
        write_flamegraph(
            profile if other is None else other,
            args.svg,
            baseline=None if other is None else profile,
        )
        print(f"wrote flamegraph to {args.svg}", file=sys.stderr)
    return 0


def cmd_obs_diff(args) -> int:
    """Regression-gate two run records; exit 1 when a metric regressed."""
    import json

    from .obs import RunRegistry, diff_runs, parse_threshold_specs

    registry = RunRegistry(args.runs_dir)
    diff = diff_runs(
        registry.load(args.a),
        registry.load(args.b),
        thresholds=parse_threshold_specs(args.threshold),
    )
    if args.as_json:
        print(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        print(diff.render())
    return 0 if diff.ok else 1


def cmd_obs_runs(args) -> int:
    """Tabulate the persisted run records of one registry directory."""
    from time import gmtime, strftime

    from .obs import RunRegistry

    registry = RunRegistry(args.runs_dir)
    records = registry.list(kind=args.kind)
    if not records:
        print(f"no run records in {registry.root}")
        return 0
    print(f"{'run_id':<36s} {'kind':<10s} {'created (UTC)':<20s} "
          f"{'git':<8s} metrics")
    for record in records:
        created = strftime("%Y-%m-%d %H:%M:%S", gmtime(record.created_ts))
        sha = (record.git_sha or "-")[:7]
        headline = ", ".join(
            f"{k}={record.metrics[k]:.4g}"
            for k in sorted(record.metrics)[:4]
        )
        print(f"{record.run_id:<36s} {record.kind:<10s} {created:<20s} "
              f"{sha:<8s} {headline}")
    return 0


def _parse_select(spec: Optional[str]) -> Optional[List[str]]:
    if spec is None:
        return None
    return [r.strip() for r in spec.split(",") if r.strip()]


def cmd_lint(args) -> int:
    """Run the selected passes; exit 0 only when the tree is clean.

    With ``--baseline FILE --fail-on-new``, pre-existing findings (by
    line-insensitive fingerprint) are tolerated and only new ones fail.
    """
    import json

    from .analysis import (
        baseline_payload,
        lint_paths,
        load_baseline,
        new_findings,
        render_findings,
    )

    result = lint_paths(
        args.paths,
        select=_parse_select(args.select),
        passes=_parse_select(args.passes),
    )
    if args.write_baseline is not None:
        args.write_baseline.parent.mkdir(parents=True, exist_ok=True)
        args.write_baseline.write_text(
            json.dumps(baseline_payload(result), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        print(
            f"wrote baseline ({len(result.findings)} fingerprints) to "
            f"{args.write_baseline}"
        )
        return 0
    if args.as_json:
        print(result.to_json())
    else:
        print(render_findings(result, fix_hints=args.fix_hints))
    if args.baseline is not None and args.fail_on_new:
        fresh = new_findings(result, load_baseline(args.baseline))
        if fresh:
            print(f"{len(fresh)} findings not in baseline {args.baseline}")
            return 1
        return 1 if result.errors else 0
    return 0 if result.clean else 1


def cmd_analysis_report(args) -> int:
    """Per-rule summary over the same findings ``repro lint`` reports."""
    import json

    from .analysis import lint_paths, render_summary, summarize

    result = lint_paths(args.paths, select=_parse_select(args.select))
    if args.as_json:
        print(json.dumps(summarize(result), indent=2, sort_keys=True))
    else:
        print(render_summary(result))
    return 0 if result.clean else 1


def cmd_analysis_deps(args) -> int:
    """Render the eager import graph (text adjacency or Graphviz DOT)."""
    from .analysis import ProgramIndex, render_deps
    from .analysis.lint import iter_python_files

    index = ProgramIndex(package="repro")
    for path in iter_python_files(args.paths):
        index.add_source(path.as_posix(), path.read_text(encoding="utf-8"))
    print(render_deps(index, dot=args.dot, collapse=not args.modules))
    return 0


def cmd_report(args) -> int:
    from .experiments import generate_full_report

    dataset = _load_or_generate(args)
    thetas = tuple(float(t) for t in args.thetas.split(","))
    paths = generate_full_report(
        dataset, args.output, thetas=thetas, folds=args.folds_run,
        seed=args.seed, verbose=True,
    )
    print(paths.summary.read_text())
    print(f"artifacts written to {paths.directory}")
    return 0


def _read_requests(path: Optional[Path]):
    """Parse JSONL article requests from a file or stdin."""
    import json

    from .serve import ArticleRequest

    stream = path.open() if path else sys.stdin
    try:
        requests = []
        for line in stream:
            line = line.strip()
            if not line:
                continue
            requests.append(ArticleRequest.from_dict(json.loads(line)))
        return requests
    finally:
        if path:
            stream.close()


def cmd_infer(args) -> int:
    """One-shot scoring: load checkpoint, answer a batch, exit.

    Emits a single ``repro.serve.response/1`` document on stdout, the same
    schema the HTTP service speaks.
    """
    import json
    from time import perf_counter

    from .serve import InferenceSession, PredictResponse, checkpoint_digest

    detector = FakeDetector.load(args.model)
    requests = _read_requests(args.articles)
    session = InferenceSession(detector)
    start = perf_counter()
    predictions = session.predict(requests, return_proba=args.proba)
    response = PredictResponse.from_predictions(
        predictions,
        model_digest=checkpoint_digest(args.model),
        timing={"total_ms": 1e3 * (perf_counter() - start)},
    )
    print(json.dumps(response.to_dict()))
    print(session.metrics.render(), file=sys.stderr)
    return 0


def _build_slo_rules(args):
    from .obs import default_serving_rules

    return default_serving_rules(
        p95_latency_s=(
            args.slo_p95_ms / 1e3 if args.slo_p95_ms is not None else None
        ),
        error_rate=args.slo_error_rate,
        queue_wait_p95_s=(
            args.slo_queue_wait_ms / 1e3
            if args.slo_queue_wait_ms is not None else None
        ),
        drift_psi=args.slo_drift_psi,
        window_seconds=args.slo_window,
    )


def cmd_serve_http(args) -> int:
    """Run the multi-process sharded prediction service.

    ``POST /v1/predict`` speaks ``repro.serve.request/1`` →
    ``response/1``; ``GET /v1/healthz`` reports pool + SLO state (503 when
    degraded); ``GET /metrics`` serves the Prometheus registry;
    ``GET /debug/profile?seconds=N`` captures a merged per-shard sampling
    profile (continuous when ``--profile-hz`` is set, on-demand otherwise).
    ``--export`` additionally flushes the registry to a file on an
    interval (the PR 4 :class:`repro.obs.PeriodicExporter`).
    """
    import time as time_mod

    from .obs import PeriodicExporter, SloMonitor
    from .serve import PredictionService

    service = PredictionService(
        args.model,
        workers=args.workers,
        shards=args.shards,
        host=args.host,
        port=args.port,
        max_batch_size=args.max_batch_size,
        max_wait=args.max_wait,
        max_queue_depth=args.queue_depth,
        request_timeout=args.timeout,
        feature_cache_size=args.cache_size,
        trace_dir=args.trace_dir,
        drift_baseline=args.drift_baseline,
        drift_threshold=args.drift_threshold,
        profile_hz=args.profile_hz,
    )
    rules = _build_slo_rules(args)
    monitor = None
    if rules:
        monitor = SloMonitor(rules, registry=service.metrics.registry)
        service.slo = monitor
    exporter = None
    try:
        service.start()
        print(
            f"serving {args.model} at {service.url} "
            f"(workers={args.workers}, shards={args.shards}, "
            f"digest={service.model_digest})",
            file=sys.stderr,
        )
        if args.export is not None:
            exporter = PeriodicExporter(
                service.metrics.registry,
                args.export,
                interval=args.export_interval,
                fmt=args.export_format,
            ).start()
        if args.duration is not None:
            time_mod.sleep(args.duration)
        else:
            try:
                while True:
                    time_mod.sleep(3600.0)
            except KeyboardInterrupt:
                print("interrupted, shutting down", file=sys.stderr)
    finally:
        if exporter is not None:
            exporter.stop()
        service.close()
    print(service.metrics.render(), file=sys.stderr)
    if monitor is not None and monitor.breached_rules:
        print(f"SLO breached: {', '.join(monitor.breached_rules)}",
              file=sys.stderr)
        return 2
    return 0


def cmd_serve_batch(args) -> int:
    """Long-lived loop: cached-state session + micro-batching queue.

    Reads JSONL requests, submits each through the :class:`BatchQueue`
    (exercising the same coalescing path a network front-end would), emits
    one ``repro.serve.response/1`` line per request, and reports serving
    metrics on exit. ``--metrics-port`` adds a live Prometheus scrape
    endpoint; the ``--slo-*`` budgets attach an
    :class:`repro.obs.SloMonitor` whose breaches flip ``/healthz`` to 503
    and emit structured warning events.
    """
    import json

    from .obs import MetricsServer, SloMonitor
    from .serve import (
        BatchQueue,
        InferenceSession,
        PredictResponse,
        checkpoint_digest,
    )

    detector = FakeDetector.load(args.model)
    digest = checkpoint_digest(args.model)
    rules = _build_slo_rules(args)
    metrics = None
    monitor = None
    session = InferenceSession(detector, feature_cache_size=args.cache_size)
    if rules:
        monitor = SloMonitor(rules, registry=session.metrics.registry)
        session.slo = monitor
    if args.drift_baseline is not None:
        from .obs.drift import BaselineProfile, DriftMonitor, load_baseline

        if args.drift_baseline == "auto":
            baseline = load_baseline(args.model)
        else:
            baseline = BaselineProfile.load(args.drift_baseline)
        if baseline is not None:
            session.drift = DriftMonitor(
                baseline,
                threshold=args.drift_threshold,
                registry=session.metrics.registry,
                slo=monitor,
            )
        else:
            print(f"no drift baseline in {args.model}; monitor disarmed",
                  file=sys.stderr)
    if args.metrics_port is not None:
        metrics = MetricsServer(
            session.metrics.registry,
            port=args.metrics_port,
            health=monitor.health if monitor else None,
        ).start()
        print(f"metrics at {metrics.url}/metrics", file=sys.stderr)
    print(
        f"serving {args.model} "
        f"(max_batch_size={args.max_batch_size}, max_wait={args.max_wait}s)",
        file=sys.stderr,
    )

    def handle(batch):
        return session.predict(batch, return_proba=args.proba)

    try:
        with BatchQueue(handle, max_batch_size=args.max_batch_size,
                        max_wait=args.max_wait,
                        metrics=session.metrics, slo=monitor) as batch_queue:
            pending = [
                (request, batch_queue.submit(request))
                for request in _read_requests(args.input)
            ]
            for _, handle_ in pending:
                response = PredictResponse.from_predictions(
                    [handle_.result(timeout=60.0)], model_digest=digest
                )
                print(json.dumps(response.to_dict()))
    finally:
        if metrics is not None:
            metrics.close()
    print(session.metrics.render(), file=sys.stderr)
    if monitor is not None and monitor.breached_rules:
        print(f"SLO breached: {', '.join(monitor.breached_rules)}",
              file=sys.stderr)
        return 2
    return 0


def _parse_grid(spec: str) -> dict:
    """Parse 'a=1,2;b=0.5,1.0' into {a: [1, 2], b: [0.5, 1.0]}."""
    grid = {}
    for axis in spec.split(";"):
        axis = axis.strip()
        if not axis:
            continue
        if "=" not in axis:
            raise ValueError(f"malformed grid axis {axis!r} (expected field=v1,v2)")
        field, values = axis.split("=", 1)
        parsed = []
        for raw in values.split(","):
            raw = raw.strip()
            try:
                parsed.append(int(raw))
            except ValueError:
                try:
                    parsed.append(float(raw))
                except ValueError:
                    parsed.append(raw)
        grid[field.strip()] = parsed
    if not grid:
        raise ValueError("empty grid")
    return grid


def cmd_tune(args) -> int:
    from .core import FakeDetectorConfig
    from .experiments.tuning import grid_search

    dataset = _load_or_generate(args)
    split = next(
        tri_splits(
            sorted(dataset.articles),
            sorted(dataset.creators),
            sorted(dataset.subjects),
            k=10,
            seed=args.seed,
        )
    )
    base = FakeDetectorConfig(epochs=args.epochs, seed=args.seed)
    grid = _parse_grid(args.grid)
    print(f"grid: {grid}")
    trials = grid_search(
        dataset, split, grid, base_config=base,
        inner_folds=args.inner_folds, seed=args.seed, verbose=True,
    )
    print("\nranking (inner-CV bi-class article accuracy):")
    for trial in trials:
        print(f"  {trial}")
    return 0


def _compat_serve_argv(argv: List[str]) -> List[str]:
    """Rewrite the pre-split ``repro serve MODEL ...`` form to ``serve batch``.

    ``repro serve`` grew ``http``/``batch`` sub-modes; the bare historical
    invocation keeps working (as ``batch``) with a deprecation notice.
    """
    if not argv or argv[0] != "serve" or len(argv) < 2:
        return argv
    mode = argv[1]
    if mode in ("http", "batch") or mode.startswith("-"):
        return argv
    print(
        "deprecated: bare `repro serve MODEL` is now `repro serve batch "
        "MODEL` (see also `repro serve http`)",
        file=sys.stderr,
    )
    return [argv[0], "batch", *argv[1:]]


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    if argv is None:
        argv = sys.argv[1:]
    args = parser.parse_args(_compat_serve_argv(list(argv)))
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
