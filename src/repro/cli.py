"""Command-line interface: ``python -m repro <command>``.

Commands
--------
generate   write a synthetic PolitiFact-like corpus to JSON lines
analyze    print Table 1 + Figure 1 for a corpus (file or synthetic)
train      train FakeDetector on a corpus and report held-out metrics
evaluate   run the Figure 4/5 θ-sweep over the comparison methods
tune       grid-search FakeDetector hyperparameters with inner CV
report     write the complete reproduction artifact set to a directory
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core import FakeDetector, FakeDetectorConfig
from .data import generate_dataset, load_dataset, save_dataset
from .data.schema import NewsDataset
from .graph.sampling import tri_splits
from .metrics import BinaryMetrics, MultiClassMetrics


def _load_or_generate(args) -> NewsDataset:
    if args.dataset:
        return load_dataset(args.dataset)
    return generate_dataset(scale=args.scale, seed=args.seed)


def _add_corpus_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", type=Path, default=None,
        help="JSON-lines corpus to load (default: generate synthetically)",
    )
    parser.add_argument("--scale", type=float, default=0.05,
                        help="synthetic corpus scale (1.0 = paper size)")
    parser.add_argument("--seed", type=int, default=7)


def cmd_generate(args) -> int:
    dataset = generate_dataset(scale=args.scale, seed=args.seed)
    save_dataset(dataset, args.output)
    print(
        f"wrote {dataset.num_articles} articles / {dataset.num_creators} "
        f"creators / {dataset.num_subjects} subjects to {args.output}"
    )
    return 0


def cmd_analyze(args) -> int:
    from .experiments import figure1, table1

    dataset = _load_or_generate(args)
    print(table1(dataset))
    print()
    print(figure1(dataset))
    return 0


def cmd_train(args) -> int:
    dataset = _load_or_generate(args)
    split = next(
        tri_splits(
            sorted(dataset.articles),
            sorted(dataset.creators),
            sorted(dataset.subjects),
            k=args.folds,
            seed=args.seed,
        )
    )
    config = FakeDetectorConfig(
        epochs=args.epochs,
        explicit_dim=args.explicit_dim,
        max_seq_len=args.max_seq_len,
        log_every=max(1, args.epochs // 5),
        seed=args.seed,
    )
    detector = FakeDetector(config).fit(dataset, split)
    if args.checkpoint:
        from .autograd import save_state

        save_state(detector.model, args.checkpoint)
        print(f"saved checkpoint to {args.checkpoint}")

    for kind, store, test_ids in (
        ("article", dataset.articles, split.articles.test),
        ("creator", dataset.creators, split.creators.test),
        ("subject", dataset.subjects, split.subjects.test),
    ):
        predictions = detector.predict(kind)
        labeled = [e for e in test_ids if store[e].label is not None]
        if not labeled:
            continue
        y_true = [store[e].label.class_index for e in labeled]
        y_pred = [predictions[e] for e in labeled]
        binary = BinaryMetrics.compute(
            [int(c >= 3) for c in y_true], [int(c >= 3) for c in y_pred]
        )
        multi = MultiClassMetrics.compute(y_true, y_pred)
        print(
            f"{kind:8s} bi-acc={binary.accuracy:.3f} bi-f1={binary.f1:.3f} "
            f"multi-acc={multi.accuracy:.3f} macro-f1={multi.macro_f1:.3f}"
        )
    return 0


def cmd_evaluate(args) -> int:
    from .experiments import (
        check_paper_claims,
        default_methods,
        figure4,
        figure5,
        render_claims,
        run_sweep,
    )

    dataset = _load_or_generate(args)
    methods = default_methods(fast=True, only=args.methods)
    thetas = tuple(float(t) for t in args.thetas.split(","))
    result = run_sweep(
        dataset, methods, thetas=thetas, folds=args.folds_run, seed=args.seed,
        verbose=True,
    )
    print(figure4(result))
    print()
    print(figure5(result))
    print()
    print(render_claims(check_paper_claims(result)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FakeDetector (ICDE 2020) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="write a synthetic corpus")
    p_gen.add_argument("output", type=Path)
    p_gen.add_argument("--scale", type=float, default=0.05)
    p_gen.add_argument("--seed", type=int, default=7)
    p_gen.set_defaults(func=cmd_generate)

    p_analyze = sub.add_parser("analyze", help="Table 1 + Figure 1 analyses")
    _add_corpus_args(p_analyze)
    p_analyze.set_defaults(func=cmd_analyze)

    p_train = sub.add_parser("train", help="train FakeDetector")
    _add_corpus_args(p_train)
    p_train.add_argument("--epochs", type=int, default=50)
    p_train.add_argument("--explicit-dim", type=int, default=100)
    p_train.add_argument("--max-seq-len", type=int, default=24)
    p_train.add_argument("--folds", type=int, default=10)
    p_train.add_argument("--checkpoint", type=Path, default=None)
    p_train.set_defaults(func=cmd_train)

    p_eval = sub.add_parser("evaluate", help="Figure 4/5 method sweep")
    _add_corpus_args(p_eval)
    p_eval.add_argument("--thetas", default="0.1,0.5,1.0")
    p_eval.add_argument("--folds-run", type=int, default=1)
    p_eval.add_argument(
        "--methods", nargs="*", default=None,
        help="subset of: FakeDetector lp deepwalk line svm rnn",
    )
    p_eval.set_defaults(func=cmd_evaluate)

    p_tune = sub.add_parser("tune", help="grid-search FakeDetector hyperparameters")
    _add_corpus_args(p_tune)
    p_tune.add_argument("--epochs", type=int, default=30)
    p_tune.add_argument("--inner-folds", type=int, default=3)
    p_tune.add_argument(
        "--grid", default="gdu_hidden=16,32;diffusion_iterations=1,2",
        help="semicolon-separated field=v1,v2 axes",
    )
    p_tune.set_defaults(func=cmd_tune)

    p_report = sub.add_parser(
        "report", help="write the full reproduction artifact set to a directory"
    )
    _add_corpus_args(p_report)
    p_report.add_argument("output", type=Path)
    p_report.add_argument("--thetas", default="0.1,0.5,1.0")
    p_report.add_argument("--folds-run", type=int, default=1)
    p_report.set_defaults(func=cmd_report)
    return parser


def cmd_report(args) -> int:
    from .experiments import generate_full_report

    dataset = _load_or_generate(args)
    thetas = tuple(float(t) for t in args.thetas.split(","))
    paths = generate_full_report(
        dataset, args.output, thetas=thetas, folds=args.folds_run,
        seed=args.seed, verbose=True,
    )
    print(paths.summary.read_text())
    print(f"artifacts written to {paths.directory}")
    return 0


def _parse_grid(spec: str) -> dict:
    """Parse 'a=1,2;b=0.5,1.0' into {a: [1, 2], b: [0.5, 1.0]}."""
    grid = {}
    for axis in spec.split(";"):
        axis = axis.strip()
        if not axis:
            continue
        if "=" not in axis:
            raise ValueError(f"malformed grid axis {axis!r} (expected field=v1,v2)")
        field, values = axis.split("=", 1)
        parsed = []
        for raw in values.split(","):
            raw = raw.strip()
            try:
                parsed.append(int(raw))
            except ValueError:
                try:
                    parsed.append(float(raw))
                except ValueError:
                    parsed.append(raw)
        grid[field.strip()] = parsed
    if not grid:
        raise ValueError("empty grid")
    return grid


def cmd_tune(args) -> int:
    from .core import FakeDetectorConfig
    from .experiments.tuning import grid_search

    dataset = _load_or_generate(args)
    split = next(
        tri_splits(
            sorted(dataset.articles),
            sorted(dataset.creators),
            sorted(dataset.subjects),
            k=10,
            seed=args.seed,
        )
    )
    base = FakeDetectorConfig(epochs=args.epochs, seed=args.seed)
    grid = _parse_grid(args.grid)
    print(f"grid: {grid}")
    trials = grid_search(
        dataset, split, grid, base_config=base,
        inner_folds=args.inner_folds, seed=args.seed, verbose=True,
    )
    print("\nranking (inner-CV bi-class article accuracy):")
    for trial in trials:
        print(f"  {trial}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
