"""FakeDetector core: HFLU, GDU, the deep diffusive network, and trainer."""

from .config import FakeDetectorConfig
from .gdu import GDU
from .hflu import HFLU
from .model import FakeDetectorModel
from .pipeline import (
    EntityFeatures,
    GraphIndex,
    PipelineOutput,
    build_features,
    build_graph_index,
)
from .predictions import Prediction, predictions_from_logits
from .self_training import SelfTrainingFakeDetector, SelfTrainingRound
from .trainer import FakeDetector, TrainingRecord

__all__ = [
    "FakeDetectorConfig",
    "HFLU",
    "GDU",
    "FakeDetectorModel",
    "FakeDetector",
    "TrainingRecord",
    "Prediction",
    "predictions_from_logits",
    "SelfTrainingFakeDetector",
    "SelfTrainingRound",
    "EntityFeatures",
    "PipelineOutput",
    "GraphIndex",
    "build_features",
    "build_graph_index",
]
