"""Neighbor aggregation strategies for the diffusive layer.

The paper pools neighbor states with a plain mean ("Mean" boxes in Figure
3(b)). :class:`AttentionAggregator` is an extension: a learnable per-edge
attention score decides how much each neighbor contributes, softmax-
normalized within each target node's neighborhood (GAT-style, single head).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Module, Parameter, Tensor, init
from ..autograd.sparse import gather_segment_mean, segment_sum


class MeanAggregator(Module):
    """The paper's aggregation: unweighted mean over neighbors."""

    def __init__(self, hidden_dim: int):
        super().__init__()
        self.hidden_dim = hidden_dim

    def forward(
        self,
        source: Tensor,
        gather_index: np.ndarray,
        segment_ids: np.ndarray,
        num_segments: int,
    ) -> Tensor:
        return gather_segment_mean(source, gather_index, segment_ids, num_segments)

    def __repr__(self):
        return f"MeanAggregator(dim={self.hidden_dim})"


class AttentionAggregator(Module):
    """Softmax-attention neighbor pooling.

    Per edge ``j`` gathering source row ``g_j`` into target segment ``s_j``:

        score_j  = a · tanh(source[g_j])
        weight_j = softmax over edges sharing s_j
        out[s]   = Σ_j weight_j · source[g_j]

    Empty segments produce zero rows, matching the mean aggregator.
    """

    def __init__(self, hidden_dim: int, rng: Optional[np.random.Generator] = None,
                 temperature: float = 1.0):
        super().__init__()
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        rng = rng or np.random.default_rng()  # repro: noqa[RA002] explicit opt-in randomness when no generator is supplied
        self.hidden_dim = hidden_dim
        self.temperature = temperature
        self.attn = Parameter(init.xavier_uniform((hidden_dim, 1), rng))

    def forward(
        self,
        source: Tensor,
        gather_index: np.ndarray,
        segment_ids: np.ndarray,
        num_segments: int,
    ) -> Tensor:
        gather_index = np.asarray(gather_index, dtype=np.intp)
        segment_ids = np.asarray(segment_ids, dtype=np.intp)
        if gather_index.size == 0:
            return Tensor(np.zeros((num_segments, source.shape[1])))
        gathered = source[gather_index]                     # (E, d)
        scores = (gathered.tanh() @ self.attn) * (1.0 / self.temperature)  # (E, 1)
        # Segment-stable softmax: shift by per-segment max (constant wrt grad).
        raw = scores.data[:, 0]
        seg_max = np.full(num_segments, -np.inf)
        np.maximum.at(seg_max, segment_ids, raw)
        shifted = scores - Tensor(seg_max[segment_ids][:, None])
        exp = shifted.exp()                                 # (E, 1)
        denom = segment_sum(exp, segment_ids, num_segments)  # (S, 1)
        weights = exp / denom[segment_ids]                   # (E, 1)
        weighted = gathered * weights                        # (E, d)
        return segment_sum(weighted, segment_ids, num_segments)

    def __repr__(self):
        return f"AttentionAggregator(dim={self.hidden_dim}, T={self.temperature})"


def make_aggregator(
    kind: str, hidden_dim: int, rng: Optional[np.random.Generator] = None
) -> Module:
    """Factory used by the model config (``aggregation='mean'|'attention'``)."""
    if kind == "mean":
        return MeanAggregator(hidden_dim)
    if kind == "attention":
        return AttentionAggregator(hidden_dim, rng=rng)
    raise ValueError(f"unknown aggregation {kind!r} (expected 'mean' or 'attention')")
