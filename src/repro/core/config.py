"""Configuration for the FakeDetector model and trainer."""

from __future__ import annotations

import dataclasses
from typing import Optional


@dataclasses.dataclass
class FakeDetectorConfig:
    """Hyperparameters of the full deep diffusive network.

    Defaults are sized for CPU-scale synthetic corpora (hundreds to a few
    thousand nodes); they preserve the architecture of the paper while
    keeping a pure-numpy training run in seconds-to-minutes.
    """

    # HFLU — explicit features (§4.1.1)
    explicit_dim: int = 120            # |W_n| = |W_u| = |W_s| = d
    word_selection: str = "chi2"       # 'chi2' or 'freq_ratio'
    explicit_weighting: str = "count"  # 'count' (paper) or 'tfidf'
    normalize_explicit: bool = True

    # HFLU — latent features (§4.1.2)
    vocab_size: int = 4000
    embed_dim: int = 16
    rnn_hidden: int = 24
    latent_dim: int = 16
    max_seq_len: int = 30
    rnn_cell: str = "gru"
    # Run the latent-branch recurrence AND the GDU diffusion layer through
    # the fused kernels (repro.autograd.kernels): one tape node per
    # sequence (gru/lstm_sequence) and one per GDU call (gdu_layer), each
    # with a hand-written backward, numerically equivalent to the unrolled
    # tape but several times faster (see docs/performance.md,
    # results/BENCH_training.json and results/BENCH_diffusion.json).
    # `repro train --no-fused` is the escape hatch back to the reference
    # path.
    fused_kernels: bool = True

    # GDU / diffusion (§4.2)
    gdu_hidden: int = 32
    diffusion_iterations: int = 2
    # Neighbor pooling: 'mean' (the paper's Figure 3(b)) or 'attention'
    # (GAT-style extension, see repro.core.aggregate).
    aggregation: str = "mean"

    # GDU ablation switches (full model keeps all True)
    use_forget_gate: bool = True
    use_adjust_gate: bool = True
    use_selection_gates: bool = True
    use_diffusion: bool = True
    use_explicit_features: bool = True
    use_latent_features: bool = True

    # Training (§4.3)
    epochs: int = 60
    # None = full-batch (the paper's setting). An int enables minibatch
    # training over induced article subgraphs (neighbor-sampling style),
    # which is how a full-scale corpus stays trainable on CPU.
    batch_size: Optional[int] = None
    learning_rate: float = 0.01
    alpha: float = 1e-3                # regularization weight α
    # Weight each class's loss by inverse training frequency (counters the
    # Truth-O-Meter imbalance; off by default to match the paper's plain
    # cross-entropy).
    class_weighted_loss: bool = False
    grad_clip: float = 5.0
    seed: int = 13
    log_every: int = 0                 # 0 disables progress printing
    early_stop_patience: int = 0       # 0 disables; else epochs without improvement
    early_stop_min_epochs: int = 0     # never stop before this many epochs
    # Fraction of *training* articles held out as a validation set. When > 0,
    # early stopping watches validation bi-class accuracy (instead of train
    # loss) and the best-scoring parameters are restored after fitting —
    # the standard guard against the overfitting the convergence benchmark
    # documents (results/convergence.txt).
    validation_fraction: float = 0.0

    def __post_init__(self):
        if self.explicit_dim <= 0 and self.use_explicit_features:
            raise ValueError("explicit_dim must be positive")
        if self.latent_dim <= 0 and self.use_latent_features:
            raise ValueError("latent_dim must be positive")
        if not (self.use_explicit_features or self.use_latent_features):
            raise ValueError("at least one HFLU feature family must be enabled")
        if self.diffusion_iterations < 0:
            raise ValueError("diffusion_iterations must be >= 0")
        if self.explicit_weighting not in ("count", "tfidf"):
            raise ValueError(
                f"explicit_weighting must be 'count' or 'tfidf', "
                f"got {self.explicit_weighting!r}"
            )
        if self.aggregation not in ("mean", "attention"):
            raise ValueError(
                f"aggregation must be 'mean' or 'attention', got {self.aggregation!r}"
            )
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.batch_size is not None and self.batch_size <= 0:
            raise ValueError("batch_size must be positive (or None for full batch)")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")
        if self.validation_fraction > 0 and self.early_stop_patience <= 0:
            raise ValueError(
                "validation_fraction requires early_stop_patience > 0"
            )
        if not 0 < self.learning_rate:
            raise ValueError("learning_rate must be positive")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")

    @property
    def feature_dim(self) -> int:
        """Dimension of the HFLU output x_i = [x_e ; x_l]."""
        dim = 0
        if self.use_explicit_features:
            dim += self.explicit_dim
        if self.use_latent_features:
            dim += self.latent_dim
        return dim
