"""Gated Diffusive Unit (GDU), paper §4.2 and Figure 3(b).

The GDU fuses three inputs — the node's own HFLU feature ``x_i`` and the
diffused neighbor states ``z_i`` (e.g. from subjects) and ``t_i`` (e.g. from
creators) — through four gates:

    forget gate   f_i = σ(W_f [xᵀ, zᵀ, tᵀ]ᵀ),   z̃_i = f_i ⊗ z_i
    adjust gate   e_i = σ(W_e [xᵀ, zᵀ, tᵀ]ᵀ),   t̃_i = e_i ⊗ t_i
    select gates  g_i = σ(W_g [·]), r_i = σ(W_r [·])

    h_i =   g⊗r⊗tanh(W_u[x, z̃, t̃]) ⊕ (1−g)⊗r⊗tanh(W_u[x, z, t̃])
          ⊕ g⊗(1−r)⊗tanh(W_u[x, z̃, t]) ⊕ (1−g)⊗(1−r)⊗tanh(W_u[x, z, t])

with a single shared candidate weight ``W_u`` across the four mixtures,
exactly as the paper writes it. Ablation switches can bypass each gate
family (used by the ablation benchmarks).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Module, Parameter, Tensor, concatenate, gdu_layer, init


class GDU(Module):
    """One gated diffusive unit for a node type.

    Parameters
    ----------
    input_dim:
        Dimension of the HFLU feature ``x_i``.
    hidden_dim:
        Dimension of the states ``z_i``, ``t_i`` and output ``h_i``.
    use_forget_gate / use_adjust_gate / use_selection_gates:
        Ablation switches. Disabling a gate replaces it with the identity
        (forget/adjust) or with the plain candidate ``tanh(W_u[x,z,t])``
        (selection).
    fused:
        Route :meth:`forward` through the single-tape-node
        :func:`repro.autograd.gdu_layer` kernel (the default, toggled
        model-wide by ``FakeDetectorConfig.fused_kernels``). Parameters,
        ``state_dict`` layout, and checkpoints are identical either way;
        outputs match the unrolled path to 1e-12.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: Optional[np.random.Generator] = None,
        use_forget_gate: bool = True,
        use_adjust_gate: bool = True,
        use_selection_gates: bool = True,
        fused: bool = True,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()  # repro: noqa[RA002] explicit opt-in randomness when no generator is supplied
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.use_forget_gate = use_forget_gate
        self.use_adjust_gate = use_adjust_gate
        self.use_selection_gates = use_selection_gates
        self.fused = fused

        concat_dim = input_dim + 2 * hidden_dim
        if use_forget_gate:
            self.w_f = Parameter(init.xavier_uniform((concat_dim, hidden_dim), rng))
            self.b_f = Parameter(init.zeros((hidden_dim,)))
        if use_adjust_gate:
            self.w_e = Parameter(init.xavier_uniform((concat_dim, hidden_dim), rng))
            self.b_e = Parameter(init.zeros((hidden_dim,)))
        if use_selection_gates:
            self.w_g = Parameter(init.xavier_uniform((concat_dim, hidden_dim), rng))
            self.b_g = Parameter(init.zeros((hidden_dim,)))
            self.w_r = Parameter(init.xavier_uniform((concat_dim, hidden_dim), rng))
            self.b_r = Parameter(init.zeros((hidden_dim,)))
        self.w_u = Parameter(init.xavier_uniform((concat_dim, hidden_dim), rng))
        self.b_u = Parameter(init.zeros((hidden_dim,)))

    def forward(self, x: Tensor, z: Tensor, t: Tensor) -> Tensor:
        """Compute h_i from (x_i, z_i, t_i); all inputs are (n, ·) batches."""
        if x.shape[0] != z.shape[0] or x.shape[0] != t.shape[0]:
            raise ValueError(
                f"batch mismatch: x={x.shape}, z={z.shape}, t={t.shape}"
            )
        if self.fused:
            return gdu_layer(
                x,
                z,
                t,
                self.w_u,
                self.b_u,
                forget=(self.w_f, self.b_f) if self.use_forget_gate else None,
                adjust=(self.w_e, self.b_e) if self.use_adjust_gate else None,
                select=(self.w_g, self.b_g, self.w_r, self.b_r)
                if self.use_selection_gates
                else None,
            )
        xzt = concatenate([x, z, t], axis=1)

        z_tilde = (xzt @ self.w_f + self.b_f).sigmoid() * z if self.use_forget_gate else z
        t_tilde = (xzt @ self.w_e + self.b_e).sigmoid() * t if self.use_adjust_gate else t

        def candidate(z_in: Tensor, t_in: Tensor) -> Tensor:
            return (concatenate([x, z_in, t_in], axis=1) @ self.w_u + self.b_u).tanh()

        if not self.use_selection_gates:
            return candidate(z_tilde, t_tilde)

        g = (xzt @ self.w_g + self.b_g).sigmoid()
        r = (xzt @ self.w_r + self.b_r).sigmoid()
        # ``1 - g`` routes through ``__rsub__`` against a scalar constant —
        # no per-call ones-tensor allocation (same shape-saving as the
        # GRUCell fix in PR 5).
        one_m_g = 1 - g
        one_m_r = 1 - r
        return (
            g * r * candidate(z_tilde, t_tilde)
            + one_m_g * r * candidate(z, t_tilde)
            + g * one_m_r * candidate(z_tilde, t)
            + one_m_g * one_m_r * candidate(z, t)
        )

    def zero_state(self, batch: int) -> Tensor:
        """The all-zero default input for an unused GDU port (§4.2)."""
        return Tensor(np.zeros((batch, self.hidden_dim)))
