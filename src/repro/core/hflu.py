"""Hybrid Feature Learning Unit (HFLU), paper §4.1 and Figure 3(a).

``x_i = [ (x^e_i)ᵀ , (x^l_i)ᵀ ]ᵀ`` — the concatenation of the fixed explicit
bag-of-words feature with the learned latent feature from a GRU over the
token sequence. The explicit half has no parameters; the latent half is the
:class:`repro.autograd.GRUEncoder` (input layer, GRU hidden layer, sigmoid
fusion layer — exactly the 3-layer structure of §4.1.2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import GRUEncoder, Module, Tensor, concatenate
from ..autograd.tensor import tape_enabled


class HFLU(Module):
    """Per-node-type hybrid feature extractor.

    Parameters
    ----------
    vocab_size, embed_dim, rnn_hidden, latent_dim, max_seq_len:
        Latent (GRU) branch dimensions.
    use_explicit / use_latent:
        Ablation switches; the full model keeps both (disabling one
        reproduces the paper's SVM-style or RNN-style feature family).
    fused:
        Route the recurrence through the fused sequence kernels
        (:mod:`repro.autograd.kernels`) instead of the unrolled tape.
    """

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int,
        rnn_hidden: int,
        latent_dim: int,
        rng: Optional[np.random.Generator] = None,
        use_explicit: bool = True,
        use_latent: bool = True,
        rnn_cell: str = "gru",
        fused: bool = True,
    ):
        super().__init__()
        if not (use_explicit or use_latent):
            raise ValueError("HFLU needs at least one feature family enabled")
        self.use_explicit = use_explicit
        self.use_latent = use_latent
        if use_latent:
            if rnn_cell == "cnn":
                from ..autograd.conv import CNNEncoder

                # Kim (2014)-style sentence CNN — the paper's reference [32]
                # for latent feature extraction.
                self.encoder = CNNEncoder(
                    vocab_size=vocab_size,
                    embed_dim=embed_dim,
                    num_filters=rnn_hidden,
                    output_size=latent_dim,
                    rng=rng,
                )
            else:
                self.encoder = GRUEncoder(
                    vocab_size=vocab_size,
                    embed_dim=embed_dim,
                    hidden_size=rnn_hidden,
                    output_size=latent_dim,
                    rng=rng,
                    cell=rnn_cell,
                    fused=fused,
                )
        else:
            self.encoder = None

    def forward(self, explicit: np.ndarray, sequences: np.ndarray) -> Tensor:
        """Fuse explicit count vectors with the GRU latent encoding.

        Parameters
        ----------
        explicit:
            (n, d) precomputed bag-of-words features (constant w.r.t. the
            graph; gradients do not flow into them).
        sequences:
            (n, q) padded token-index matrix.
        """
        parts = []
        if self.use_explicit:
            if isinstance(explicit, Tensor):
                # Pass through (keeps requires_grad inputs in the graph —
                # used by input-gradient saliency).
                parts.append(explicit)
            else:
                parts.append(Tensor(np.asarray(explicit, dtype=np.float64)))
        if self.use_latent:
            parts.append(self.encoder(sequences))
        if len(parts) == 1:
            return parts[0]
        if not tape_enabled():
            # Inference: same bytes as the taped concatenate, no split-grad
            # node (this is the hot seam of the per-request serving path).
            return Tensor(np.concatenate([p.data for p in parts], axis=1))
        return concatenate(parts, axis=1)
