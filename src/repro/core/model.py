"""The FakeDetector deep diffusive network, paper §4 and Figure 3(c).

One HFLU + one GDU per node *type* (weights shared across nodes of a type,
as in the paper's Figure 3(c) where every article cell is the same unit),
wired along the News-HSN edges:

- article GDU inputs: x = HFLU(article), z = mean of its subjects' states,
  t = its creator's state;
- creator GDU inputs: x = HFLU(creator), z = mean of its articles' states,
  t = 0 (unused port gets the zero default, §4.2);
- subject GDU inputs: x = HFLU(subject), z = mean of its articles' states,
  t = 0.

States are updated synchronously for ``diffusion_iterations`` rounds
starting from zeros, then projected to per-type softmax heads (§4.3).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..autograd import Linear, Module, Tensor

from ..data.schema import NUM_CLASSES
from .config import FakeDetectorConfig
from .gdu import GDU
from .hflu import HFLU
from .pipeline import GraphIndex, PipelineOutput


class FakeDetectorModel(Module):
    """End-to-end differentiable FakeDetector network.

    Parameters
    ----------
    config:
        Hyperparameters.
    explicit_dims:
        Actual explicit-feature width per node type (``{"article": d_n,
        "creator": d_u, "subject": d_s}``). Tiny corpora can yield fewer
        discriminative words than ``config.explicit_dim``, so the realized
        widths come from the feature pipeline. Defaults to
        ``config.explicit_dim`` for every type.
    """

    def __init__(
        self,
        config: FakeDetectorConfig,
        rng: Optional[np.random.Generator] = None,
        explicit_dims: Optional[Dict[str, int]] = None,
    ):
        super().__init__()
        self.config = config
        rng = rng or np.random.default_rng(config.seed)
        if explicit_dims is None:
            explicit_dims = {k: config.explicit_dim for k in ("article", "creator", "subject")}

        def make_hflu() -> HFLU:
            return HFLU(
                vocab_size=config.vocab_size + 2,  # +2 for pad/unk specials
                embed_dim=config.embed_dim,
                rnn_hidden=config.rnn_hidden,
                latent_dim=config.latent_dim,
                rng=rng,
                use_explicit=config.use_explicit_features,
                use_latent=config.use_latent_features,
                rnn_cell=config.rnn_cell,
                fused=config.fused_kernels,
            )

        def feature_dim(kind: str) -> int:
            dim = 0
            if config.use_explicit_features:
                dim += explicit_dims[kind]
            if config.use_latent_features:
                dim += config.latent_dim
            return dim

        def make_gdu(kind: str) -> GDU:
            return GDU(
                input_dim=feature_dim(kind),
                hidden_dim=config.gdu_hidden,
                rng=rng,
                use_forget_gate=config.use_forget_gate,
                use_adjust_gate=config.use_adjust_gate,
                use_selection_gates=config.use_selection_gates,
                fused=config.fused_kernels,
            )

        self.hflu_article = make_hflu()
        self.hflu_creator = make_hflu()
        self.hflu_subject = make_hflu()
        self.gdu_article = make_gdu("article")
        self.gdu_creator = make_gdu("creator")
        self.gdu_subject = make_gdu("subject")
        # Neighbor pooling (mean per the paper; attention as an extension),
        # one aggregator per edge direction so attention weights specialize.
        from .aggregate import make_aggregator

        self.agg_article_subjects = make_aggregator(
            config.aggregation, config.gdu_hidden, rng
        )
        self.agg_creator_articles = make_aggregator(
            config.aggregation, config.gdu_hidden, rng
        )
        self.agg_subject_articles = make_aggregator(
            config.aggregation, config.gdu_hidden, rng
        )
        self.head_article = Linear(config.gdu_hidden, NUM_CLASSES, rng=rng)
        self.head_creator = Linear(config.gdu_hidden, NUM_CLASSES, rng=rng)
        self.head_subject = Linear(config.gdu_hidden, NUM_CLASSES, rng=rng)

    # ------------------------------------------------------------------
    def forward(
        self, features: PipelineOutput, graph: GraphIndex
    ) -> Dict[str, Tensor]:
        """Full forward pass; returns logits per node type.

        Keys: ``"article"``, ``"creator"``, ``"subject"`` — each a
        (n_type, 6) logit tensor aligned with ``features.<type>.ids``.
        """
        logits, _ = self.forward_with_states(features, graph)
        return logits

    def forward_with_states(
        self, features: PipelineOutput, graph: GraphIndex
    ) -> tuple:
        """Forward pass that also returns the final GDU hidden states.

        The states feed inductive inference: a new article's GDU can be
        evaluated against the trained creator/subject states without
        re-running diffusion over the whole network.
        """
        x_n = self.hflu_article(features.articles.explicit, features.articles.sequences)
        x_u = self.hflu_creator(features.creators.explicit, features.creators.sequences)
        x_s = self.hflu_subject(features.subjects.explicit, features.subjects.sequences)
        states = self.diffuse(x_n, x_u, x_s, graph)
        logits = {
            "article": self.head_article(states["article"]),
            "creator": self.head_creator(states["creator"]),
            "subject": self.head_subject(states["subject"]),
        }
        return logits, states

    def diffuse(self, x_n: Tensor, x_u: Tensor, x_s: Tensor, graph: GraphIndex) -> Dict[str, Tensor]:
        """Run the GDU message-passing rounds from given HFLU features.

        Exposed separately so callers that need differentiable *inputs*
        (input-gradient saliency) or custom features can reuse the exact
        diffusion the trainer uses.
        """
        n_articles, n_creators, n_subjects = x_n.shape[0], x_u.shape[0], x_s.shape[0]
        h_n = self.gdu_article.zero_state(n_articles)
        h_u = self.gdu_creator.zero_state(n_creators)
        h_s = self.gdu_subject.zero_state(n_subjects)

        rounds = max(1, self.config.diffusion_iterations)
        for rnd in range(rounds):
            # Round 1 aggregates the all-zero initial states: both pooling
            # strategies map zero neighbors to exact zeros with zero
            # parameter-gradient contribution, so the gather/segment work
            # is provably dead and the zero defaults are used directly.
            if self.config.use_diffusion and rnd > 0:
                z_n = self.agg_article_subjects(
                    h_s, graph.article_subject_gather, graph.article_subject_segment, n_articles
                )
                t_n = h_u[graph.article_creator]
                z_u = self.agg_creator_articles(
                    h_n, graph.creator_article_gather, graph.creator_article_segment, n_creators
                )
                z_s = self.agg_subject_articles(
                    h_n, graph.subject_article_gather, graph.subject_article_segment, n_subjects
                )
            else:
                z_n = self.gdu_article.zero_state(n_articles)
                t_n = self.gdu_article.zero_state(n_articles)
                z_u = self.gdu_creator.zero_state(n_creators)
                z_s = self.gdu_subject.zero_state(n_subjects)
            t_u = self.gdu_creator.zero_state(n_creators)
            t_s = self.gdu_subject.zero_state(n_subjects)

            h_n = self.gdu_article(x_n, z_n, t_n)
            h_u = self.gdu_creator(x_u, z_u, t_u)
            h_s = self.gdu_subject(x_s, z_s, t_s)

        return {"article": h_n, "creator": h_u, "subject": h_s}
