"""Feature pipeline: from a NewsDataset to model-ready arrays.

Shared by FakeDetector and the text baselines so every method sees identical
inputs. The pipeline is *transductive* in the paper's sense: all node text
is visible (the network is given), but the discriminative word sets and all
label supervision come from the training split only.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.schema import NewsDataset
from ..obs import trace
from ..text.features import BagOfWordsExtractor
from ..text.sequences import encode_batch
from ..text.tokenizer import tokenize
from ..text.vocabulary import Vocabulary


@dataclasses.dataclass
class EntityFeatures:
    """Per-node-type arrays, aligned with ``ids``."""

    ids: List[str]
    index: Dict[str, int]              # id -> row
    explicit: np.ndarray               # (n, d) bag-of-words counts
    sequences: np.ndarray              # (n, q) padded token indices
    labels: np.ndarray                 # (n,) class indices 0..5 (-1 = unknown)

    @property
    def num(self) -> int:
        return len(self.ids)

    def rows(self, entity_ids: Sequence[str]) -> np.ndarray:
        """Row indices for a list of entity ids."""
        return np.asarray([self.index[eid] for eid in entity_ids], dtype=np.intp)


@dataclasses.dataclass
class PipelineOutput:
    """Everything the models consume."""

    articles: EntityFeatures
    creators: EntityFeatures
    subjects: EntityFeatures
    vocab: Vocabulary
    extractors: Dict[str, BagOfWordsExtractor]

    def by_type(self, kind: str) -> EntityFeatures:
        try:
            return {"article": self.articles, "creator": self.creators, "subject": self.subjects}[kind]
        except KeyError:
            raise ValueError(f"unknown entity kind {kind!r}") from None


def build_features(
    dataset: NewsDataset,
    train_article_ids: Sequence[str],
    train_creator_ids: Sequence[str],
    train_subject_ids: Sequence[str],
    explicit_dim: int = 120,
    vocab_size: int = 4000,
    max_seq_len: int = 30,
    word_selection: str = "chi2",
    normalize_explicit: bool = True,
    explicit_weighting: str = "count",
) -> PipelineOutput:
    """Tokenize every entity, fit word sets on the training split, encode.

    Word sets W_n, W_u, W_s are selected independently per entity type from
    that type's *training* labels (§4.1.1); the shared vocabulary for the
    latent RNN is built from all text (the text of test nodes is part of the
    given network, only their labels are hidden).
    """
    span = trace(
        "pipeline.build_features",
        articles=len(dataset.articles),
        creators=len(dataset.creators),
        subjects=len(dataset.subjects),
    )
    with span:
        return _build_features_traced(
            dataset,
            train_article_ids,
            train_creator_ids,
            train_subject_ids,
            explicit_dim,
            vocab_size,
            max_seq_len,
            word_selection,
            normalize_explicit,
            explicit_weighting,
            span,
        )


def _build_features_traced(
    dataset,
    train_article_ids,
    train_creator_ids,
    train_subject_ids,
    explicit_dim,
    vocab_size,
    max_seq_len,
    word_selection,
    normalize_explicit,
    explicit_weighting,
    span,
) -> PipelineOutput:
    article_ids = sorted(dataset.articles)
    creator_ids = sorted(dataset.creators)
    subject_ids = sorted(dataset.subjects)

    with trace("pipeline.tokenize"):
        article_tokens = [tokenize(dataset.articles[a].text) for a in article_ids]
        creator_tokens = [tokenize(dataset.creators[c].profile) for c in creator_ids]
        subject_tokens = [
            tokenize(dataset.subjects[s].description) for s in subject_ids
        ]

    with trace("pipeline.vocabulary"):
        vocab = Vocabulary.build(
            article_tokens + creator_tokens + subject_tokens,
            max_size=vocab_size,
            min_count=1,
        )
    span.set(vocab_size=len(vocab))

    def entity_features(
        ids: List[str],
        tokens: List[List[str]],
        labels_by_id: Dict[str, Optional[int]],
        train_ids: Sequence[str],
    ) -> EntityFeatures:
        index = {eid: i for i, eid in enumerate(ids)}
        labels = np.full(len(ids), -1, dtype=np.int64)
        for eid, label in labels_by_id.items():
            if label is not None:
                labels[index[eid]] = label
        train_rows = [index[eid] for eid in train_ids if labels[index[eid]] >= 0]
        train_docs = [tokens[r] for r in train_rows]
        train_labels = [int(labels[r]) for r in train_rows]
        extractor = BagOfWordsExtractor.fit(
            train_docs,
            train_labels,
            size=explicit_dim,
            method=word_selection,
            normalize=normalize_explicit,
            min_count=2,
            weighting=explicit_weighting,
        )
        return EntityFeatures(
            ids=ids,
            index=index,
            explicit=extractor.transform(tokens),
            sequences=encode_batch(tokens, vocab, max_seq_len),
            labels=labels,
        ), extractor

    article_labels = {
        a: dataset.articles[a].label.class_index for a in article_ids
    }
    creator_labels = {
        c: (dataset.creators[c].label.class_index if dataset.creators[c].label else None)
        for c in creator_ids
    }
    subject_labels = {
        s: (dataset.subjects[s].label.class_index if dataset.subjects[s].label else None)
        for s in subject_ids
    }

    with trace("pipeline.encode", kind="article"):
        articles, article_extractor = entity_features(
            article_ids, article_tokens, article_labels, train_article_ids
        )
    with trace("pipeline.encode", kind="creator"):
        creators, creator_extractor = entity_features(
            creator_ids, creator_tokens, creator_labels, train_creator_ids
        )
    with trace("pipeline.encode", kind="subject"):
        subjects, subject_extractor = entity_features(
            subject_ids, subject_tokens, subject_labels, train_subject_ids
        )

    return PipelineOutput(
        articles=articles,
        creators=creators,
        subjects=subjects,
        vocab=vocab,
        extractors={
            "article": article_extractor,
            "creator": creator_extractor,
            "subject": subject_extractor,
        },
    )


@dataclasses.dataclass
class GraphIndex:
    """Edge lists in row-index space, consumed by the diffusion layer.

    ``article_creator[i]`` is the creator row of article row ``i``. The
    flattened (gather, segment) pairs drive
    :func:`repro.autograd.sparse.gather_segment_mean`.
    """

    article_creator: np.ndarray                 # (n_articles,)
    article_subject_gather: np.ndarray          # (n_links,) subject rows
    article_subject_segment: np.ndarray         # (n_links,) article rows
    creator_article_gather: np.ndarray          # (n_articles,) article rows
    creator_article_segment: np.ndarray         # (n_articles,) creator rows
    subject_article_gather: np.ndarray          # (n_links,) article rows
    subject_article_segment: np.ndarray         # (n_links,) subject rows


def subgraph_view(
    features: PipelineOutput,
    graph: GraphIndex,
    article_rows: np.ndarray,
) -> tuple:
    """Induced subgraph over a batch of article rows, for minibatch training.

    The sub-network contains the chosen articles, their creators and their
    subjects, with all edges among them. Creator/subject GDUs then aggregate
    only the batch's articles — the standard neighbor-sampling approximation.

    Returns ``(sub_features, sub_graph)`` where ``sub_features`` is a
    :class:`PipelineOutput` whose arrays are row-slices of the full ones.
    """
    article_rows = np.asarray(article_rows, dtype=np.intp)
    if article_rows.size == 0:
        raise ValueError("subgraph requires at least one article row")
    if article_rows.size != np.unique(article_rows).size:
        raise ValueError("duplicate article rows in batch")

    creator_rows = np.unique(graph.article_creator[article_rows])
    edge_mask = np.isin(graph.article_subject_segment, article_rows)
    subject_rows = np.unique(graph.article_subject_gather[edge_mask])
    if subject_rows.size == 0:
        # Degenerate but possible in tests with hand-built graphs.
        subject_rows = np.array([0], dtype=np.intp)

    def slice_entity(entity: EntityFeatures, rows: np.ndarray) -> EntityFeatures:
        ids = [entity.ids[r] for r in rows]
        return EntityFeatures(
            ids=ids,
            index={eid: i for i, eid in enumerate(ids)},
            explicit=entity.explicit[rows],
            sequences=entity.sequences[rows],
            labels=entity.labels[rows],
        )

    sub_features = PipelineOutput(
        articles=slice_entity(features.articles, article_rows),
        creators=slice_entity(features.creators, creator_rows),
        subjects=slice_entity(features.subjects, subject_rows),
        vocab=features.vocab,
        extractors=features.extractors,
    )

    # Remap global row ids to subgraph-local positions. ``creator_rows`` and
    # ``subject_rows`` are sorted (np.unique), so searchsorted IS the local
    # index; ``article_rows`` keeps the caller's batch order, so compose the
    # sorted lookup with the inverse permutation.
    sub_article_creator = np.searchsorted(
        creator_rows, graph.article_creator[article_rows]
    ).astype(np.intp)
    as_gather = np.searchsorted(
        subject_rows, graph.article_subject_gather[edge_mask]
    ).astype(np.intp)
    article_order = np.argsort(article_rows, kind="stable")
    as_segment = article_order[
        np.searchsorted(
            article_rows[article_order], graph.article_subject_segment[edge_mask]
        )
    ].astype(np.intp)
    local_article_rows = np.arange(article_rows.size, dtype=np.intp)
    sub_graph = GraphIndex(
        article_creator=sub_article_creator,
        article_subject_gather=as_gather,
        article_subject_segment=as_segment,
        creator_article_gather=local_article_rows,
        creator_article_segment=sub_article_creator.copy(),
        subject_article_gather=as_segment.copy(),
        subject_article_segment=as_gather.copy(),
    )
    return sub_features, sub_graph


def build_graph_index(dataset: NewsDataset, features: PipelineOutput) -> GraphIndex:
    """Translate entity-id links into aligned row-index edge arrays."""
    with trace("pipeline.build_graph_index", articles=features.articles.num):
        return _build_graph_index(dataset, features)


def _build_graph_index(dataset: NewsDataset, features: PipelineOutput) -> GraphIndex:
    a_index = features.articles.index
    c_index = features.creators.index
    s_index = features.subjects.index

    n_articles = features.articles.num
    article_creator = np.zeros(n_articles, dtype=np.intp)
    as_gather: List[int] = []
    as_segment: List[int] = []
    for article_id, article in dataset.articles.items():
        row = a_index[article_id]
        article_creator[row] = c_index[article.creator_id]
        for subject_id in article.subject_ids:
            as_gather.append(s_index[subject_id])
            as_segment.append(row)

    article_rows = np.arange(n_articles, dtype=np.intp)
    return GraphIndex(
        article_creator=article_creator,
        article_subject_gather=np.asarray(as_gather, dtype=np.intp),
        article_subject_segment=np.asarray(as_segment, dtype=np.intp),
        creator_article_gather=article_rows,
        creator_article_segment=article_creator.copy(),
        subject_article_gather=np.asarray(as_segment, dtype=np.intp),
        subject_article_segment=np.asarray(as_gather, dtype=np.intp),
    )
