"""The unified prediction record shared by training-time and serving-time APIs.

Every prediction path — transductive :meth:`FakeDetector.predict`, inductive
:meth:`FakeDetector.predict_new_articles`, and the long-lived
:class:`repro.serve.InferenceSession` — funnels through
:func:`predictions_from_logits`, so class decisions and probability numerics
can never drift between the trainer and the server.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from ..autograd import Tensor
from ..autograd import functional as F
from ..data.schema import CredibilityLabel


@dataclasses.dataclass
class Prediction:
    """One scored entity.

    Attributes
    ----------
    entity_id:
        The article/creator/subject id the score belongs to.
    class_index:
        Argmax class, 0 (Pants on Fire!) .. 5 (True).
    label:
        The same decision as a :class:`CredibilityLabel`.
    proba:
        Softmax distribution over the 6 classes, or ``None`` when the
        caller did not request probabilities.
    """

    entity_id: str
    class_index: int
    label: CredibilityLabel
    proba: Optional[np.ndarray] = None

    @property
    def is_credible(self) -> bool:
        """Paper's bi-class grouping of the predicted label."""
        return self.label.is_true_class

    def to_dict(self) -> dict:
        """JSON-serializable form (used by the serving CLI)."""
        payload = {
            "entity_id": self.entity_id,
            "class_index": self.class_index,
            "label": self.label.display_name,
        }
        if self.proba is not None:
            payload["proba"] = [float(p) for p in self.proba]
        return payload


def predictions_from_logits(
    ids: Sequence[str],
    logits: np.ndarray,
    *,
    return_proba: bool = False,
) -> List[Prediction]:
    """Turn an aligned (n, 6) logit matrix into :class:`Prediction` records.

    Probabilities come from the autograd :func:`repro.autograd.functional
    .softmax` so they match training-time cross-entropy numerics exactly.
    """
    logits = np.asarray(logits)
    if logits.ndim != 2 or logits.shape[0] != len(ids):
        raise ValueError(
            f"logits shape {logits.shape} does not align with {len(ids)} ids"
        )
    classes = logits.argmax(axis=1)
    probs = F.softmax(Tensor(logits)).data if return_proba else None
    return [
        Prediction(
            entity_id=eid,
            class_index=int(classes[i]),
            label=CredibilityLabel.from_class_index(int(classes[i])),
            proba=probs[i].copy() if probs is not None else None,
        )
        for i, eid in enumerate(ids)
    ]
