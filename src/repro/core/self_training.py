"""Self-training extension: pseudo-labels for the low-supervision regime.

The paper's θ-sweep studies label scarcity; classic transductive
self-training attacks it directly: train, pseudo-label the unlabeled
articles the model is most confident about, retrain with them, repeat.
True labels of non-training nodes are never read — pseudo-labels come from
the model's own predictions.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from ..data.schema import Article, CredibilityLabel, NewsDataset
from ..graph.sampling import Split, TriSplit
from .config import FakeDetectorConfig
from .trainer import FakeDetector


@dataclasses.dataclass
class SelfTrainingRound:
    """Bookkeeping for one pseudo-labeling round."""

    added: int
    threshold: float
    train_size: int


class SelfTrainingFakeDetector:
    """FakeDetector wrapped in confidence-thresholded self-training.

    Parameters
    ----------
    config:
        Base model configuration (reused for every round).
    rounds:
        Maximum pseudo-labeling rounds after the initial fit.
    confidence:
        Minimum top-class probability for an article to be pseudo-labeled.
    max_added_per_round:
        Cap on new pseudo-labels per round (take the most confident first),
        which keeps early, possibly-wrong labels from flooding the train set.
    """

    def __init__(
        self,
        config: Optional[FakeDetectorConfig] = None,
        rounds: int = 2,
        confidence: float = 0.9,
        max_added_per_round: Optional[int] = None,
    ):
        if rounds < 0:
            raise ValueError("rounds must be >= 0")
        if not 0.5 <= confidence <= 1.0:
            raise ValueError("confidence must be in [0.5, 1.0]")
        self.config = config or FakeDetectorConfig()
        self.rounds = rounds
        self.confidence = confidence
        self.max_added_per_round = max_added_per_round
        self.detector: Optional[FakeDetector] = None
        self.history: list[SelfTrainingRound] = []

    # ------------------------------------------------------------------
    def fit(self, dataset: NewsDataset, split: TriSplit) -> "SelfTrainingFakeDetector":
        self.history = []
        self.detector = FakeDetector(self.config).fit(dataset, split)
        train_ids = list(split.articles.train)
        train_set = set(train_ids)
        pseudo_labels: Dict[str, int] = {}

        for _ in range(self.rounds):
            probabilities = self.detector.predict_proba("article")
            candidates = []
            for aid, probs in probabilities.items():
                if aid in train_set or aid in pseudo_labels:
                    continue
                top = int(np.argmax(probs))
                conf = float(probs[top])
                if conf >= self.confidence:
                    candidates.append((conf, aid, top))
            candidates.sort(reverse=True)
            if self.max_added_per_round is not None:
                candidates = candidates[: self.max_added_per_round]
            if not candidates:
                break
            for _, aid, label in candidates:
                pseudo_labels[aid] = label

            augmented_dataset = self._with_pseudo_labels(dataset, pseudo_labels)
            augmented_split = TriSplit(
                articles=Split(
                    train=train_ids + sorted(pseudo_labels),
                    test=list(split.articles.test),
                ),
                creators=split.creators,
                subjects=split.subjects,
            )
            self.detector = FakeDetector(self.config).fit(
                augmented_dataset, augmented_split
            )
            self.history.append(
                SelfTrainingRound(
                    added=len(candidates),
                    threshold=self.confidence,
                    train_size=len(train_ids) + len(pseudo_labels),
                )
            )
        return self

    @staticmethod
    def _with_pseudo_labels(
        dataset: NewsDataset, pseudo_labels: Dict[str, int]
    ) -> NewsDataset:
        """Shallow corpus copy with pseudo-labeled article objects swapped in.

        Creators/subjects are shared (their ground truth is untouched); only
        the pseudo-labeled article entries are replaced, so the true labels
        of those articles never reach the trainer.
        """
        clone = NewsDataset(
            articles=dict(dataset.articles),
            creators=dataset.creators,
            subjects=dataset.subjects,
        )
        for aid, label in pseudo_labels.items():
            original = dataset.articles[aid]
            clone.articles[aid] = Article(
                article_id=original.article_id,
                text=original.text,
                label=CredibilityLabel.from_class_index(label),
                creator_id=original.creator_id,
                subject_ids=list(original.subject_ids),
            )
        return clone

    # ------------------------------------------------------------------
    def predict(self, kind: str) -> Dict[str, int]:
        if self.detector is None:
            raise RuntimeError("fit() must be called first")
        return self.detector.predict(kind)

    def predict_proba(self, kind: str):
        if self.detector is None:
            raise RuntimeError("fit() must be called first")
        return self.detector.predict_proba(kind)

    @property
    def num_pseudo_labels(self) -> int:
        return self.history[-1].train_size - (
            self.history[0].train_size - self.history[0].added
        ) if self.history else 0
