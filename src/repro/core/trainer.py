"""Training and inference for FakeDetector (paper §4.3).

The objective is the paper's joint loss

    min_W  L(T_n) + L(T_u) + L(T_s) + α · L_reg(W)

optimized full-batch with backpropagation (Adam + gradient clipping). The
trainer owns the feature pipeline so ``fit``/``predict`` operate directly on
a :class:`NewsDataset` and a :class:`TriSplit`.
"""

from __future__ import annotations

import dataclasses
import math
from time import perf_counter
from typing import Dict, List, Optional

import numpy as np

from ..autograd import functional as F
from ..autograd import optim
from ..data.schema import NewsDataset
from ..graph.sampling import TriSplit
from ..obs import get_logger, get_registry, trace
from .config import FakeDetectorConfig
from .model import FakeDetectorModel
from .pipeline import GraphIndex, PipelineOutput, build_features, build_graph_index
from .predictions import Prediction, predictions_from_logits


@dataclasses.dataclass
class TrainingRecord:
    """Loss trajectory of one fit() call.

    Alongside the paper's per-kind loss curves this keeps the operational
    trajectory — per-epoch wall time and pre-clip gradient norm — so a run
    is diagnosable after the fact without re-training (and the convergence
    figures can be annotated with cost).
    """

    total: List[float] = dataclasses.field(default_factory=list)
    article: List[float] = dataclasses.field(default_factory=list)
    creator: List[float] = dataclasses.field(default_factory=list)
    subject: List[float] = dataclasses.field(default_factory=list)
    #: per-epoch validation bi-class article accuracy (only populated when
    #: FakeDetectorConfig.validation_fraction > 0)
    validation: List[float] = dataclasses.field(default_factory=list)
    #: per-epoch wall-clock seconds
    epoch_seconds: List[float] = dataclasses.field(default_factory=list)
    #: per-epoch global gradient L2 norm before clipping (mean over
    #: minibatch steps when batch_size is set)
    grad_norms: List[float] = dataclasses.field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.total[-1] if self.total else float("nan")

    @property
    def total_seconds(self) -> float:
        return sum(self.epoch_seconds)

    def per_kind(self, epoch: int) -> Dict[str, float]:
        """The three per-kind losses of one (0-based) epoch."""
        return {
            "article": self.article[epoch],
            "creator": self.creator[epoch],
            "subject": self.subject[epoch],
        }

    def to_dict(self) -> Dict[str, List[float]]:
        """JSON-ready form: every per-epoch series plus summary scalars.

        This is the payload :class:`repro.obs.RunRecord` stores under
        ``series``, so a persisted run can be diffed and re-plotted without
        re-training.
        """
        return {
            "total": list(self.total),
            "article": list(self.article),
            "creator": list(self.creator),
            "subject": list(self.subject),
            "validation": list(self.validation),
            "epoch_seconds": list(self.epoch_seconds),
            "grad_norms": list(self.grad_norms),
        }


class FakeDetector:
    """High-level estimator: fit on a split, predict credibility labels.

    This is the public entry point of the reproduction::

        detector = FakeDetector(FakeDetectorConfig(epochs=40))
        detector.fit(dataset, split)
        predictions = detector.predict("article")   # {article_id: class_index}
    """

    def __init__(self, config: Optional[FakeDetectorConfig] = None):
        self.config = config or FakeDetectorConfig()
        self.model: Optional[FakeDetectorModel] = None
        self.features: Optional[PipelineOutput] = None
        self.graph: Optional[GraphIndex] = None
        self.record = TrainingRecord()
        self._session = None  # lazily-built repro.serve.InferenceSession
        self._sanitizer = None  # active repro.analysis Sanitizer during fit
        self.sanitizer_stats = None  # counters from the last sanitized fit

    # ------------------------------------------------------------------
    def fit(
        self, dataset: NewsDataset, split: TriSplit, sanitize: bool = False
    ) -> "FakeDetector":
        """Train on the split's training ids; test labels are never read.

        With ``sanitize=True`` every tape op runs under the
        :class:`repro.analysis.Sanitizer` — NaN/Inf guards on forward
        outputs and backward gradients, plus in-place-mutation checksums on
        arrays captured by backward closures — and a dead-parameter audit
        is logged after the first epoch. The sanitizer is read-only, so
        losses are bit-identical with or without it.
        """
        config = self.config
        rng = np.random.default_rng(config.seed)
        self.features = build_features(
            dataset,
            split.articles.train,
            split.creators.train,
            split.subjects.train,
            explicit_dim=config.explicit_dim,
            vocab_size=config.vocab_size,
            max_seq_len=config.max_seq_len,
            word_selection=config.word_selection,
            normalize_explicit=config.normalize_explicit,
            explicit_weighting=config.explicit_weighting,
        )
        self.graph = build_graph_index(dataset, self.features)
        explicit_dims = {
            "article": self.features.articles.explicit.shape[1],
            "creator": self.features.creators.explicit.shape[1],
            "subject": self.features.subjects.explicit.shape[1],
        }
        self.model = FakeDetectorModel(config, rng=rng, explicit_dims=explicit_dims)

        train_rows = {
            "article": self._labeled_rows(self.features.articles, split.articles.train),
            "creator": self._labeled_rows(self.features.creators, split.creators.train),
            "subject": self._labeled_rows(self.features.subjects, split.subjects.train),
        }
        validation_rows = np.array([], dtype=np.intp)
        if config.validation_fraction > 0:
            articles = train_rows["article"]
            k = max(1, int(round(config.validation_fraction * articles.size)))
            if k >= articles.size:
                raise ValueError("validation split would consume the whole train set")
            chosen = rng.choice(articles.size, size=k, replace=False)
            mask = np.zeros(articles.size, dtype=bool)
            mask[chosen] = True
            validation_rows = articles[mask]
            train_rows = dict(train_rows)
            train_rows["article"] = articles[~mask]

        params = list(self.model.parameters())
        optimizer = optim.Adam(params, lr=config.learning_rate)
        self.record = TrainingRecord()
        logger = get_logger("train")

        if sanitize:
            from ..analysis.sanitize import Sanitizer

            self._sanitizer = Sanitizer()
            self._sanitizer.start()
        try:
            self._fit_loop(config, train_rows, validation_rows, params,
                           optimizer, rng, logger)
        finally:
            if self._sanitizer is not None:
                stats = self._sanitizer.stats
                self._sanitizer.stop()
                self._sanitizer = None
                self.sanitizer_stats = stats.to_dict()
                logger.info("sanitizer", **self.sanitizer_stats)
        self._session = None  # cached serve state is stale after refitting
        return self

    def _fit_loop(
        self, config, train_rows, validation_rows, params, optimizer, rng, logger
    ) -> None:
        """The epoch loop of :meth:`fit` (split out so the sanitizer wraps it)."""
        best_score = -float("inf")  # watched quantity, higher = better
        best_state = None
        stale = 0
        registry = get_registry()
        with trace(
            "fit",
            epochs=config.epochs,
            batch_size=config.batch_size,
            train_articles=int(train_rows["article"].size),
        ) as fit_span:
            for epoch in range(config.epochs):
                epoch_start = perf_counter()
                with trace("epoch", epoch=epoch + 1) as span:
                    self.model.train()
                    if config.batch_size is None:
                        losses, stats = self._full_batch_step(
                            train_rows, params, optimizer
                        )
                    else:
                        losses, stats = self._minibatch_epoch(
                            train_rows, params, optimizer, rng
                        )

                    seconds = perf_counter() - epoch_start
                    self.record.total.append(losses["total"])
                    self.record.article.append(losses.get("article", 0.0))
                    self.record.creator.append(losses.get("creator", 0.0))
                    self.record.subject.append(losses.get("subject", 0.0))
                    self.record.epoch_seconds.append(seconds)
                    self.record.grad_norms.append(stats["grad_norm"])
                    # Publish the epoch to the global registry so a live
                    # exporter (PeriodicExporter / MetricsServer) can scrape
                    # training progress while fit() runs.
                    registry.counter("train.epochs").inc()
                    registry.gauge("train.loss").set(losses["total"])
                    registry.gauge("train.grad_norm").set(stats["grad_norm"])
                    registry.histogram("train.epoch_seconds").observe(seconds)
                    span.set(
                        loss_total=losses["total"],
                        loss_article=losses.get("article", 0.0),
                        loss_creator=losses.get("creator", 0.0),
                        loss_subject=losses.get("subject", 0.0),
                        grad_norm=stats["grad_norm"],
                        steps=stats["steps"],
                        seconds=seconds,
                    )
                    if config.log_every and (epoch + 1) % config.log_every == 0:
                        logger.info(
                            "epoch",
                            epoch=epoch + 1,
                            loss=losses["total"],
                            loss_article=losses.get("article", 0.0),
                            loss_creator=losses.get("creator", 0.0),
                            loss_subject=losses.get("subject", 0.0),
                            grad_norm=stats["grad_norm"],
                            seconds=seconds,
                        )

                    if self._sanitizer is not None and epoch == 0:
                        for dead in self._audit_dead_parameters():
                            logger.warning(
                                "dead_parameter",
                                parameter=dead.name,
                                shape=str(dead.shape),
                                reason=dead.reason,
                            )

                    if config.early_stop_patience:
                        if validation_rows.size:
                            score = self._validation_accuracy(validation_rows)
                            self.record.validation.append(score)
                            span.set(validation_accuracy=score)
                        else:
                            score = -self.record.total[-1]
                        if score > best_score + 1e-5:
                            best_score = score
                            stale = 0
                            if validation_rows.size:
                                best_state = self.model.state_dict()
                        else:
                            stale += 1
                            if (
                                stale >= config.early_stop_patience
                                and epoch + 1 >= config.early_stop_min_epochs
                            ):
                                logger.debug(
                                    "early_stop", epoch=epoch + 1, best=best_score
                                )
                                break
            fit_span.set(
                epochs_run=len(self.record.total),
                final_loss=self.record.final_loss,
                total_seconds=self.record.total_seconds,
            )
        if best_state is not None:
            self.model.load_state_dict(best_state)

    def _audit_dead_parameters(self):
        """Dead-parameter audit on the grads of the step just taken."""
        from ..analysis.sanitize import audit_parameters

        return audit_parameters(self.model.named_parameters())

    def _validation_accuracy(self, validation_rows: np.ndarray) -> float:
        """Bi-class article accuracy on the held-out validation rows."""
        self.model.eval()
        logits = self.model(self.features, self.graph)["article"].data
        predictions = logits[validation_rows].argmax(axis=1)
        truth = self.features.articles.labels[validation_rows]
        return float(((predictions >= 3) == (truth >= 3)).mean())

    # ------------------------------------------------------------------
    def _joint_loss(self, logits, features: PipelineOutput, rows_by_kind, params):
        """L(T_n) + L(T_u) + L(T_s) + α·L_reg over the given label rows."""
        from ..data.schema import NUM_CLASSES

        config = self.config
        losses = {}
        total = None
        for kind, ent in (
            ("article", features.articles),
            ("creator", features.creators),
            ("subject", features.subjects),
        ):
            rows = rows_by_kind[kind]
            if rows.size == 0:
                losses[kind] = 0.0
                continue
            class_weights = None
            if config.class_weighted_loss:
                class_weights = F.inverse_frequency_weights(
                    ent.labels[rows], NUM_CLASSES
                )
            loss = F.cross_entropy(
                logits[kind][rows], ent.labels[rows], class_weights=class_weights
            )
            losses[kind] = float(loss.item())
            total = loss if total is None else total + loss
        if total is None:
            raise ValueError("no labeled training nodes in any split")
        if config.alpha > 0:
            total = total + F.l2_regularization(params, config.alpha)
        losses["total"] = float(total.item())
        return total, losses

    def _apply_gradients(self, total, params, optimizer) -> float:
        """Backward + clip + step; returns the pre-clip global grad norm."""
        optimizer.zero_grad()
        with trace("backward"):
            total.backward()
        if self.config.grad_clip > 0:
            norm = optim.clip_grad_norm(params, self.config.grad_clip)
        else:
            norm = math.sqrt(
                sum(
                    float((p.grad ** 2).sum())
                    for p in params
                    if p.grad is not None
                )
            )
        if self._sanitizer is not None:
            # Verify mutation checksums before the optimizer's sanctioned
            # in-place parameter update, then drop them so the cache cannot
            # pin old graphs alive across steps.
            self._sanitizer.flush()
        optimizer.step()
        return norm

    def _full_batch_step(self, train_rows, params, optimizer):
        """One full-graph gradient step (the paper's training regime)."""
        with trace("step"):
            with trace("forward"):
                logits = self.model(self.features, self.graph)
            total, losses = self._joint_loss(
                logits, self.features, train_rows, params
            )
            norm = self._apply_gradients(total, params, optimizer)
        return losses, {"grad_norm": norm, "steps": 1}

    def _minibatch_epoch(self, train_rows, params, optimizer, rng):
        """One epoch of neighbor-sampled subgraph steps.

        Each step induces the subgraph of a batch of *training* articles
        plus their creators/subjects; supervision covers the batch articles
        and any train-labeled creators/subjects that landed in the subgraph.
        """
        from .pipeline import subgraph_view

        config = self.config
        article_rows = train_rows["article"]
        if article_rows.size == 0:
            raise ValueError("minibatch training requires labeled train articles")
        train_creator_set = set(train_rows["creator"].tolist())
        train_subject_set = set(train_rows["subject"].tolist())
        order = rng.permutation(article_rows.size)
        accumulated = {"total": 0.0, "article": 0.0, "creator": 0.0, "subject": 0.0}
        norm_sum = 0.0
        steps = 0
        for start in range(0, order.size, config.batch_size):
            batch = article_rows[order[start : start + config.batch_size]]
            sub_features, sub_graph = subgraph_view(self.features, self.graph, batch)
            # Map train-labeled creators/subjects into subgraph rows.
            creator_rows = np.asarray(
                [
                    i
                    for i, eid in enumerate(sub_features.creators.ids)
                    if self.features.creators.index[eid] in train_creator_set
                    and sub_features.creators.labels[i] >= 0
                ],
                dtype=np.intp,
            )
            subject_rows = np.asarray(
                [
                    i
                    for i, eid in enumerate(sub_features.subjects.ids)
                    if self.features.subjects.index[eid] in train_subject_set
                    and sub_features.subjects.labels[i] >= 0
                ],
                dtype=np.intp,
            )
            rows_by_kind = {
                "article": np.arange(batch.size, dtype=np.intp),
                "creator": creator_rows,
                "subject": subject_rows,
            }
            with trace("step", batch=int(batch.size)):
                with trace("forward"):
                    logits = self.model(sub_features, sub_graph)
                total, losses = self._joint_loss(
                    logits, sub_features, rows_by_kind, params
                )
                norm_sum += self._apply_gradients(total, params, optimizer)
            for key in accumulated:
                accumulated[key] += losses.get(key, 0.0)
            steps += 1
        losses = {key: value / max(1, steps) for key, value in accumulated.items()}
        return losses, {"grad_norm": norm_sum / max(1, steps), "steps": steps}

    @staticmethod
    def _labeled_rows(entity, train_ids) -> np.ndarray:
        rows = entity.rows(train_ids)
        return rows[entity.labels[rows] >= 0]

    # ------------------------------------------------------------------
    def predict_logits(self) -> Dict[str, np.ndarray]:
        """Raw (n, 6) logits per node type for the whole network."""
        if self.model is None:
            raise RuntimeError("fit() must be called before predict")
        self.model.eval()
        logits = self.model(self.features, self.graph)
        return {kind: t.data.copy() for kind, t in logits.items()}

    def predictions(self, kind: str, *, return_proba: bool = False) -> List[Prediction]:
        """The unified prediction path: one :class:`Prediction` per node.

        Every other transductive surface (``predict``, ``predict_proba``)
        is a thin view over this list, so class decisions and probability
        numerics are computed in exactly one place.
        """
        logits = self.predict_logits()[kind]
        entity = self.features.by_type(kind)
        return predictions_from_logits(entity.ids, logits, return_proba=return_proba)

    def predict(self, kind: str, *, return_proba: bool = False):
        """Predicted class for every node of ``kind``.

        By default returns the historical ``{entity_id: class index 0..5}``
        dict; with ``return_proba=True`` returns ``{entity_id:
        Prediction}`` records carrying the full softmax distribution.
        """
        preds = self.predictions(kind, return_proba=return_proba)
        if return_proba:
            return {p.entity_id: p for p in preds}
        return {p.entity_id: p.class_index for p in preds}

    def predict_proba(self, kind: str) -> Dict[str, np.ndarray]:
        """Softmax class distribution for every node of ``kind``.

        Thin wrapper over :meth:`predictions`; probabilities come from the
        autograd ``functional.softmax`` so serve-time and train-time
        numerics can never drift.
        """
        preds = self.predictions(kind, return_proba=True)
        return {p.entity_id: p.proba for p in preds}

    # ------------------------------------------------------------------
    def session(self, refresh: bool = False, **kwargs):
        """The detector's cached :class:`repro.serve.InferenceSession`.

        Built lazily on first use (one full-graph forward pass) and reused
        until the next :meth:`fit`. Pass ``refresh=True`` after mutating
        the model/features out-of-band; keyword arguments (cache size,
        shared metrics) force a fresh, uncached session.
        """
        from ..serve.session import InferenceSession

        if self.model is None:
            raise RuntimeError("fit() must be called before building a session")
        if kwargs:
            return InferenceSession(self, **kwargs)
        if refresh or self._session is None:
            self._session = InferenceSession(self)
        return self._session

    def predict_new_articles(self, articles) -> Dict[str, int]:
        """Inductive inference: credibility of articles NOT in the trained graph.

        Each :class:`repro.data.Article` must reference creators/subjects by
        id; ids present in the trained network contribute their learned GDU
        states, unknown ids fall back to the zero default (§4.2's unused-port
        convention). The article's own features come from the fitted
        pipeline's vocabulary and word sets.

        Routed through the cached :meth:`session`, so transient scripts and
        the long-lived server share one code path — the full-graph state
        pass runs once per fitted model, not once per call.

        Returns ``{article_id: class index 0..5}``.
        """
        if self.model is None:
            raise RuntimeError("fit() must be called before predict_new_articles")
        if not articles:
            return {}
        ids = [a.article_id for a in articles]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate article ids in inductive batch")
        preds = self.session().predict(articles)
        return {p.entity_id: p.class_index for p in preds}

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist the fitted detector (config, pipeline, graph, weights).

        See :mod:`repro.serve.checkpoint` for the directory layout; the
        round trip reproduces bit-identical :meth:`predict_logits` output.
        """
        from ..serve.checkpoint import save_detector

        save_detector(self, path)

    @classmethod
    def load(cls, path) -> "FakeDetector":
        """Rebuild a fitted detector from a :meth:`save` directory."""
        from ..serve.checkpoint import load_detector

        return load_detector(path)
