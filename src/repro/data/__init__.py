"""Dataset layer: schema, credibility math, synthetic corpus, I/O, analysis."""

from .credibility import (
    assign_derived_labels,
    binary_split_counts,
    derive_entity_label,
    label_to_score,
    score_to_label,
    weighted_credibility_score,
)
from .liar import LiarLoadStats, load_liar
from .loader import load_dataset, save_dataset
from .schema import (
    NUM_CLASSES,
    Article,
    Creator,
    CredibilityLabel,
    NewsDataset,
    Subject,
)
from .synthetic import (
    CASE_STUDY_CREATORS,
    PAPER_NUM_ARTICLE_SUBJECT_LINKS,
    PAPER_NUM_ARTICLES,
    PAPER_NUM_CREATORS,
    PAPER_NUM_SUBJECTS,
    GeneratorConfig,
    PolitiFactGenerator,
    generate_dataset,
)

__all__ = [
    "Article",
    "Creator",
    "Subject",
    "NewsDataset",
    "CredibilityLabel",
    "NUM_CLASSES",
    "label_to_score",
    "score_to_label",
    "weighted_credibility_score",
    "derive_entity_label",
    "assign_derived_labels",
    "binary_split_counts",
    "save_dataset",
    "load_dataset",
    "load_liar",
    "LiarLoadStats",
    "GeneratorConfig",
    "PolitiFactGenerator",
    "generate_dataset",
    "CASE_STUDY_CREATORS",
    "PAPER_NUM_ARTICLES",
    "PAPER_NUM_CREATORS",
    "PAPER_NUM_SUBJECTS",
    "PAPER_NUM_ARTICLE_SUBJECT_LINKS",
]
