"""Dataset analysis reproducing every statistic in the paper's Section 3.

Each function regenerates one panel of Figure 1 (or Table 1) as structured
data; the benchmark harness renders them as text tables.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..text.tokenizer import tokenize_clean
from .credibility import binary_split_counts
from .schema import CredibilityLabel, NewsDataset


__all__ = [
    "network_properties",
    "PowerLawFit",
    "creator_publication_distribution",
    "most_prolific_creator",
    "frequent_words",
    "distinctive_words",
    "SubjectCredibilityRow",
    "subject_credibility_table",
    "CreatorCaseStudy",
    "creator_case_study",
    "label_distribution",
    "GraphStatistics",
    "graph_statistics",
    "average_subjects_per_article",
    "average_articles_per_creator",
]


def network_properties(dataset: NewsDataset) -> Dict[str, int]:
    """Table 1: node and link counts of the heterogeneous network."""
    return {
        "articles": dataset.num_articles,
        "creators": dataset.num_creators,
        "subjects": dataset.num_subjects,
        "creator_article_links": dataset.num_creator_article_links,
        "article_subject_links": dataset.num_article_subject_links,
    }


@dataclasses.dataclass
class PowerLawFit:
    """Log-log least-squares fit of a publication-count distribution."""

    exponent: float          # slope magnitude of the log-log fit
    intercept: float
    r_squared: float
    counts: Dict[int, float]  # number of articles -> fraction of creators

    @property
    def is_power_law_like(self) -> bool:
        """Heuristic: strong negative log-log linearity with slope > 1."""
        return self.exponent > 1.0 and self.r_squared > 0.7


def creator_publication_distribution(dataset: NewsDataset) -> PowerLawFit:
    """Figure 1(a): article-count distribution over creators with a fit."""
    per_creator = Counter(a.creator_id for a in dataset.articles.values())
    count_hist = Counter(per_creator.values())
    n_creators = max(1, dataset.num_creators)
    fractions = {k: v / n_creators for k, v in sorted(count_hist.items())}

    ks = np.array(sorted(fractions), dtype=np.float64)
    fs = np.array([fractions[int(k)] for k in ks])
    if len(ks) < 2:
        return PowerLawFit(exponent=0.0, intercept=0.0, r_squared=0.0, counts=fractions)
    x, y = np.log(ks), np.log(fs)
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
    return PowerLawFit(exponent=float(-slope), intercept=float(intercept), r_squared=r2, counts=fractions)


def most_prolific_creator(dataset: NewsDataset) -> Tuple[str, int]:
    """(creator name, article count) of the busiest creator (§3.2.1)."""
    per_creator = Counter(a.creator_id for a in dataset.articles.values())
    if not per_creator:
        raise ValueError("dataset has no articles")
    creator_id, count = per_creator.most_common(1)[0]
    return dataset.creators[creator_id].name, count


def frequent_words(
    dataset: NewsDataset, top_k: int = 20
) -> Dict[str, List[Tuple[str, int]]]:
    """Figures 1(b)/(c): top words in true vs false articles, stop words removed."""
    true_counts: Counter = Counter()
    false_counts: Counter = Counter()
    for article in dataset.articles.values():
        tokens = tokenize_clean(article.text)
        if article.label.is_true_class:
            true_counts.update(tokens)
        else:
            false_counts.update(tokens)
    return {
        "true": true_counts.most_common(top_k),
        "false": false_counts.most_common(top_k),
    }


def distinctive_words(
    dataset: NewsDataset, top_k: int = 10, min_count: int = 5, smoothing: float = 3.0
) -> Dict[str, List[str]]:
    """Words over-represented in one class (the Fig 1b/1c story).

    Ranked by smoothed rate ratio between the classes, so genuinely
    label-correlated vocabulary surfaces ahead of merely frequent words.
    """
    freq = frequent_words(dataset, top_k=10**6)
    true_counts = dict(freq["true"])
    false_counts = dict(freq["false"])
    true_total = max(1, sum(true_counts.values()))
    false_total = max(1, sum(false_counts.values()))

    ratios: Dict[str, float] = {}
    for word in set(true_counts) | set(false_counts):
        t, f = true_counts.get(word, 0), false_counts.get(word, 0)
        if t + f < min_count:
            continue
        rate_t = (t + smoothing) / true_total
        rate_f = (f + smoothing) / false_total
        ratios[word] = rate_t / rate_f

    ranked = sorted(ratios.items(), key=lambda item: (-item[1], item[0]))
    true_side = [w for w, r in ranked if r > 1.0][:top_k]
    false_side = [w for w, r in reversed(ranked) if r < 1.0][:top_k]
    return {"true": true_side, "false": false_side}


@dataclasses.dataclass
class SubjectCredibilityRow:
    """One row of the Figure 1(d) subject table."""

    name: str
    total: int
    true_count: int
    false_count: int

    @property
    def true_fraction(self) -> float:
        return self.true_count / self.total if self.total else 0.0


def subject_credibility_table(dataset: NewsDataset, top_k: int = 20) -> List[SubjectCredibilityRow]:
    """Figure 1(d): top-k subjects by article count with true/false splits."""
    rows = []
    for subject_id, articles in dataset.articles_by_subject().items():
        if not articles:
            continue
        true_count, false_count = binary_split_counts(articles)
        rows.append(
            SubjectCredibilityRow(
                name=dataset.subjects[subject_id].name,
                total=len(articles),
                true_count=true_count,
                false_count=false_count,
            )
        )
    rows.sort(key=lambda r: -r.total)
    return rows[:top_k]


@dataclasses.dataclass
class CreatorCaseStudy:
    """One panel entry of Figures 1(e)/(f)."""

    name: str
    histogram: Dict[CredibilityLabel, int]
    total: int
    true_fraction: float


def creator_case_study(dataset: NewsDataset, names: Optional[List[str]] = None) -> List[CreatorCaseStudy]:
    """Figures 1(e)/(f): per-creator label histograms for named creators.

    Defaults to the paper's four case studies; creators missing from the
    dataset are skipped.
    """
    if names is None:
        names = ["Donald Trump", "Mike Pence", "Barack Obama", "Hillary Clinton"]
    name_to_id = {c.name: cid for cid, c in dataset.creators.items()}
    by_creator = dataset.articles_by_creator()
    studies = []
    for name in names:
        creator_id = name_to_id.get(name)
        if creator_id is None:
            continue
        articles = by_creator.get(creator_id, [])
        histogram = Counter(a.label for a in articles)
        total = len(articles)
        true_count, _ = binary_split_counts(articles)
        studies.append(
            CreatorCaseStudy(
                name=name,
                histogram={label: histogram.get(label, 0) for label in CredibilityLabel},
                total=total,
                true_fraction=true_count / total if total else 0.0,
            )
        )
    return studies


def label_distribution(dataset: NewsDataset) -> Dict[CredibilityLabel, int]:
    """Corpus-wide article label histogram."""
    counts = Counter(a.label for a in dataset.articles.values())
    return {label: counts.get(label, 0) for label in CredibilityLabel}


@dataclasses.dataclass
class GraphStatistics:
    """Structural statistics of the News-HSN beyond Table 1's raw counts."""

    article_degree_mean: float      # subjects per article + 1 creator
    creator_degree_mean: float      # articles per creator
    subject_degree_mean: float      # articles per subject
    creator_degree_max: int
    subject_degree_max: int
    bipartite_density_cs: float     # article-subject links / (articles*subjects)
    isolated_creators: int
    isolated_subjects: int


def graph_statistics(dataset: NewsDataset) -> GraphStatistics:
    """Degree and density statistics of the heterogeneous network."""
    by_creator = dataset.articles_by_creator()
    by_subject = dataset.articles_by_subject()
    creator_degrees = [len(arts) for arts in by_creator.values()]
    subject_degrees = [len(arts) for arts in by_subject.values()]
    n_articles = max(1, dataset.num_articles)
    n_subjects = max(1, dataset.num_subjects)
    return GraphStatistics(
        article_degree_mean=(
            (dataset.num_article_subject_links + dataset.num_creator_article_links)
            / n_articles
        ),
        creator_degree_mean=float(np.mean(creator_degrees)) if creator_degrees else 0.0,
        subject_degree_mean=float(np.mean(subject_degrees)) if subject_degrees else 0.0,
        creator_degree_max=max(creator_degrees, default=0),
        subject_degree_max=max(subject_degrees, default=0),
        bipartite_density_cs=dataset.num_article_subject_links / (n_articles * n_subjects),
        isolated_creators=sum(1 for d in creator_degrees if d == 0),
        isolated_subjects=sum(1 for d in subject_degrees if d == 0),
    )


def average_subjects_per_article(dataset: NewsDataset) -> float:
    """§3.1: each article has about 3.5 associated subjects."""
    if not dataset.articles:
        return 0.0
    return dataset.num_article_subject_links / dataset.num_articles


def average_articles_per_creator(dataset: NewsDataset) -> float:
    """§3.1: each creator created 3.86 articles on average."""
    if not dataset.creators:
        return 0.0
    return dataset.num_articles / dataset.num_creators
