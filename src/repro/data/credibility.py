"""Credibility score arithmetic (paper §5.1.1).

The paper represents the 6 categorical labels with numerical scores
(True=6 ... Pants on Fire!=1) and derives creator/subject ground truth as
"the weighted sum of credibility scores of published articles (here, the
weight denotes the percentage of articles in each class)", rounded back to a
label.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Optional

from .schema import Article, CredibilityLabel, NewsDataset

LABEL_SCORES: Dict[CredibilityLabel, int] = {label: int(label) for label in CredibilityLabel}


def label_to_score(label: CredibilityLabel) -> int:
    """Map a label to its numerical score (True=6 .. Pants on Fire!=1)."""
    return int(label)


def score_to_label(score: float) -> CredibilityLabel:
    """Round a continuous credibility score back to the nearest label.

    Scores are clamped to [1, 6]; ties round half-up (4.5 -> 5), matching
    conventional rounding of the paper's "round scores".
    """
    clamped = min(6.0, max(1.0, float(score)))
    rounded = int(clamped + 0.5)
    return CredibilityLabel(min(6, max(1, rounded)))


def weighted_credibility_score(labels: Iterable[CredibilityLabel]) -> Optional[float]:
    """Weighted-sum score over a bag of article labels.

    With weights equal to the fraction of articles in each class, the
    weighted sum is exactly the mean article score; ``None`` for an empty
    bag (a creator/subject with no articles has no derived ground truth).
    """
    counts = Counter(labels)
    total = sum(counts.values())
    if total == 0:
        return None
    return sum(int(label) * count for label, count in counts.items()) / total


def derive_entity_label(labels: Iterable[CredibilityLabel]) -> Optional[CredibilityLabel]:
    """Weighted-sum score rounded to a label (creator/subject ground truth)."""
    score = weighted_credibility_score(labels)
    if score is None:
        return None
    return score_to_label(score)


def assign_derived_labels(dataset: NewsDataset) -> None:
    """Fill in creator and subject labels from their articles, in place.

    Entities with no linked articles keep their existing label (possibly
    ``None``); everything else gets the §5.1.1 weighted-sum ground truth.
    """
    by_creator = dataset.articles_by_creator()
    for creator_id, creator in dataset.creators.items():
        articles = by_creator.get(creator_id, [])
        derived = derive_entity_label(a.label for a in articles)
        if derived is not None:
            creator.label = derived
    by_subject = dataset.articles_by_subject()
    for subject_id, subject in dataset.subjects.items():
        articles = by_subject.get(subject_id, [])
        derived = derive_entity_label(a.label for a in articles)
        if derived is not None:
            subject.label = derived


def binary_split_counts(articles: Iterable[Article]) -> tuple[int, int]:
    """(true_count, false_count) under the paper's bi-class grouping."""
    true_count = 0
    false_count = 0
    for article in articles:
        if article.label.is_true_class:
            true_count += 1
        else:
            false_count += 1
    return true_count, false_count
