"""Converter for the LIAR dataset (Wang 2017, ACL) into a NewsDataset.

LIAR is the publicly downloadable PolitiFact-derived benchmark: ~12.8k
fact-checked statements as TSV, with the same six Truth-O-Meter labels the
paper uses, speaker metadata (≈ creators) and topic lists (≈ subjects).
Users who can't re-crawl PolitiFact can run every experiment in this repo
on LIAR through this loader.

Expected TSV columns (the official train/valid/test files):

    0 id | 1 label | 2 statement | 3 subjects (comma-sep) | 4 speaker
    5 speaker_job | 6 state | 7 party | 8-12 credit-history counts
    13 context

Only columns 0-7 are used; missing/short rows are skipped with a warning
counter rather than failing the whole load.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, List, Union

from .credibility import assign_derived_labels
from .schema import Article, Creator, CredibilityLabel, NewsDataset, Subject

PathLike = Union[str, Path]

#: LIAR label strings -> the paper's 6-level scale.
LIAR_LABELS: Dict[str, CredibilityLabel] = {
    "true": CredibilityLabel.TRUE,
    "mostly-true": CredibilityLabel.MOSTLY_TRUE,
    "half-true": CredibilityLabel.HALF_TRUE,
    "barely-true": CredibilityLabel.MOSTLY_FALSE,
    "false": CredibilityLabel.FALSE,
    "pants-fire": CredibilityLabel.PANTS_ON_FIRE,
}


@dataclasses.dataclass
class LiarLoadStats:
    """What happened during a load."""

    rows: int = 0
    loaded: int = 0
    skipped_short: int = 0
    skipped_label: int = 0
    skipped_duplicate: int = 0


def _slug(text: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in text.strip().lower()).strip("_")


def load_liar(
    *paths: PathLike,
    derive_entity_labels: bool = True,
) -> tuple:
    """Load one or more LIAR TSV files into a single NewsDataset.

    Returns ``(dataset, stats)``. Speakers become creators (profile text =
    job + state + party); each comma-separated subject becomes a Subject
    node. Creator/subject ground-truth labels are derived with the paper's
    §5.1.1 weighted-sum rule unless disabled.
    """
    if not paths:
        raise ValueError("at least one TSV path required")
    dataset = NewsDataset()
    stats = LiarLoadStats()
    seen_articles: set = set()

    for path in paths:
        path = Path(path)
        with path.open(encoding="utf-8") as fh:
            for line in fh:
                line = line.rstrip("\n")
                if not line.strip():
                    continue
                stats.rows += 1
                cols = line.split("\t")
                if len(cols) < 5:
                    stats.skipped_short += 1
                    continue
                raw_id, raw_label, statement, raw_subjects, speaker = cols[:5]
                label = LIAR_LABELS.get(raw_label.strip().lower())
                if label is None:
                    stats.skipped_label += 1
                    continue
                article_id = f"liar_{_slug(raw_id) or stats.rows}"
                if article_id in seen_articles:
                    stats.skipped_duplicate += 1
                    continue
                seen_articles.add(article_id)

                speaker = speaker.strip() or "unknown-speaker"
                creator_id = f"u_{_slug(speaker)}"
                if creator_id not in dataset.creators:
                    job = cols[5].strip() if len(cols) > 5 else ""
                    state = cols[6].strip() if len(cols) > 6 else ""
                    party = cols[7].strip() if len(cols) > 7 else ""
                    profile = " ".join(
                        part for part in (speaker, job, state, party) if part
                    )
                    dataset.add_creator(
                        Creator(
                            creator_id=creator_id,
                            name=speaker.replace("-", " ").title(),
                            profile=profile.lower(),
                        )
                    )

                subject_ids: List[str] = []
                names = [s for s in raw_subjects.split(",") if s.strip()]
                if not names:
                    names = ["uncategorized"]
                for name in names:
                    subject_id = f"s_{_slug(name)}"
                    if subject_id not in dataset.subjects:
                        dataset.add_subject(
                            Subject(
                                subject_id=subject_id,
                                name=name.strip().lower(),
                                description=name.strip().lower().replace("-", " "),
                            )
                        )
                    if subject_id not in subject_ids:
                        subject_ids.append(subject_id)

                dataset.add_article(
                    Article(
                        article_id=article_id,
                        text=statement.strip(),
                        label=label,
                        creator_id=creator_id,
                        subject_ids=subject_ids,
                    )
                )
                stats.loaded += 1

    if derive_entity_labels:
        assign_derived_labels(dataset)
    dataset.validate()
    return dataset, stats
