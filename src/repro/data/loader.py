"""Dataset persistence: JSON-lines save/load.

The on-disk format matches what a real PolitiFact crawl would serialize to,
so a user holding the original data can export it in this shape and run the
full pipeline unchanged:

    {"kind": "creator", "creator_id": ..., "name": ..., "profile": ..., "label": ...}
    {"kind": "subject", "subject_id": ..., "name": ..., "description": ..., "label": ...}
    {"kind": "article", "article_id": ..., "text": ..., "label": ...,
     "creator_id": ..., "subject_ids": [...]}

Labels are stored as display names ("Pants on Fire!", "Mostly True", ...).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from .schema import Article, Creator, CredibilityLabel, NewsDataset, Subject

PathLike = Union[str, Path]


def _label_name(label: Optional[CredibilityLabel]) -> Optional[str]:
    return label.display_name if label is not None else None


def _parse_label(name: Optional[str]) -> Optional[CredibilityLabel]:
    if name is None:
        return None
    return CredibilityLabel.from_display_name(name)


def save_dataset(dataset: NewsDataset, path: PathLike) -> None:
    """Write the corpus as JSON lines (creators, subjects, then articles)."""
    path = Path(path)
    with path.open("w") as fh:
        for creator in dataset.creators.values():
            fh.write(
                json.dumps(
                    {
                        "kind": "creator",
                        "creator_id": creator.creator_id,
                        "name": creator.name,
                        "profile": creator.profile,
                        "label": _label_name(creator.label),
                    }
                )
                + "\n"
            )
        for subject in dataset.subjects.values():
            fh.write(
                json.dumps(
                    {
                        "kind": "subject",
                        "subject_id": subject.subject_id,
                        "name": subject.name,
                        "description": subject.description,
                        "label": _label_name(subject.label),
                    }
                )
                + "\n"
            )
        for article in dataset.articles.values():
            fh.write(
                json.dumps(
                    {
                        "kind": "article",
                        "article_id": article.article_id,
                        "text": article.text,
                        "label": article.label.display_name,
                        "creator_id": article.creator_id,
                        "subject_ids": article.subject_ids,
                    }
                )
                + "\n"
            )


def load_dataset(path: PathLike, validate: bool = True) -> NewsDataset:
    """Load a corpus saved by :func:`save_dataset` (or an equivalent export)."""
    path = Path(path)
    dataset = NewsDataset()
    with path.open() as fh:
        for line_number, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: invalid JSON: {exc}") from exc
            kind = record.get("kind")
            if kind == "creator":
                dataset.add_creator(
                    Creator(
                        creator_id=record["creator_id"],
                        name=record["name"],
                        profile=record["profile"],
                        label=_parse_label(record.get("label")),
                    )
                )
            elif kind == "subject":
                dataset.add_subject(
                    Subject(
                        subject_id=record["subject_id"],
                        name=record["name"],
                        description=record["description"],
                        label=_parse_label(record.get("label")),
                    )
                )
            elif kind == "article":
                dataset.add_article(
                    Article(
                        article_id=record["article_id"],
                        text=record["text"],
                        label=CredibilityLabel.from_display_name(record["label"]),
                        creator_id=record["creator_id"],
                        subject_ids=list(record.get("subject_ids", [])),
                    )
                )
            else:
                raise ValueError(f"{path}:{line_number}: unknown record kind {kind!r}")
    if validate:
        dataset.validate()
    return dataset
