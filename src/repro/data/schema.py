"""Dataset schema: credibility labels and the article/creator/subject entities.

Mirrors the paper's Definitions 2.1-2.3: an article is (text, label), a
subject is (description, label), a creator is (profile, label). Labels come
from the 6-level PolitiFact "Truth-O-Meter" scale.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class CredibilityLabel(enum.IntEnum):
    """The 6-level Truth-O-Meter scale with the paper's numerical scores.

    §5.1.1 maps labels to scores: True=6, Mostly True=5, Half True=4,
    Mostly False=3, False=2, Pants on Fire!=1. The IntEnum value IS the
    paper's score, so arithmetic like the weighted-sum ground truth reads
    directly off the enum.
    """

    PANTS_ON_FIRE = 1
    FALSE = 2
    MOSTLY_FALSE = 3
    HALF_TRUE = 4
    MOSTLY_TRUE = 5
    TRUE = 6

    @property
    def display_name(self) -> str:
        return _DISPLAY_NAMES[self]

    @classmethod
    def from_display_name(cls, name: str) -> "CredibilityLabel":
        try:
            return _NAME_TO_LABEL[name.strip().lower()]
        except KeyError:
            raise ValueError(f"unknown credibility label {name!r}") from None

    @property
    def is_true_class(self) -> bool:
        """Paper's bi-class grouping: {True, Mostly True, Half True} = positive."""
        return self >= CredibilityLabel.HALF_TRUE

    @property
    def binary(self) -> int:
        """1 for the positive (credible) bi-class group, 0 otherwise."""
        return int(self.is_true_class)

    @property
    def class_index(self) -> int:
        """Zero-based class index for classifiers (0=Pants on Fire! .. 5=True)."""
        return int(self) - 1

    @classmethod
    def from_class_index(cls, index: int) -> "CredibilityLabel":
        if not 0 <= index <= 5:
            raise ValueError(f"class index out of range: {index}")
        return cls(index + 1)


_DISPLAY_NAMES = {
    CredibilityLabel.TRUE: "True",
    CredibilityLabel.MOSTLY_TRUE: "Mostly True",
    CredibilityLabel.HALF_TRUE: "Half True",
    CredibilityLabel.MOSTLY_FALSE: "Mostly False",
    CredibilityLabel.FALSE: "False",
    CredibilityLabel.PANTS_ON_FIRE: "Pants on Fire!",
}
_NAME_TO_LABEL = {name.lower(): label for label, name in _DISPLAY_NAMES.items()}

NUM_CLASSES = len(CredibilityLabel)


@dataclass
class Article:
    """A news article / fact-checked statement (Definition 2.1)."""

    article_id: str
    text: str
    label: CredibilityLabel
    creator_id: str
    subject_ids: List[str] = field(default_factory=list)

    def __post_init__(self):
        if not isinstance(self.label, CredibilityLabel):
            self.label = CredibilityLabel(self.label)


@dataclass
class Creator:
    """A news creator with profile text (Definition 2.3)."""

    creator_id: str
    name: str
    profile: str
    label: Optional[CredibilityLabel] = None

    def __post_init__(self):
        if self.label is not None and not isinstance(self.label, CredibilityLabel):
            self.label = CredibilityLabel(self.label)


@dataclass
class Subject:
    """A news subject / topic with a textual description (Definition 2.2)."""

    subject_id: str
    name: str
    description: str
    label: Optional[CredibilityLabel] = None

    def __post_init__(self):
        if self.label is not None and not isinstance(self.label, CredibilityLabel):
            self.label = CredibilityLabel(self.label)


@dataclass
class NewsDataset:
    """The full News-HSN corpus: N (articles), U (creators), S (subjects)."""

    articles: Dict[str, Article] = field(default_factory=dict)
    creators: Dict[str, Creator] = field(default_factory=dict)
    subjects: Dict[str, Subject] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add_article(self, article: Article) -> None:
        if article.article_id in self.articles:
            raise ValueError(f"duplicate article id {article.article_id!r}")
        self.articles[article.article_id] = article

    def add_creator(self, creator: Creator) -> None:
        if creator.creator_id in self.creators:
            raise ValueError(f"duplicate creator id {creator.creator_id!r}")
        self.creators[creator.creator_id] = creator

    def add_subject(self, subject: Subject) -> None:
        if subject.subject_id in self.subjects:
            raise ValueError(f"duplicate subject id {subject.subject_id!r}")
        self.subjects[subject.subject_id] = subject

    # ------------------------------------------------------------------
    @property
    def num_articles(self) -> int:
        return len(self.articles)

    @property
    def num_creators(self) -> int:
        return len(self.creators)

    @property
    def num_subjects(self) -> int:
        return len(self.subjects)

    @property
    def num_creator_article_links(self) -> int:
        """One authorship link per article (each article has one creator)."""
        return sum(1 for a in self.articles.values() if a.creator_id)

    @property
    def num_article_subject_links(self) -> int:
        return sum(len(a.subject_ids) for a in self.articles.values())

    # ------------------------------------------------------------------
    def articles_by_creator(self) -> Dict[str, List[Article]]:
        """Group articles by their creator id."""
        grouped: Dict[str, List[Article]] = {cid: [] for cid in self.creators}
        for article in self.articles.values():
            grouped.setdefault(article.creator_id, []).append(article)
        return grouped

    def articles_by_subject(self) -> Dict[str, List[Article]]:
        """Group articles by each subject they indicate."""
        grouped: Dict[str, List[Article]] = {sid: [] for sid in self.subjects}
        for article in self.articles.values():
            for sid in article.subject_ids:
                grouped.setdefault(sid, []).append(article)
        return grouped

    def validate(self) -> None:
        """Check referential integrity of all links; raise on dangling ids."""
        for article in self.articles.values():
            if article.creator_id not in self.creators:
                raise ValueError(
                    f"article {article.article_id!r} references unknown creator "
                    f"{article.creator_id!r}"
                )
            for sid in article.subject_ids:
                if sid not in self.subjects:
                    raise ValueError(
                        f"article {article.article_id!r} references unknown subject {sid!r}"
                    )
            if len(set(article.subject_ids)) != len(article.subject_ids):
                raise ValueError(
                    f"article {article.article_id!r} lists a subject twice"
                )
