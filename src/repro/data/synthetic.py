"""Synthetic PolitiFact-like corpus generator.

The paper evaluates on a crawl of PolitiFact (Table 1: 14,055 articles,
3,634 creators, 152 subjects, 48,756 article-subject links) that is not
redistributable and cannot be fetched offline. This module generates a
*calibrated* synthetic corpus reproducing every statistic the paper reports:

- Table 1 node/link counts (scaled by ``scale``).
- Fig 1(a): power-law creator-article publication counts, with the most
  prolific creator ("Barack Obama", ~599 articles at full scale).
- Fig 1(b)/(c): label-discriminative vocabularies (true-leaning vs
  false-leaning word pools).
- Fig 1(d): top-subject article counts and true/false skew ("health"
  largest with ~46.5% true, "economy" second with ~63.2% true).
- Fig 1(e)/(f): the four case-study creators with their exact label
  histograms (Trump ~69% false, Pence 52:48, Obama ~75% true, Clinton ~73%
  true).

The generator plants the two signals FakeDetector exploits — label-correlated
text and label homophily along authorship/subject links — so relative model
orderings transfer even though the sentences are synthetic.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from . import wordpools as wp
from .credibility import assign_derived_labels
from .schema import Article, Creator, CredibilityLabel, NewsDataset, Subject

# Paper-reported corpus statistics at scale=1.0 (Table 1 / §3.1).
PAPER_NUM_ARTICLES = 14055
PAPER_NUM_CREATORS = 3634
PAPER_NUM_SUBJECTS = 152
PAPER_NUM_ARTICLE_SUBJECT_LINKS = 48756

# Fig 1(e)/(f) case-study label histograms in CredibilityLabel order
# [Pants on Fire!, False, Mostly False, Half True, Mostly True, True].
CASE_STUDY_CREATORS: Dict[str, List[int]] = {
    "Donald Trump": [75, 167, 112, 77, 60, 23],
    "Mike Pence": [0, 13, 8, 14, 5, 4],
    "Barack Obama": [9, 71, 70, 161, 165, 123],
    "Hillary Clinton": [7, 31, 41, 69, 76, 72],
}
CASE_STUDY_PARTY = {
    "Donald Trump": "republican",
    "Mike Pence": "republican",
    "Barack Obama": "democrat",
    "Hillary Clinton": "democrat",
}

# Fig 1(d) top-20 subject article counts (descending), plus the paper's
# true-article fractions for the two subjects it quantifies.
TOP_SUBJECT_ARTICLE_COUNTS = [
    1572, 1498, 1310, 1205, 1110, 1020, 955, 895, 845, 795,
    750, 705, 660, 615, 575, 535, 500, 465, 430, 400,
]
SUBJECT_TRUE_FRACTIONS = {"health": 0.465, "economy": 0.632}


@dataclasses.dataclass
class GeneratorConfig:
    """Knobs for the synthetic corpus.

    ``scale`` multiplies the paper's corpus sizes; explicit ``num_*``
    overrides win over ``scale``. Signal strengths control how separable
    the classes are (1.0 reproduces a corpus on which text models reach
    PolitiFact-like mid-60s binary accuracy).
    """

    scale: float = 1.0
    num_articles: Optional[int] = None
    num_creators: Optional[int] = None
    num_subjects: Optional[int] = None
    target_subject_links: Optional[int] = None
    seed: int = 7
    mean_article_length: float = 22.0
    min_article_length: int = 8
    # Fraction of article tokens drawn from the label-tilted pools; the rest
    # are neutral shared/topic words.
    signal_fraction: float = 0.30
    # Strength of the label tilt: 0 = both classes draw identically from the
    # true/false pools (no text signal), 1 = a "True" article draws from the
    # true-leaning pool with probability ~0.72 (classes overlap, as real
    # political text does; this keeps text-only models in the paper's
    # mid-60s bi-class accuracy band instead of saturating).
    text_signal_strength: float = 1.0
    profile_signal_strength: float = 1.0
    include_case_studies: bool = True
    # Mixing weights for article label sampling.
    creator_weight: float = 0.5
    subject_weight: float = 0.5
    label_temperature: float = 1.1
    # Probability that an article's label ignores its creator/subjects and is
    # drawn near the corpus-wide prior instead. Real statements are only
    # loosely predicted by who said them; without this the graph channel is
    # an oracle and structure-only baselines dominate unrealistically.
    idiosyncrasy: float = 0.30

    def __post_init__(self):
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if not 0.0 <= self.text_signal_strength <= 2.0:
            raise ValueError("text_signal_strength must be in [0, 2]")
        if self.creator_weight < 0 or self.subject_weight < 0:
            raise ValueError("mixing weights must be non-negative")

    def resolved_counts(self) -> tuple[int, int, int, int]:
        """(articles, creators, subjects, subject_links) after scaling."""
        n_articles = self.num_articles or max(30, round(PAPER_NUM_ARTICLES * self.scale))
        n_creators = self.num_creators or max(8, round(PAPER_NUM_CREATORS * self.scale))
        n_subjects = self.num_subjects or max(
            10, min(PAPER_NUM_SUBJECTS, round(PAPER_NUM_SUBJECTS * np.sqrt(self.scale)))
        )
        links = self.target_subject_links or max(
            n_articles, round(n_articles * PAPER_NUM_ARTICLE_SUBJECT_LINKS / PAPER_NUM_ARTICLES)
        )
        n_creators = min(n_creators, n_articles)
        n_subjects = min(n_subjects, PAPER_NUM_SUBJECTS)
        return n_articles, n_creators, n_subjects, links


class PolitiFactGenerator:
    """Seeded generator producing a :class:`NewsDataset`."""

    def __init__(self, config: Optional[GeneratorConfig] = None, **overrides):
        if config is None:
            config = GeneratorConfig(**overrides)
        elif overrides:
            config = dataclasses.replace(config, **overrides)
        self.config = config
        self.rng = np.random.default_rng(config.seed)

    # ------------------------------------------------------------------
    def generate(self) -> NewsDataset:
        """Build the full corpus."""
        n_articles, n_creators, n_subjects, n_links = self.config.resolved_counts()
        dataset = NewsDataset()

        subjects, subject_weights, subject_bias = self._make_subjects(n_subjects)
        for subject in subjects:
            dataset.add_subject(subject)

        creators, publication_counts, creator_mu, case_histograms = self._make_creators(
            n_creators, n_articles
        )
        for creator in creators:
            dataset.add_creator(creator)

        self._make_articles(
            dataset,
            creators,
            publication_counts,
            creator_mu,
            case_histograms,
            subjects,
            subject_weights,
            subject_bias,
            n_links,
        )

        assign_derived_labels(dataset)
        dataset.validate()
        return dataset

    # ------------------------------------------------------------------
    # Subjects
    # ------------------------------------------------------------------
    def _make_subjects(self, n_subjects: int):
        """Create subjects with popularity weights and true-fraction biases."""
        rng = self.rng
        names: List[str] = list(wp.TOP_SUBJECT_NAMES[:n_subjects])
        for i in range(len(names), n_subjects):
            names.append(f"subject_{i:03d}")

        # Popularity targets: Fig 1(d) counts for the named head, geometric
        # decay for the tail, normalized into sampling weights.
        head = list(TOP_SUBJECT_ARTICLE_COUNTS[: min(20, n_subjects)])
        targets = list(head)
        tail_n = n_subjects - len(targets)
        if tail_n > 0:
            start = (head[-1] if head else 400) * 0.95
            decay = (50.0 / start) ** (1.0 / max(1, tail_n - 1)) if tail_n > 1 else 1.0
            targets.extend(start * decay ** i for i in range(tail_n))
        weights = np.asarray(targets, dtype=np.float64)
        weights /= weights.sum()

        bias = np.empty(n_subjects)
        for i, name in enumerate(names):
            if name in SUBJECT_TRUE_FRACTIONS:
                bias[i] = SUBJECT_TRUE_FRACTIONS[name]
            else:
                # Wide Beta so derived subject labels span several classes
                # (Fig 1d shows subjects ranging from false-heavy "health" to
                # true-heavy "economy").
                bias[i] = float(np.clip(rng.beta(2.0, 2.0), 0.05, 0.95))

        subjects = []
        for i, name in enumerate(names):
            topic_words = wp.SUBJECT_TOPIC_WORDS.get(name) or wp.generic_subject_topic_words(i)
            description = self._subject_description(name, topic_words, bias[i])
            subjects.append(
                Subject(subject_id=f"s{i:04d}", name=name, description=description)
            )
        return subjects, weights, bias

    def _subject_description(self, name: str, topic_words: Sequence[str], bias: float) -> str:
        """Topic words plus weakly bias-correlated credibility words."""
        rng = self.rng
        words = [name] + list(topic_words)
        strength = self.config.profile_signal_strength
        p_true_pool = float(np.clip(0.5 + 0.45 * strength * (2.0 * bias - 1.0), 0.05, 0.95))
        for _ in range(6):
            pool = (
                wp.TRUE_LEANING_WORDS
                if rng.random() < p_true_pool
                else wp.FALSE_LEANING_WORDS
            )
            words.append(pool[rng.integers(len(pool))])
        for _ in range(4):
            words.append(wp.SHARED_WORDS[rng.integers(len(wp.SHARED_WORDS))])
        rng.shuffle(words)
        return " ".join(words)

    # ------------------------------------------------------------------
    # Creators
    # ------------------------------------------------------------------
    def _make_creators(self, n_creators: int, n_articles: int):
        """Create creators, per-creator publication counts, and mean scores."""
        rng = self.rng
        config = self.config
        creators: List[Creator] = []
        counts: List[int] = []
        mu: List[float] = []  # mean credibility score in [1, 6]
        case_histograms: Dict[str, List[int]] = {}

        scale = n_articles / PAPER_NUM_ARTICLES
        case_names = list(CASE_STUDY_CREATORS) if config.include_case_studies else []
        for name in case_names:
            hist = [max(0, round(c * scale)) for c in CASE_STUDY_CREATORS[name]]
            if sum(hist) == 0:
                # At tiny scales keep the creator with one article from the
                # modal label so case studies never vanish entirely.
                hist[int(np.argmax(CASE_STUDY_CREATORS[name]))] = 1
            cid = f"u{len(creators):05d}"
            party = CASE_STUDY_PARTY[name]
            reliability = self._histogram_mean(hist) / 6.0
            creators.append(
                Creator(
                    creator_id=cid,
                    name=name,
                    profile=self._creator_profile(name, party, reliability),
                )
            )
            counts.append(sum(hist))
            mu.append(self._histogram_mean(hist))
            case_histograms[cid] = hist

        remaining_articles = n_articles - sum(counts)
        remaining_creators = n_creators - len(creators)
        if remaining_creators <= 0 or remaining_articles < remaining_creators:
            raise ValueError(
                "corpus too small for the requested creator count; lower "
                "num_creators or raise num_articles"
            )

        # Power-law publication counts (Fig 1a): truncated discrete power law
        # with exponent calibrated so the mean hits the target
        # articles-per-creator, then nudged to the exact article total. The
        # cap keeps every synthetic creator below the case-study maximum so
        # "Barack Obama has the most articles" (§3.2.1) holds at every scale.
        cap = max(3, int(420 * scale))
        if counts:
            cap = min(cap, max(max(counts) - 1, 2))
        raw = self._sample_power_law_counts(
            remaining_creators, remaining_articles, cap
        )

        for i in range(remaining_creators):
            reliable = rng.random() < 0.55
            reliability = rng.beta(6, 3) if reliable else rng.beta(3, 6)
            first = wp.FIRST_NAMES[rng.integers(len(wp.FIRST_NAMES))]
            last = wp.LAST_NAMES[rng.integers(len(wp.LAST_NAMES))]
            name = f"{first} {last}".title()
            party = wp.PARTIES[rng.integers(len(wp.PARTIES))]
            cid = f"u{len(creators):05d}"
            creators.append(
                Creator(
                    creator_id=cid,
                    name=name,
                    profile=self._creator_profile(name, party, reliability),
                )
            )
            counts.append(int(raw[i]))
            mu.append(1.0 + 5.0 * reliability)

        return creators, counts, mu, case_histograms

    @staticmethod
    def _histogram_mean(hist: Sequence[int]) -> float:
        """Mean score of a [PoF..True] histogram (scores 1..6)."""
        total = sum(hist)
        if total == 0:
            return 3.5
        return sum((i + 1) * c for i, c in enumerate(hist)) / total

    def _sample_power_law_counts(self, n: int, total: int, cap: int) -> np.ndarray:
        """Sample ``n`` counts >= 1 from a truncated power law summing to ``total``.

        The exponent is calibrated by bisection so the truncated mean matches
        ``total / n``; the residual is then distributed with preferential
        attachment (probability ∝ current count), which preserves the heavy
        tail where uniform nudging would flatten it.
        """
        if total < n:
            raise ValueError(f"cannot give {n} creators >=1 article from {total}")
        target_mean = total / n
        # Honor the requested cap where possible but guarantee feasibility
        # (the mean must be reachable with some headroom).
        cap = max(cap, int(np.ceil(1.25 * target_mean)) + 1, 3)
        support = np.arange(1, cap + 1, dtype=np.float64)

        def truncated_mean(alpha: float) -> float:
            weights = support ** (-alpha)
            return float((support * weights).sum() / weights.sum())

        lo, hi = 0.05, 6.0  # mean decreasing in alpha
        if truncated_mean(lo) < target_mean:
            alpha = lo
        elif truncated_mean(hi) > target_mean:
            alpha = hi
        else:
            for _ in range(60):
                mid = 0.5 * (lo + hi)
                if truncated_mean(mid) > target_mean:
                    lo = mid
                else:
                    hi = mid
            alpha = 0.5 * (lo + hi)

        probs = support ** (-alpha)
        probs /= probs.sum()
        counts = self.rng.choice(np.arange(1, cap + 1), size=n, p=probs).astype(np.int64)
        return self._adjust_counts(counts, total, cap)

    def _adjust_counts(self, counts: np.ndarray, target_total: int, cap: int) -> np.ndarray:
        """Nudge sampled counts so they sum exactly to ``target_total``.

        Keeps every creator at >= 1 article and respects the cap. Increments
        go to creators with probability ∝ their current count (preferential
        attachment), decrements ∝ excess over 1, so the distribution shape
        survives the correction.
        """
        counts = counts.astype(np.int64).copy()
        rng = self.rng
        min_total, max_total = len(counts), cap * len(counts)
        if not min_total <= target_total <= max_total:
            raise ValueError(
                f"target total {target_total} infeasible for {len(counts)} "
                f"creators with cap {cap}"
            )
        diff = target_total - int(counts.sum())
        while diff != 0:
            if diff > 0:
                eligible = counts < cap
                weights = np.where(eligible, counts, 0).astype(np.float64)
                if weights.sum() == 0:
                    weights = eligible.astype(np.float64)
                step = 1
            else:
                weights = np.maximum(counts - 1, 0).astype(np.float64)
                step = -1
            weights /= weights.sum()
            # Batch the adjustment: spread |diff| increments over creators.
            picks = rng.choice(len(counts), size=abs(diff), p=weights)
            adjustment = np.bincount(picks, minlength=len(counts)) * step
            proposed = counts + adjustment
            proposed = np.clip(proposed, 1, cap)
            counts = proposed
            diff = target_total - int(counts.sum())
        return counts

    def _creator_profile(self, name: str, party: str, reliability: float) -> str:
        """Bio text with a weak reliability signal (title, party, state, cues)."""
        rng = self.rng
        title = wp.CREATOR_TITLES[rng.integers(len(wp.CREATOR_TITLES))]
        state = wp.US_STATES[rng.integers(len(wp.US_STATES))]
        words = name.lower().split() + title.split() + [party, state]
        strength = self.config.profile_signal_strength
        p_reliable = float(
            np.clip(0.5 + 0.6 * strength * (2.0 * reliability - 1.0), 0.05, 0.95)
        )
        for _ in range(8):
            pool = (
                wp.RELIABLE_PROFILE_WORDS
                if rng.random() < p_reliable
                else wp.UNRELIABLE_PROFILE_WORDS
            )
            words.append(pool[rng.integers(len(pool))])
        for _ in range(5):
            words.append(wp.SHARED_WORDS[rng.integers(len(wp.SHARED_WORDS))])
        return " ".join(words)

    # ------------------------------------------------------------------
    # Articles
    # ------------------------------------------------------------------
    def _make_articles(
        self,
        dataset: NewsDataset,
        creators: List[Creator],
        publication_counts: List[int],
        creator_mu: List[float],
        case_histograms: Dict[str, List[int]],
        subjects: List[Subject],
        subject_weights: np.ndarray,
        subject_bias: np.ndarray,
        target_links: int,
    ) -> None:
        rng = self.rng
        config = self.config
        n_articles = sum(publication_counts)
        n_subjects = len(subjects)

        # Pre-plan per-article subject-set sizes so total links are exact.
        sizes = 1 + rng.poisson(target_links / n_articles - 1.0, size=n_articles)
        sizes = np.clip(sizes, 1, min(8, n_subjects))
        sizes = self._adjust_sizes(sizes, target_links, min(8, n_subjects))

        # Pre-draw case-study label sequences (exact histograms).
        case_labels: Dict[str, List[CredibilityLabel]] = {}
        for cid, hist in case_histograms.items():
            seq = [
                CredibilityLabel(score)
                for score, count in zip(range(1, 7), hist)
                for _ in range(count)
            ]
            rng.shuffle(seq)
            case_labels[cid] = seq

        article_index = 0
        for creator, count, mu in zip(creators, publication_counts, creator_mu):
            for k in range(count):
                sid_indices = self._sample_subjects(
                    int(sizes[article_index]), subject_weights, article_index, n_subjects
                )
                if creator.creator_id in case_labels:
                    label = case_labels[creator.creator_id][k]
                else:
                    label = self._sample_label(mu, subject_bias[sid_indices])
                text = self._article_text(label, [subjects[i] for i in sid_indices])
                dataset.add_article(
                    Article(
                        article_id=f"n{article_index:06d}",
                        text=text,
                        label=label,
                        creator_id=creator.creator_id,
                        subject_ids=[subjects[i].subject_id for i in sid_indices],
                    )
                )
                article_index += 1

    def _adjust_sizes(self, sizes: np.ndarray, target_total: int, cap: int) -> np.ndarray:
        """Nudge subject-set sizes to hit the exact link total."""
        sizes = sizes.astype(np.int64)
        rng = self.rng
        max_possible = cap * len(sizes)
        target_total = min(target_total, max_possible)
        diff = target_total - int(sizes.sum())
        guard = 0
        while diff != 0:
            guard += 1
            if guard > 20 * abs(target_total) + 1000:
                raise RuntimeError("size adjustment failed to converge")
            idx = rng.integers(len(sizes))
            if diff > 0 and sizes[idx] < cap:
                sizes[idx] += 1
                diff -= 1
            elif diff < 0 and sizes[idx] > 1:
                sizes[idx] -= 1
                diff += 1
        return sizes

    def _sample_subjects(
        self, size: int, weights: np.ndarray, article_index: int, n_subjects: int
    ) -> np.ndarray:
        """Pick a subject set; element 0 is the article's *primary* topic.

        The first ``n_subjects`` articles seed each subject once so no
        subject ends up article-less.
        """
        rng = self.rng
        chosen = rng.choice(n_subjects, size=size, replace=False, p=weights)
        if article_index < n_subjects and article_index not in chosen:
            chosen[0] = article_index
        return chosen

    def _sample_label(self, creator_mu: float, biases: np.ndarray) -> CredibilityLabel:
        """Blend creator mean score with subject bias into a 6-class draw.

        The primary subject (``biases[0]``) dominates the subject term so
        per-subject skews like Fig 1(d)'s health-vs-economy survive articles
        having ~3.5 subjects each.
        """
        config = self.config
        if biases.size:
            primary = float(biases[0])
            rest = float(biases[1:].mean()) if biases.size > 1 else primary
            subject_bias = 0.75 * primary + 0.25 * rest
            subject_mu = 1.0 + 5.0 * subject_bias
        else:
            subject_mu = 3.5
        if self.rng.random() < config.idiosyncrasy:
            # Statement-specific truthfulness, detached from author/topic.
            mu, temperature = 3.5, 2.2
        else:
            w_sum = config.creator_weight + config.subject_weight
            mu = (
                config.creator_weight * creator_mu + config.subject_weight * subject_mu
            ) / w_sum
            temperature = config.label_temperature
        scores = np.arange(1, 7, dtype=np.float64)
        logits = -((scores - mu) ** 2) / (2.0 * temperature ** 2)
        probs = np.exp(logits - logits.max())
        probs /= probs.sum()
        return CredibilityLabel(int(self.rng.choice(6, p=probs)) + 1)

    def _article_text(self, label: CredibilityLabel, subjects: List[Subject]) -> str:
        """Statement text whose vocabulary carries a *tilted* label signal.

        Both classes draw signal tokens from BOTH label pools; only the
        mixture is tilted by the credibility score, so the class-conditional
        word distributions overlap the way real political text does.
        """
        rng = self.rng
        config = self.config
        length = max(config.min_article_length, int(rng.poisson(config.mean_article_length)))
        score = int(label)
        tilt = 0.30 * config.text_signal_strength
        p_true_pool = float(np.clip(0.5 + 2.0 * tilt * (score - 3.5) / 5.0, 0.02, 0.98))
        signal_p = config.signal_fraction
        topic_pools = [
            wp.SUBJECT_TOPIC_WORDS.get(s.name) or wp.generic_subject_topic_words(int(s.subject_id[1:]))
            for s in subjects
        ]
        words: List[str] = []
        for _ in range(length):
            roll = rng.random()
            if roll < signal_p:
                pool = (
                    wp.TRUE_LEANING_WORDS
                    if rng.random() < p_true_pool
                    else wp.FALSE_LEANING_WORDS
                )
                words.append(pool[rng.integers(len(pool))])
            elif roll < signal_p + 0.22 and topic_pools:
                pool = topic_pools[rng.integers(len(topic_pools))]
                words.append(pool[rng.integers(len(pool))])
            else:
                words.append(wp.SHARED_WORDS[rng.integers(len(wp.SHARED_WORDS))])
        return " ".join(words)


def generate_dataset(scale: float = 0.05, seed: int = 7, **overrides) -> NewsDataset:
    """Convenience wrapper: one-call synthetic corpus at the given scale."""
    config = GeneratorConfig(scale=scale, seed=seed, **overrides)
    return PolitiFactGenerator(config).generate()
