"""Word pools used by the synthetic PolitiFact corpus generator.

The pools encode the signal structure the paper's Figure 1(b)/(c) documents:
a shared political vocabulary, words that appear disproportionately in
True-leaning statements ("president", "income", "tax", "american", ...) and
words that appear disproportionately in False-leaning ones ("obama",
"republican", "clinton", "obamacare", "gun", ...). Per-subject topic pools
give the article-subject links textual grounding.
"""

from __future__ import annotations

# Words the paper's Fig 1(b) highlights for True articles, padded with
# plausible policy vocabulary of the same register.
TRUE_LEANING_WORDS = [
    "president", "income", "tax", "american", "percent", "year", "rate",
    "budget", "states", "spending", "million", "billion", "average", "report",
    "increase", "growth", "workers", "wage", "federal", "record", "history",
    "voted", "bill", "senate", "congress", "according", "data", "study",
    "census", "fact", "department", "official", "analysis", "measure",
]

# Words the paper's Fig 1(c) highlights for False articles, padded likewise.
FALSE_LEANING_WORDS = [
    "obama", "republican", "clinton", "obamacare", "gun", "illegal", "muslim",
    "liberal", "socialist", "radical", "destroy", "hoax", "secret", "scandal",
    "corrupt", "rigged", "fraud", "conspiracy", "amnesty", "takeover",
    "banned", "confiscate", "bankrupt", "disaster", "crooked", "lie", "fake",
    "invasion", "scheme", "cover", "outrage", "shocking", "exposed", "plot",
]

# Neutral shared political vocabulary present in statements of every label.
SHARED_WORDS = [
    "said", "people", "new", "government", "country", "law", "public",
    "plan", "policy", "campaign", "vote", "voters", "house", "committee",
    "support", "oppose", "proposal", "program", "funding", "statement",
    "debate", "speech", "interview", "week", "month", "time", "number",
    "americans", "national", "administration", "governor", "senator",
    "district", "office", "members", "group", "issue", "change", "work",
]

# The paper's Fig 1(d) lists the top-20 subjects (largest article counts).
# Order here is descending by article count: "health" is largest (~1,572
# articles, 46.5% true), "economy" second (~1,498, 63.2% true).
TOP_SUBJECT_NAMES = [
    "health", "economy", "taxes", "education", "federal", "jobs", "state",
    "candidates", "elections", "immigration", "foreign", "crime", "history",
    "energy", "legal", "environment", "guns", "military", "terrorism", "job",
]

# Topic vocabulary for each named subject, used in both article text and the
# subject's own description.
SUBJECT_TOPIC_WORDS = {
    "health": ["healthcare", "insurance", "medicare", "medicaid", "hospital",
               "doctors", "patients", "coverage", "premiums", "disease"],
    "economy": ["economy", "economic", "jobs", "unemployment", "gdp",
                "recession", "growth", "trade", "manufacturing", "wages"],
    "taxes": ["taxes", "taxpayer", "irs", "deduction", "revenue", "cuts",
              "brackets", "refund", "property", "sales"],
    "education": ["schools", "students", "teachers", "tuition", "college",
                  "curriculum", "testing", "graduation", "literacy", "loans"],
    "federal": ["federal", "agency", "regulation", "bureaucracy", "oversight",
                "mandate", "shutdown", "appropriations", "debt", "deficit"],
    "jobs": ["employment", "hiring", "layoffs", "workforce", "factory",
             "outsourcing", "payroll", "labor", "careers", "training"],
    "state": ["state", "legislature", "statehouse", "county", "municipal",
              "local", "ordinance", "commission", "ballot", "referendum"],
    "candidates": ["candidate", "primary", "nomination", "endorsement",
                   "polling", "frontrunner", "challenger", "incumbent",
                   "ticket", "running"],
    "elections": ["election", "turnout", "registration", "precinct",
                  "absentee", "recount", "electoral", "midterm", "voting",
                  "districts"],
    "immigration": ["immigration", "border", "visa", "citizenship", "asylum",
                    "deportation", "refugees", "migrants", "wall", "customs"],
    "foreign": ["foreign", "diplomacy", "treaty", "sanctions", "embassy",
                "allies", "nato", "trade", "summit", "relations"],
    "crime": ["crime", "police", "prison", "sentencing", "homicide",
              "parole", "prosecutor", "felony", "courts", "justice"],
    "history": ["history", "historical", "founding", "constitution",
                "amendment", "precedent", "archives", "century", "era",
                "heritage"],
    "energy": ["energy", "oil", "gas", "renewable", "solar", "wind", "coal",
               "pipeline", "drilling", "emissions"],
    "legal": ["legal", "court", "judge", "ruling", "lawsuit", "appeal",
              "statute", "constitutional", "attorney", "verdict"],
    "environment": ["environment", "climate", "pollution", "epa",
                    "conservation", "wildlife", "emissions", "warming",
                    "water", "cleanup"],
    "guns": ["firearms", "weapons", "background", "checks", "rifle",
             "ammunition", "concealed", "permit", "shooting", "nra"],
    "military": ["military", "troops", "veterans", "defense", "pentagon",
                 "deployment", "navy", "army", "combat", "base"],
    "terrorism": ["terrorism", "terrorist", "attack", "security", "threat",
                  "intelligence", "homeland", "extremist", "isis", "plot"],
    "job": ["job", "position", "salary", "promotion", "duties", "resume",
            "interview", "occupation", "profession", "vacancy"],
}

# Vocabulary for creator profile text.
CREATOR_TITLES = [
    "senator", "governor", "representative", "mayor", "political analyst",
    "columnist", "party chair", "lobbyist", "commentator", "strategist",
    "attorney general", "congressman", "state legislator", "activist",
    "radio host", "blogger", "spokesperson", "policy advisor",
]
PARTIES = ["democrat", "republican", "independent"]
US_STATES = [
    "alabama", "alaska", "arizona", "arkansas", "california", "colorado",
    "connecticut", "delaware", "florida", "georgia", "hawaii", "idaho",
    "illinois", "indiana", "iowa", "kansas", "kentucky", "louisiana",
    "maine", "maryland", "massachusetts", "michigan", "minnesota",
    "mississippi", "missouri", "montana", "nebraska", "nevada", "ohio",
    "oklahoma", "oregon", "pennsylvania", "tennessee", "texas", "utah",
    "vermont", "virginia", "washington", "wisconsin", "wyoming",
]

# Profile words weakly correlated with creator reliability: reliable
# creators' bios mention fact-driven work, unreliable ones partisan media.
RELIABLE_PROFILE_WORDS = [
    "economist", "professor", "researcher", "nonpartisan", "policy",
    "legislation", "budget", "veteran", "moderate", "bipartisan",
]
UNRELIABLE_PROFILE_WORDS = [
    "provocative", "controversial", "viral", "partisan", "outspoken",
    "firebrand", "talkshow", "tabloid", "fringe", "agitator",
]

FIRST_NAMES = [
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael",
    "linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "daniel",
    "nancy", "matthew", "lisa", "anthony", "betty", "mark", "margaret",
]
LAST_NAMES = [
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson",
]


def generic_subject_topic_words(index: int) -> list[str]:
    """Deterministic topic pool for unnamed tail subjects."""
    return [f"topic{index}word{j}" for j in range(8)]
