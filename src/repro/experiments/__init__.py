"""Experiment harness reproducing the paper's evaluation (Figures 1/4/5, Table 1)."""

from .error_analysis import (
    error_report,
    errors_by_creator,
    errors_by_subject,
    hardest_articles,
    render_confusion,
)
from .export import load_sweep, save_sweep, sweep_to_csv
from .figures import (
    ClaimCheck,
    check_paper_claims,
    figure1,
    figure4,
    figure5,
    render_claims,
    render_timings,
    table1,
)
from .harness import (
    BINARY_METRICS,
    ENTITY_KINDS,
    MULTI_METRICS,
    PAPER_THETAS,
    CellResult,
    SweepResult,
    evaluate_predictions,
    run_sweep,
)
from .report import ReportPaths, generate_full_report
from .registry import PAPER_METHOD_ORDER, default_methods, extended_methods
from .saliency import WordAttribution, explain_article, explain_creator, explain_subject
from .tuning import TrialResult, best_config, expand_grid, grid_search

__all__ = [
    "run_sweep",
    "SweepResult",
    "CellResult",
    "evaluate_predictions",
    "PAPER_THETAS",
    "ENTITY_KINDS",
    "BINARY_METRICS",
    "MULTI_METRICS",
    "default_methods",
    "extended_methods",
    "PAPER_METHOD_ORDER",
    "figure1",
    "figure4",
    "figure5",
    "table1",
    "check_paper_claims",
    "render_claims",
    "render_timings",
    "ClaimCheck",
    "save_sweep",
    "load_sweep",
    "sweep_to_csv",
    "error_report",
    "errors_by_creator",
    "errors_by_subject",
    "hardest_articles",
    "render_confusion",
    "grid_search",
    "expand_grid",
    "best_config",
    "TrialResult",
    "explain_article",
    "explain_creator",
    "explain_subject",
    "WordAttribution",
    "generate_full_report",
    "ReportPaths",
]
