"""Error analysis for credibility predictions.

Tools a practitioner reaches for after the headline metrics: confusion
matrices rendered with label names, the hardest (most confidently wrong)
articles, and error breakdowns by creator and by subject — which localize
whether a model fails on text or on graph structure.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

import numpy as np

from ..data.schema import CredibilityLabel, NewsDataset
from ..metrics import confusion_matrix


def render_confusion(
    y_true: Sequence[int], y_pred: Sequence[int], num_classes: int = 6
) -> str:
    """Confusion matrix with Truth-O-Meter row/column labels."""
    matrix = confusion_matrix(y_true, y_pred, num_classes=num_classes)
    if num_classes == 6:
        names = [CredibilityLabel.from_class_index(i).display_name for i in range(6)]
    else:
        names = [f"class {i}" for i in range(num_classes)]
    width = max(len(n) for n in names) + 1
    header = " " * width + " ".join(f"{n[:7]:>8s}" for n in names)
    lines = ["rows = truth, cols = predicted", header]
    for i, name in enumerate(names):
        cells = " ".join(f"{matrix[i, j]:>8d}" for j in range(num_classes))
        lines.append(f"{name:<{width}s}{cells}")
    return "\n".join(lines)


@dataclasses.dataclass
class HardExample:
    """One confidently-wrong prediction."""

    article_id: str
    text: str
    truth: CredibilityLabel
    predicted: CredibilityLabel
    confidence: float  # predicted-class probability

    def __str__(self):
        return (
            f"{self.article_id}: predicted {self.predicted.display_name} "
            f"({self.confidence:.2f}) but truth is {self.truth.display_name} | "
            f"{self.text[:60]}..."
        )


def hardest_articles(
    dataset: NewsDataset,
    probabilities: Dict[str, np.ndarray],
    article_ids: Sequence[str],
    top_k: int = 10,
) -> List[HardExample]:
    """Most confidently wrong predictions among ``article_ids``.

    ``probabilities`` maps article id -> 6-class probability vector (e.g.
    from ``FakeDetector.predict_proba("article")``).
    """
    examples = []
    for aid in article_ids:
        probs = probabilities[aid]
        predicted = int(np.argmax(probs))
        truth = dataset.articles[aid].label
        if predicted == truth.class_index:
            continue
        examples.append(
            HardExample(
                article_id=aid,
                text=dataset.articles[aid].text,
                truth=truth,
                predicted=CredibilityLabel.from_class_index(predicted),
                confidence=float(probs[predicted]),
            )
        )
    examples.sort(key=lambda e: -e.confidence)
    return examples[:top_k]


@dataclasses.dataclass
class GroupErrorRow:
    """Binary error rate of one creator's or subject's articles."""

    name: str
    total: int
    errors: int

    @property
    def error_rate(self) -> float:
        return self.errors / self.total if self.total else 0.0


def errors_by_creator(
    dataset: NewsDataset,
    predictions: Dict[str, int],
    article_ids: Sequence[str],
    min_articles: int = 2,
) -> List[GroupErrorRow]:
    """Bi-class article error rates grouped by creator, worst first."""
    return _group_errors(
        dataset, predictions, article_ids,
        key=lambda article: [article.creator_id],
        name_of=lambda eid: dataset.creators[eid].name,
        min_articles=min_articles,
    )


def errors_by_subject(
    dataset: NewsDataset,
    predictions: Dict[str, int],
    article_ids: Sequence[str],
    min_articles: int = 2,
) -> List[GroupErrorRow]:
    """Bi-class article error rates grouped by subject, worst first."""
    return _group_errors(
        dataset, predictions, article_ids,
        key=lambda article: article.subject_ids,
        name_of=lambda eid: dataset.subjects[eid].name,
        min_articles=min_articles,
    )


def _group_errors(dataset, predictions, article_ids, key, name_of, min_articles):
    totals: Dict[str, int] = {}
    errors: Dict[str, int] = {}
    for aid in article_ids:
        article = dataset.articles[aid]
        wrong = int(predictions[aid] >= 3) != article.label.binary
        for group in key(article):
            totals[group] = totals.get(group, 0) + 1
            if wrong:
                errors[group] = errors.get(group, 0) + 1
    rows = [
        GroupErrorRow(name=name_of(g), total=t, errors=errors.get(g, 0))
        for g, t in totals.items()
        if t >= min_articles
    ]
    rows.sort(key=lambda r: (-r.error_rate, -r.total))
    return rows


def error_report(
    dataset: NewsDataset,
    predictions: Dict[str, int],
    probabilities: Dict[str, np.ndarray],
    article_ids: Sequence[str],
    top_k: int = 5,
) -> str:
    """Full text report: confusion matrix, hard examples, group breakdowns."""
    y_true = [dataset.articles[a].label.class_index for a in article_ids]
    y_pred = [predictions[a] for a in article_ids]
    sections = ["== Confusion matrix ==", render_confusion(y_true, y_pred)]

    hard = hardest_articles(dataset, probabilities, article_ids, top_k=top_k)
    sections.append("\n== Most confidently wrong ==")
    sections.extend(f"  {example}" for example in hard)

    sections.append("\n== Worst creators (bi-class error rate) ==")
    for row in errors_by_creator(dataset, predictions, article_ids)[:top_k]:
        sections.append(f"  {row.name:<22s} {row.errors}/{row.total} = {row.error_rate:.0%}")
    sections.append("\n== Worst subjects ==")
    for row in errors_by_subject(dataset, predictions, article_ids)[:top_k]:
        sections.append(f"  {row.name:<22s} {row.errors}/{row.total} = {row.error_rate:.0%}")
    return "\n".join(sections)
