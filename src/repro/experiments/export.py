"""Sweep result persistence and export (JSON round-trip, CSV for plotting).

A full θ-sweep is expensive; these helpers let a run be archived, reloaded
for later analysis, and dumped as tidy CSV (one row per method × kind ×
θ × fold × metric) for external plotting tools.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from ..metrics import BinaryMetrics, MultiClassMetrics
from .harness import CellResult, SweepResult

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_sweep(result: SweepResult, path: PathLike) -> None:
    """Serialize a :class:`SweepResult` to JSON."""
    payload = {
        "format": _FORMAT_VERSION,
        "methods": result.methods,
        "thetas": result.thetas,
        "folds": result.folds,
        "failures": [list(f) for f in result.failures],
        "cells": {
            method: {
                kind: {
                    str(theta): [
                        {
                            "binary": cell.binary.as_dict(),
                            "multi": cell.multi.as_dict(),
                            "train_seconds": cell.train_seconds,
                            "num_test": cell.num_test,
                        }
                        for cell in by_theta[theta]
                    ]
                    for theta in result.thetas
                }
                for kind, by_theta in by_kind.items()
            }
            for method, by_kind in result.cells.items()
        },
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_sweep(path: PathLike) -> SweepResult:
    """Load a sweep saved by :func:`save_sweep`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != _FORMAT_VERSION:
        raise ValueError(f"unsupported sweep format {payload.get('format')!r}")
    thetas = [float(t) for t in payload["thetas"]]
    cells = {}
    for method, by_kind in payload["cells"].items():
        cells[method] = {}
        for kind, by_theta in by_kind.items():
            cells[method][kind] = {}
            for theta_key, cell_list in by_theta.items():
                cells[method][kind][float(theta_key)] = [
                    CellResult(
                        binary=BinaryMetrics(**cell["binary"]),
                        multi=MultiClassMetrics(**cell["multi"]),
                        train_seconds=cell["train_seconds"],
                        num_test=cell["num_test"],
                    )
                    for cell in cell_list
                ]
    return SweepResult(
        methods=list(payload["methods"]),
        thetas=thetas,
        folds=int(payload["folds"]),
        cells=cells,
        failures=[tuple(f) for f in payload.get("failures", [])],
    )


def sweep_to_csv(result: SweepResult, path: PathLike) -> int:
    """Write tidy CSV; returns the number of data rows written."""
    rows = 0
    with Path(path).open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["method", "kind", "theta", "fold", "problem", "metric", "value"]
        )
        for method, by_kind in result.cells.items():
            for kind, by_theta in by_kind.items():
                for theta, cell_list in by_theta.items():
                    for fold, cell in enumerate(cell_list):
                        for problem, metrics in (
                            ("binary", cell.binary.as_dict()),
                            ("multi", cell.multi.as_dict()),
                        ):
                            for metric, value in metrics.items():
                                writer.writerow(
                                    [method, kind, theta, fold, problem, metric, value]
                                )
                                rows += 1
    return rows
