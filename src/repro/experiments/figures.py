"""Per-figure reproduction entry points.

``figure4``/``figure5`` render a :class:`SweepResult` as the paper's 12-panel
grids (text tables, one per panel). ``figure1`` and ``table1`` regenerate the
dataset-analysis artifacts. ``check_paper_claims`` verifies the qualitative
claims of §5.2 against a sweep.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from ..data.analysis import (
    creator_case_study,
    creator_publication_distribution,
    distinctive_words,
    frequent_words,
    label_distribution,
    most_prolific_creator,
    network_properties,
    subject_credibility_table,
)
from ..data.schema import NewsDataset
from .harness import BINARY_METRICS, ENTITY_KINDS, MULTI_METRICS, SweepResult

_PANEL_LETTERS = "abcdefghijkl"


def _render_panel(
    result: SweepResult, kind: str, metric: str, problem: str, title: str
) -> str:
    lines = [title]
    header = "method        " + "  ".join(f"θ={t:<4.1f}" for t in result.thetas)
    lines.append(header)
    for method in result.methods:
        series = result.series(method, kind, metric, problem)
        row = f"{method:13s} " + "  ".join(f"{v:.3f} " for v in series)
        lines.append(row)
    return "\n".join(lines)


def figure4(result: SweepResult) -> str:
    """Figure 4: bi-class Accuracy/F1/Precision/Recall × article/creator/subject."""
    panels = []
    i = 0
    for kind in ENTITY_KINDS:
        for metric in BINARY_METRICS:
            title = (
                f"Figure 4({_PANEL_LETTERS[i]}): Bi-Class {kind.capitalize()} "
                f"{metric.replace('_', ' ').title()}"
            )
            panels.append(_render_panel(result, kind, metric, "binary", title))
            i += 1
    return "\n\n".join(panels)


def figure5(result: SweepResult) -> str:
    """Figure 5: multi-class Accuracy/Macro-F1/Precision/Recall grids."""
    panels = []
    i = 0
    for kind in ENTITY_KINDS:
        for metric in MULTI_METRICS:
            title = (
                f"Figure 5({_PANEL_LETTERS[i]}): Multi-Class {kind.capitalize()} "
                f"{metric.replace('_', ' ').title()}"
            )
            panels.append(_render_panel(result, kind, metric, "multi", title))
            i += 1
    return "\n\n".join(panels)


def render_timings(result: SweepResult) -> str:
    """Mean training wall-clock per method across all (θ, fold) cells."""
    lines = ["Mean training time per method (seconds per fit, all cells)"]
    for method in result.methods:
        times = [
            cell.train_seconds
            for by_theta in (result.cells[method]["article"],)
            for cells in by_theta.values()
            for cell in cells
        ]
        if times:
            import numpy as np

            lines.append(f"  {method:<13s} {np.mean(times):7.2f}s")
    return "\n".join(lines)


def table1(dataset: NewsDataset) -> str:
    """Table 1: properties of the heterogeneous network."""
    props = network_properties(dataset)
    lines = [
        "Table 1: Properties of the Heterogeneous Network",
        f"  # node  articles              {props['articles']:>8d}",
        f"          creators              {props['creators']:>8d}",
        f"          subjects              {props['subjects']:>8d}",
        f"  # link  creator-article       {props['creator_article_links']:>8d}",
        f"          article-subject       {props['article_subject_links']:>8d}",
    ]
    return "\n".join(lines)


def figure1(dataset: NewsDataset, top_words: int = 12, top_subjects: int = 20) -> str:
    """Figure 1: all six dataset-analysis panels as text."""
    sections: List[str] = []

    fit = creator_publication_distribution(dataset)
    name, count = most_prolific_creator(dataset)
    sections.append(
        "Figure 1(a): Creator publication distribution (log-log)\n"
        f"  power-law exponent {fit.exponent:.2f}, R^2 {fit.r_squared:.2f}, "
        f"power-law-like: {fit.is_power_law_like}\n"
        f"  most prolific creator: {name} ({count} articles)"
    )

    words = frequent_words(dataset, top_k=top_words)
    distinct = distinctive_words(dataset, top_k=8)
    sections.append(
        "Figure 1(b): Frequent words in TRUE articles\n  "
        + ", ".join(f"{w}({c})" for w, c in words["true"])
        + "\n  distinctive: "
        + ", ".join(distinct["true"])
    )
    sections.append(
        "Figure 1(c): Frequent words in FALSE articles\n  "
        + ", ".join(f"{w}({c})" for w, c in words["false"])
        + "\n  distinctive: "
        + ", ".join(distinct["false"])
    )

    rows = subject_credibility_table(dataset, top_k=top_subjects)
    table_lines = ["Figure 1(d): Top subjects by article count (true vs false)"]
    for row in rows:
        table_lines.append(
            f"  {row.name:<14s} total={row.total:>6d}  true={row.true_count:>6d} "
            f"({row.true_fraction:5.1%})  false={row.false_count:>6d}"
        )
    sections.append("\n".join(table_lines))

    studies = creator_case_study(dataset)
    case_lines = ["Figure 1(e)/(f): Case-study creator label histograms"]
    for study in studies:
        hist = "  ".join(
            f"{label.display_name}={count}" for label, count in study.histogram.items()
        )
        case_lines.append(
            f"  {study.name:<16s} total={study.total:>5d} true-frac={study.true_fraction:5.1%}\n"
            f"    {hist}"
        )
    sections.append("\n".join(case_lines))

    dist = label_distribution(dataset)
    sections.append(
        "Overall label distribution\n  "
        + ", ".join(f"{label.display_name}={count}" for label, count in dist.items())
    )
    return "\n\n".join(sections)


# ----------------------------------------------------------------------
# Qualitative paper-claim checks
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ClaimCheck:
    claim: str
    passed: bool
    detail: str


def check_paper_claims(result: SweepResult) -> List[ClaimCheck]:
    """Verify §5.2's qualitative findings against a sweep.

    1. FakeDetector has the best θ-averaged bi-class Accuracy and F1 on each
       node type ("can achieve the best performance ... for all the
       evaluation metrics except Recall").
    2. FakeDetector has the best multi-class Accuracy ("advantages ... much
       more significant ... in the multi-class prediction setting").
    3. Multi-class accuracy is lower than bi-class accuracy for every method
       ("the multi-class credibility inference scenario is much more
       difficult").
    """
    checks: List[ClaimCheck] = []
    if "FakeDetector" not in result.methods:
        return [ClaimCheck("FakeDetector present in sweep", False, "method missing")]

    for kind in ENTITY_KINDS:
        for metric in ("accuracy", "f1"):
            best = result.best_method(kind, metric, "binary")
            checks.append(
                ClaimCheck(
                    claim=f"FakeDetector best bi-class {metric} on {kind}s",
                    passed=best == "FakeDetector",
                    detail=f"best={best} "
                    + ", ".join(
                        f"{m}={result.mean_metric(m, kind, metric, 'binary'):.3f}"
                        for m in result.methods
                    ),
                )
            )
        best_multi = result.best_method(kind, "accuracy", "multi")
        checks.append(
            ClaimCheck(
                claim=f"FakeDetector best multi-class accuracy on {kind}s",
                passed=best_multi == "FakeDetector",
                detail=f"best={best_multi}",
            )
        )

    harder: List[Tuple[str, float, float]] = []
    for method in result.methods:
        bi = result.mean_metric(method, "article", "accuracy", "binary")
        multi = result.mean_metric(method, "article", "accuracy", "multi")
        harder.append((method, bi, multi))
    all_harder = all(multi < bi for _, bi, multi in harder)
    checks.append(
        ClaimCheck(
            claim="multi-class article accuracy < bi-class for every method",
            passed=all_harder,
            detail="; ".join(f"{m}: bi={b:.3f} multi={mu:.3f}" for m, b, mu in harder),
        )
    )
    return checks


def render_claims(checks: List[ClaimCheck]) -> str:
    lines = ["Paper-claim verification:"]
    for check in checks:
        status = "PASS" if check.passed else "MISS"
        lines.append(f"  [{status}] {check.claim}")
        lines.append(f"         {check.detail}")
    return "\n".join(lines)
