"""Experiment harness: the paper's θ-sweep evaluation protocol (§5.1).

For each method, each fold and each sampling ratio θ, the harness trains on
the θ-subsampled training folds and evaluates on the held-out fold, for all
three node types, under both the bi-class and the 6-class problem settings.
One sweep therefore produces every series of both Figure 4 and Figure 5.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.schema import NewsDataset
from ..graph.sampling import TriSplit, tri_splits
from ..metrics import BinaryMetrics, MultiClassMetrics
from ..obs import get_logger
from .registry import MethodFactory

ENTITY_KINDS = ("article", "creator", "subject")
BINARY_METRICS = ("accuracy", "f1", "precision", "recall")
MULTI_METRICS = ("accuracy", "macro_f1", "macro_precision", "macro_recall")

#: Paper's sampling ratios θ ∈ {0.1, ..., 1.0}.
PAPER_THETAS = tuple(round(0.1 * i, 1) for i in range(1, 11))


@dataclasses.dataclass
class CellResult:
    """Metrics of one (method, kind, θ, fold) evaluation."""

    binary: BinaryMetrics
    multi: MultiClassMetrics
    train_seconds: float
    num_test: int


@dataclasses.dataclass
class SweepResult:
    """Aggregated sweep output.

    ``cells[method][kind][theta]`` is the list of per-fold
    :class:`CellResult`.
    """

    methods: List[str]
    thetas: List[float]
    folds: int
    cells: Dict[str, Dict[str, Dict[float, List[CellResult]]]]
    #: (method, theta, fold, error message) for cells lost to exceptions
    failures: List[tuple] = dataclasses.field(default_factory=list)

    # ------------------------------------------------------------------
    def series(self, method: str, kind: str, metric: str, problem: str = "binary") -> List[float]:
        """Mean metric value per θ (the y-series of one figure curve)."""
        out = []
        for theta in self.thetas:
            values = [
                getattr(cell.binary if problem == "binary" else cell.multi, metric)
                for cell in self.cells[method][kind][theta]
            ]
            out.append(float(np.mean(values)))
        return out

    def mean_metric(self, method: str, kind: str, metric: str, problem: str = "binary") -> float:
        """Metric averaged over every θ and fold."""
        return float(np.mean(self.series(method, kind, metric, problem)))

    def best_method(self, kind: str, metric: str, problem: str = "binary") -> str:
        """Which method has the highest θ-averaged metric."""
        return max(
            self.methods, key=lambda m: self.mean_metric(m, kind, metric, problem)
        )


def evaluate_predictions(
    dataset: NewsDataset, split: TriSplit, predictions_by_kind: Dict[str, Dict[str, int]]
) -> Dict[str, CellResult]:
    """Score one method's predictions on the held-out fold, per node type."""
    entities = {
        "article": (dataset.articles, split.articles.test),
        "creator": (dataset.creators, split.creators.test),
        "subject": (dataset.subjects, split.subjects.test),
    }
    results = {}
    for kind, (store, test_ids) in entities.items():
        labeled = [eid for eid in test_ids if store[eid].label is not None]
        if not labeled:
            continue
        predictions = predictions_by_kind[kind]
        y_true_multi = [store[eid].label.class_index for eid in labeled]
        y_pred_multi = [predictions[eid] for eid in labeled]
        # Bi-class grouping: {HT, MT, T} (class index >= 3) is positive.
        y_true_bin = [int(c >= 3) for c in y_true_multi]
        y_pred_bin = [int(c >= 3) for c in y_pred_multi]
        results[kind] = CellResult(
            binary=BinaryMetrics.compute(y_true_bin, y_pred_bin),
            multi=MultiClassMetrics.compute(y_true_multi, y_pred_multi),
            train_seconds=0.0,
            num_test=len(labeled),
        )
    return results


def run_sweep(
    dataset: NewsDataset,
    methods: Dict[str, MethodFactory],
    thetas: Sequence[float] = (0.1, 0.5, 1.0),
    folds: int = 1,
    k: int = 10,
    seed: int = 0,
    verbose: bool = False,
    raise_on_error: bool = False,
) -> SweepResult:
    """Run the full evaluation protocol.

    Parameters
    ----------
    dataset:
        The News-HSN corpus.
    methods:
        ``{legend name: factory(seed) -> CredibilityModel}``.
    thetas:
        Sampling ratios to sweep (the paper uses all of
        :data:`PAPER_THETAS`; benchmarks use a subset for CPU budget).
    folds:
        How many of the ``k`` CV folds to actually run (paper: all 10).
    k:
        Number of CV folds to cut.
    raise_on_error:
        When False (default), a method that raises during fit/predict
        loses that cell (recorded in ``result.failures``) but the sweep
        continues — one broken baseline shouldn't void a long run.
    """
    thetas = [float(t) for t in thetas]
    article_ids = sorted(dataset.articles)
    creator_ids = sorted(dataset.creators)
    subject_ids = sorted(dataset.subjects)
    article_labels = [dataset.articles[a].label.class_index for a in article_ids]

    all_splits = list(
        itertools.islice(
            tri_splits(article_ids, creator_ids, subject_ids, k=k, seed=seed,
                       article_labels=article_labels),
            folds,
        )
    )

    cells: Dict[str, Dict[str, Dict[float, List[CellResult]]]] = {
        name: {kind: {theta: [] for theta in thetas} for kind in ENTITY_KINDS}
        for name in methods
    }
    failures: List[tuple] = []
    logger = get_logger("experiments.sweep")

    for fold_index, base_split in enumerate(all_splits):
        for theta in thetas:
            rng = np.random.default_rng(seed * 1000 + fold_index * 100 + int(theta * 10))
            split = base_split.subsample_train(theta, rng)
            for name, factory in methods.items():
                start = time.perf_counter()
                try:
                    model = factory(seed + fold_index)
                    model.fit(dataset, split)
                    predictions = {
                        kind: model.predict(kind) for kind in ENTITY_KINDS
                    }
                except Exception as exc:  # noqa: BLE001 - shield the sweep
                    if raise_on_error:
                        raise
                    failures.append((name, theta, fold_index, repr(exc)))
                    if verbose:
                        logger.warning(
                            "cell_failed", fold=fold_index, theta=theta,
                            method=name, error=repr(exc),
                        )
                    continue
                elapsed = time.perf_counter() - start
                fold_results = evaluate_predictions(dataset, base_split, predictions)
                for kind, cell in fold_results.items():
                    cell.train_seconds = elapsed
                    cells[name][kind][theta].append(cell)
                if verbose:
                    art = fold_results.get("article")
                    acc = art.binary.accuracy if art else float("nan")
                    logger.info(
                        "cell", fold=fold_index, theta=theta, method=name,
                        article_bi_acc=acc, seconds=elapsed,
                    )

    return SweepResult(
        methods=list(methods),
        thetas=thetas,
        folds=len(all_splits),
        cells=cells,
        failures=failures,
    )
