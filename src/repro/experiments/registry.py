"""Method registry: the paper's six comparison methods as factories.

Factories take a seed and return a fresh :class:`CredibilityModel`, so the
sweep harness can re-instantiate methods per fold/θ. ``fast=True`` shrinks
training budgets for benchmark runs; ``fast=False`` uses fuller budgets for
the headline evaluation.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from ..baselines import (
    CredibilityModel,
    DeepWalkBaseline,
    FakeDetectorMethod,
    LabelPropagationBaseline,
    LINEBaseline,
    RNNBaseline,
    SVMBaseline,
)
from ..core.config import FakeDetectorConfig

MethodFactory = Callable[[int], CredibilityModel]

#: Legend order used in the paper's figures.
PAPER_METHOD_ORDER = ("FakeDetector", "lp", "deepwalk", "line", "svm", "rnn")


def default_methods(
    fast: bool = True,
    only: Optional[Sequence[str]] = None,
) -> Dict[str, MethodFactory]:
    """All six methods of §5.1.2, keyed by the paper's legend names."""
    if fast:
        fd_config = dict(
            epochs=120, explicit_dim=100, vocab_size=2000, max_seq_len=20,
            embed_dim=12, rnn_hidden=16, latent_dim=12, gdu_hidden=24,
            early_stop_patience=12, alpha=2e-3,
        )
        rnn_kwargs = dict(epochs=20, max_seq_len=20, embed_dim=12, hidden=16, latent=12)
        dw_kwargs = dict(epochs=2, num_walks=5, walk_length=20, dim=24)
        line_kwargs = dict(samples_per_edge=20, dim=24)
        svm_kwargs = dict(epochs=150, explicit_dim=80)
    else:
        fd_config = dict(epochs=150, explicit_dim=120, vocab_size=4000, max_seq_len=30, alpha=2e-3, early_stop_patience=15)
        rnn_kwargs = dict(epochs=40)
        dw_kwargs = dict(epochs=3, num_walks=8, walk_length=30, dim=32)
        line_kwargs = dict(samples_per_edge=40, dim=32)
        svm_kwargs = dict(epochs=250, explicit_dim=120)

    methods: Dict[str, MethodFactory] = {
        "FakeDetector": lambda seed: FakeDetectorMethod(
            FakeDetectorConfig(seed=seed, **fd_config)
        ),
        "lp": lambda seed: LabelPropagationBaseline(),
        "deepwalk": lambda seed: DeepWalkBaseline(seed=seed, **dw_kwargs),
        "line": lambda seed: LINEBaseline(seed=seed, **line_kwargs),
        "svm": lambda seed: SVMBaseline(seed=seed, **svm_kwargs),
        "rnn": lambda seed: RNNBaseline(seed=seed, **rnn_kwargs),
    }
    if only is not None:
        unknown = set(only) - set(methods)
        if unknown:
            raise KeyError(f"unknown methods requested: {sorted(unknown)}")
        methods = {name: methods[name] for name in only}
    return methods


def extended_methods(fast: bool = True) -> Dict[str, MethodFactory]:
    """The paper's six methods plus the extension baselines (node2vec, GCN)."""
    from ..baselines import GCNBaseline, Node2VecBaseline

    methods = default_methods(fast=fast)
    if fast:
        methods["node2vec"] = lambda seed: Node2VecBaseline(
            seed=seed, epochs=2, num_walks=5, walk_length=20, dim=24
        )
        methods["gcn"] = lambda seed: GCNBaseline(
            seed=seed, epochs=60, explicit_dim=80, hidden=24
        )
    else:
        methods["node2vec"] = lambda seed: Node2VecBaseline(seed=seed)
        methods["gcn"] = lambda seed: GCNBaseline(seed=seed, epochs=120)
    return methods
