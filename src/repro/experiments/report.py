"""One-call reproduction report: every artifact into one directory.

``generate_full_report`` runs the complete reproduction — Table 1, Figure 1,
the Figure 4/5 sweep, claim checks, timings — and writes each rendered
artifact plus the archived sweep to ``output_dir``. This is what the CLI
``report`` subcommand and CI-style reproduction runs call.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import Optional, Sequence, Union

from ..data.schema import NewsDataset
from .export import save_sweep, sweep_to_csv
from .figures import (
    check_paper_claims,
    figure1,
    figure4,
    figure5,
    render_claims,
    render_timings,
    table1,
)
from .harness import SweepResult, run_sweep
from .registry import default_methods

PathLike = Union[str, Path]


@dataclasses.dataclass
class ReportPaths:
    """Where each artifact landed."""

    directory: Path
    table1: Path
    figure1: Path
    figure4: Path
    figure5: Path
    claims: Path
    sweep_json: Path
    sweep_csv: Path
    summary: Path


def generate_full_report(
    dataset: NewsDataset,
    output_dir: PathLike,
    thetas: Sequence[float] = (0.1, 0.5, 1.0),
    folds: int = 1,
    seed: int = 0,
    fast: bool = True,
    sweep: Optional[SweepResult] = None,
    verbose: bool = False,
) -> ReportPaths:
    """Run everything and write the artifact set.

    Pass a precomputed ``sweep`` to skip re-running the method evaluation
    (e.g. one loaded via :func:`repro.experiments.load_sweep`).
    """
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    started = time.time()

    table1_text = table1(dataset)
    figure1_text = figure1(dataset)
    if sweep is None:
        sweep = run_sweep(
            dataset,
            default_methods(fast=fast),
            thetas=thetas,
            folds=folds,
            seed=seed,
            verbose=verbose,
        )
    figure4_text = figure4(sweep)
    figure5_text = figure5(sweep)
    claims_text = render_claims(check_paper_claims(sweep))
    timings_text = render_timings(sweep)

    paths = ReportPaths(
        directory=directory,
        table1=directory / "table1.txt",
        figure1=directory / "figure1.txt",
        figure4=directory / "figure4.txt",
        figure5=directory / "figure5.txt",
        claims=directory / "claims.txt",
        sweep_json=directory / "sweep.json",
        sweep_csv=directory / "sweep.csv",
        summary=directory / "SUMMARY.txt",
    )
    paths.table1.write_text(table1_text + "\n")
    paths.figure1.write_text(figure1_text + "\n")
    paths.figure4.write_text(figure4_text + "\n")
    paths.figure5.write_text(figure5_text + "\n")
    paths.claims.write_text(claims_text + "\n" + timings_text + "\n")
    save_sweep(sweep, paths.sweep_json)
    sweep_to_csv(sweep, paths.sweep_csv)

    elapsed = time.time() - started
    checks = check_paper_claims(sweep)
    passed = sum(1 for c in checks if c.passed)
    summary = (
        "FakeDetector reproduction report\n"
        f"corpus: {dataset.num_articles} articles / {dataset.num_creators} "
        f"creators / {dataset.num_subjects} subjects\n"
        f"sweep: methods={sweep.methods}, thetas={sweep.thetas}, "
        f"folds={sweep.folds}\n"
        f"claims passed: {passed}/{len(checks)}\n"
        f"wall time: {elapsed:.0f}s\n"
        "artifacts: table1.txt figure1.txt figure4.txt figure5.txt "
        "claims.txt sweep.json sweep.csv\n"
    )
    paths.summary.write_text(summary)
    return paths
