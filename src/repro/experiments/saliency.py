"""Input-gradient saliency for FakeDetector's explicit features.

Which of the discriminative words (W_n / W_u / W_s) pushed a node toward
its predicted label? We differentiate the predicted-class logit with
respect to the node's explicit feature vector; positive gradient × positive
count means the word's presence supported the prediction.

This is the "vanilla gradient × input" attribution — coarse but faithful to
the actual trained model, and it exercises the engine's input gradients.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from ..autograd import Tensor
from ..core.trainer import FakeDetector


@dataclasses.dataclass
class WordAttribution:
    """One word's contribution to a prediction."""

    word: str
    count: float        # (possibly weighted) occurrences in the node's text
    gradient: float     # d logit / d feature
    attribution: float  # gradient * count

    def __str__(self):
        sign = "+" if self.attribution >= 0 else "-"
        return f"{sign}{abs(self.attribution):.3f}  {self.word} (count {self.count:.2f})"


def _explain(
    detector: FakeDetector,
    kind: str,
    entity_id: str,
    target_class: Optional[int],
    top_k: int,
) -> List[WordAttribution]:
    if detector.model is None:
        raise RuntimeError("detector must be fitted first")
    features = detector.features
    entity = features.by_type(kind)
    if entity_id not in entity.index:
        raise KeyError(f"unknown {kind} {entity_id!r}")
    row = entity.index[entity_id]

    model = detector.model
    model.eval()

    # Make the target type's explicit features differentiable; the other two
    # stay constants. HFLU passes Tensors through, keeping them in the graph.
    explicit_inputs = {
        "article": features.articles.explicit,
        "creator": features.creators.explicit,
        "subject": features.subjects.explicit,
    }
    grad_input = Tensor(explicit_inputs[kind].copy(), requires_grad=True)
    explicit_inputs = dict(explicit_inputs)
    explicit_inputs[kind] = grad_input

    x_n = model.hflu_article(explicit_inputs["article"], features.articles.sequences)
    x_u = model.hflu_creator(explicit_inputs["creator"], features.creators.sequences)
    x_s = model.hflu_subject(explicit_inputs["subject"], features.subjects.sequences)
    states = model.diffuse(x_n, x_u, x_s, detector.graph)
    head = {
        "article": model.head_article,
        "creator": model.head_creator,
        "subject": model.head_subject,
    }[kind]
    logits = head(states[kind])

    if target_class is None:
        target_class = int(logits.data[row].argmax())
    if not 0 <= target_class < logits.shape[1]:
        raise ValueError(f"target_class out of range: {target_class}")

    logits[np.array([row]), np.array([target_class])].sum().backward()
    gradients = grad_input.grad[row]
    counts = entity.explicit[row]
    words = features.extractors[kind].words

    attributions = [
        WordAttribution(
            word=words[k],
            count=float(counts[k]),
            gradient=float(gradients[k]),
            attribution=float(gradients[k] * counts[k]),
        )
        for k in range(len(words))
        if counts[k] != 0
    ]
    attributions.sort(key=lambda a: -abs(a.attribution))
    return attributions[:top_k]


def explain_article(
    detector: FakeDetector,
    article_id: str,
    target_class: Optional[int] = None,
    top_k: int = 10,
) -> List[WordAttribution]:
    """Top W_n word attributions for one article's predicted (or given) class."""
    return _explain(detector, "article", article_id, target_class, top_k)


def explain_creator(
    detector: FakeDetector,
    creator_id: str,
    target_class: Optional[int] = None,
    top_k: int = 10,
) -> List[WordAttribution]:
    """Top W_u profile-word attributions for a creator's prediction."""
    return _explain(detector, "creator", creator_id, target_class, top_k)


def explain_subject(
    detector: FakeDetector,
    subject_id: str,
    target_class: Optional[int] = None,
    top_k: int = 10,
) -> List[WordAttribution]:
    """Top W_s description-word attributions for a subject's prediction."""
    return _explain(detector, "subject", subject_id, target_class, top_k)
