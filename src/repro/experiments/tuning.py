"""Hyperparameter grid search for FakeDetector.

Evaluates every combination of a parameter grid with cross-validation on
the *training* side of a split (test folds stay untouched), scoring by
held-out-fold bi-class article accuracy.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..core.config import FakeDetectorConfig
from ..core.trainer import FakeDetector
from ..data.schema import NewsDataset
from ..graph.sampling import Split, TriSplit, k_fold_splits
from ..obs import get_logger


@dataclasses.dataclass
class TrialResult:
    """One grid point's cross-validated score."""

    overrides: Dict[str, object]
    scores: List[float]
    seconds: float

    @property
    def mean_score(self) -> float:
        return float(np.mean(self.scores))

    @property
    def std_score(self) -> float:
        return float(np.std(self.scores))

    def __str__(self):
        config = ", ".join(f"{k}={v}" for k, v in self.overrides.items())
        return f"{self.mean_score:.3f} ± {self.std_score:.3f}  ({config})"


def expand_grid(grid: Dict[str, Sequence]) -> List[Dict[str, object]]:
    """Cartesian product of a {field: [values...]} grid, as override dicts."""
    if not grid:
        return [{}]
    keys = sorted(grid)
    combos = itertools.product(*(grid[k] for k in keys))
    return [dict(zip(keys, combo)) for combo in combos]


def grid_search(
    dataset: NewsDataset,
    split: TriSplit,
    grid: Dict[str, Sequence],
    base_config: Optional[FakeDetectorConfig] = None,
    inner_folds: int = 3,
    seed: int = 0,
    verbose: bool = False,
) -> List[TrialResult]:
    """Cross-validated grid search over FakeDetectorConfig fields.

    For each grid point, the outer split's training articles are re-cut into
    ``inner_folds`` folds; the model trains on the inner-train side and is
    scored on the inner-held-out articles (bi-class accuracy). Returns
    trials sorted best-first.
    """
    if inner_folds < 2:
        raise ValueError("inner_folds must be >= 2")
    base_config = base_config or FakeDetectorConfig()
    rng = np.random.default_rng(seed)
    inner_article_splits = k_fold_splits(split.articles.train, inner_folds, rng)

    trials: List[TrialResult] = []
    for overrides in expand_grid(grid):
        config = dataclasses.replace(base_config, **overrides)
        scores: List[float] = []
        start = time.perf_counter()
        for inner in inner_article_splits:
            inner_split = TriSplit(
                articles=Split(train=inner.train, test=inner.test),
                creators=split.creators,
                subjects=split.subjects,
            )
            detector = FakeDetector(config).fit(dataset, inner_split)
            predictions = detector.predict("article")
            y = [
                (dataset.articles[a].label.binary, int(predictions[a] >= 3))
                for a in inner.test
            ]
            scores.append(float(np.mean([t == p for t, p in y])))
        trial = TrialResult(
            overrides=overrides, scores=scores, seconds=time.perf_counter() - start
        )
        trials.append(trial)
        if verbose:
            get_logger("experiments.tuning").info(
                "trial",
                overrides=str(overrides),
                mean_score=trial.mean_score,
                seconds=trial.seconds,
            )
    trials.sort(key=lambda t: -t.mean_score)
    return trials


def best_config(
    trials: Iterable[TrialResult], base_config: Optional[FakeDetectorConfig] = None
) -> FakeDetectorConfig:
    """The base config with the winning trial's overrides applied."""
    trials = list(trials)
    if not trials:
        raise ValueError("no trials to choose from")
    winner = max(trials, key=lambda t: t.mean_score)
    return dataclasses.replace(base_config or FakeDetectorConfig(), **winner.overrides)
