"""Heterogeneous network substrate: News-HSN, CV splits, walks, partitions."""

from .hsn import EdgeType, HeterogeneousNetwork, NodeType
from .partition import (
    UnionFind,
    balanced_assignment,
    community_article_weights,
    community_labels,
)
from .random_walk import generate_walk_corpus, random_walk
from .sampling import (
    Split,
    load_tri_split,
    save_tri_split,
    TriSplit,
    k_fold_indices,
    k_fold_splits,
    stratified_k_fold_splits,
    tri_splits,
)

__all__ = [
    "HeterogeneousNetwork",
    "NodeType",
    "EdgeType",
    "UnionFind",
    "community_labels",
    "community_article_weights",
    "balanced_assignment",
    "random_walk",
    "generate_walk_corpus",
    "Split",
    "TriSplit",
    "k_fold_indices",
    "k_fold_splits",
    "stratified_k_fold_splits",
    "tri_splits",
    "save_tri_split",
    "load_tri_split",
]
