"""Heterogeneous network substrate: News-HSN, CV splits, random walks."""

from .hsn import EdgeType, HeterogeneousNetwork, NodeType
from .random_walk import generate_walk_corpus, random_walk
from .sampling import (
    Split,
    load_tri_split,
    save_tri_split,
    TriSplit,
    k_fold_indices,
    k_fold_splits,
    stratified_k_fold_splits,
    tri_splits,
)

__all__ = [
    "HeterogeneousNetwork",
    "NodeType",
    "EdgeType",
    "random_walk",
    "generate_walk_corpus",
    "Split",
    "TriSplit",
    "k_fold_indices",
    "k_fold_splits",
    "stratified_k_fold_splits",
    "tri_splits",
    "save_tri_split",
    "load_tri_split",
]
