"""News Augmented Heterogeneous Social Network (News-HSN), Definition 2.4.

``G = (V, E)`` with ``V = U ∪ N ∪ S`` (creators, articles, subjects) and
``E = E_{u,n} ∪ E_{n,s}`` (authorship and subject-indication links). The
class stores typed adjacency both ways, which is what the GDU diffusion,
label propagation, random walks and LINE edge sampling all consume.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from ..data.schema import NewsDataset


class NodeType(enum.Enum):
    """The three node categories of the News-HSN."""

    ARTICLE = "article"
    CREATOR = "creator"
    SUBJECT = "subject"


class EdgeType(enum.Enum):
    """The two link categories (undirected; stored both ways)."""

    AUTHORSHIP = "authorship"          # creator — article
    SUBJECT_INDICATION = "subject"     # article — subject


class HeterogeneousNetwork:
    """Typed node/edge store with O(1) adjacency queries.

    Node handles are ``(NodeType, node_id)`` tuples; ``node_id`` values are
    the dataset's entity ids so the network indexes directly into a
    :class:`NewsDataset`.
    """

    def __init__(self):
        self._nodes: Dict[NodeType, set] = {t: set() for t in NodeType}
        # adjacency[(type, id)][edge_type] -> list of (type, id) neighbors
        self._adj: Dict[Tuple[NodeType, str], Dict[EdgeType, List[Tuple[NodeType, str]]]] = (
            defaultdict(lambda: defaultdict(list))
        )
        self._num_edges: Dict[EdgeType, int] = {t: 0 for t in EdgeType}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node_type: NodeType, node_id: str) -> None:
        self._nodes[node_type].add(node_id)

    def has_node(self, node_type: NodeType, node_id: str) -> bool:
        return node_id in self._nodes[node_type]

    def add_edge(
        self,
        edge_type: EdgeType,
        a: Tuple[NodeType, str],
        b: Tuple[NodeType, str],
    ) -> None:
        """Add an undirected typed edge; endpoints must already exist."""
        for node_type, node_id in (a, b):
            if node_id not in self._nodes[node_type]:
                raise KeyError(f"unknown node {(node_type, node_id)}")
        expected = _EDGE_ENDPOINTS[edge_type]
        if {a[0], b[0]} != expected:
            raise ValueError(
                f"{edge_type} edges connect {expected}, got {a[0]} — {b[0]}"
            )
        self._adj[a][edge_type].append(b)
        self._adj[b][edge_type].append(a)
        self._num_edges[edge_type] += 1

    @classmethod
    def from_dataset(cls, dataset: NewsDataset) -> "HeterogeneousNetwork":
        """Build the News-HSN from a corpus."""
        net = cls()
        for creator_id in dataset.creators:
            net.add_node(NodeType.CREATOR, creator_id)
        for subject_id in dataset.subjects:
            net.add_node(NodeType.SUBJECT, subject_id)
        for article in dataset.articles.values():
            net.add_node(NodeType.ARTICLE, article.article_id)
        for article in dataset.articles.values():
            a = (NodeType.ARTICLE, article.article_id)
            net.add_edge(EdgeType.AUTHORSHIP, a, (NodeType.CREATOR, article.creator_id))
            for subject_id in article.subject_ids:
                net.add_edge(
                    EdgeType.SUBJECT_INDICATION, a, (NodeType.SUBJECT, subject_id)
                )
        return net

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nodes(self, node_type: Optional[NodeType] = None) -> List[Tuple[NodeType, str]]:
        """All node handles, optionally restricted to one type (sorted)."""
        types = [node_type] if node_type else list(NodeType)
        out = []
        for t in types:
            out.extend((t, node_id) for node_id in sorted(self._nodes[t]))
        return out

    def num_nodes(self, node_type: Optional[NodeType] = None) -> int:
        if node_type:
            return len(self._nodes[node_type])
        return sum(len(ids) for ids in self._nodes.values())

    def num_edges(self, edge_type: Optional[EdgeType] = None) -> int:
        if edge_type:
            return self._num_edges[edge_type]
        return sum(self._num_edges.values())

    def neighbors(
        self,
        node: Tuple[NodeType, str],
        edge_type: Optional[EdgeType] = None,
    ) -> List[Tuple[NodeType, str]]:
        """Neighbors of ``node``, optionally filtered by edge type."""
        adj = self._adj.get(node)
        if adj is None:
            return []
        if edge_type is not None:
            return list(adj.get(edge_type, []))
        out: List[Tuple[NodeType, str]] = []
        for lst in adj.values():
            out.extend(lst)
        return out

    def degree(self, node: Tuple[NodeType, str], edge_type: Optional[EdgeType] = None) -> int:
        return len(self.neighbors(node, edge_type))

    def edges(self, edge_type: Optional[EdgeType] = None) -> List[
        Tuple[EdgeType, Tuple[NodeType, str], Tuple[NodeType, str]]
    ]:
        """Each undirected edge once, canonically (article endpoint first)."""
        out = []
        for node_id in sorted(self._nodes[NodeType.ARTICLE]):
            node = (NodeType.ARTICLE, node_id)
            for etype, neighbors in self._adj.get(node, {}).items():
                if edge_type is not None and etype != edge_type:
                    continue
                for nb in neighbors:
                    out.append((etype, node, nb))
        return out

    # ------------------------------------------------------------------
    # Convenience accessors for the FakeDetector wiring
    # ------------------------------------------------------------------
    def article_creator(self, article_id: str) -> Optional[str]:
        """The unique creator of an article (None if isolated)."""
        nbs = self.neighbors((NodeType.ARTICLE, article_id), EdgeType.AUTHORSHIP)
        return nbs[0][1] if nbs else None

    def article_subjects(self, article_id: str) -> List[str]:
        return [
            nid
            for _, nid in self.neighbors(
                (NodeType.ARTICLE, article_id), EdgeType.SUBJECT_INDICATION
            )
        ]

    def creator_articles(self, creator_id: str) -> List[str]:
        return [
            nid
            for _, nid in self.neighbors((NodeType.CREATOR, creator_id), EdgeType.AUTHORSHIP)
        ]

    def subject_articles(self, subject_id: str) -> List[str]:
        return [
            nid
            for _, nid in self.neighbors(
                (NodeType.SUBJECT, subject_id), EdgeType.SUBJECT_INDICATION
            )
        ]

    def validate(self) -> None:
        """Structural invariants: every article has exactly one creator and
        at least one subject; adjacency is symmetric."""
        for node_id in self._nodes[NodeType.ARTICLE]:
            node = (NodeType.ARTICLE, node_id)
            authors = self.neighbors(node, EdgeType.AUTHORSHIP)
            if len(authors) != 1:
                raise ValueError(f"article {node_id!r} has {len(authors)} creators")
            if not self.neighbors(node, EdgeType.SUBJECT_INDICATION):
                raise ValueError(f"article {node_id!r} has no subjects")
        for node, adj in self._adj.items():
            for etype, neighbors in adj.items():
                for nb in neighbors:
                    if node not in self._adj.get(nb, {}).get(etype, []):
                        raise ValueError(f"asymmetric edge {node} -> {nb}")


_EDGE_ENDPOINTS = {
    EdgeType.AUTHORSHIP: {NodeType.ARTICLE, NodeType.CREATOR},
    EdgeType.SUBJECT_INDICATION: {NodeType.ARTICLE, NodeType.SUBJECT},
}
