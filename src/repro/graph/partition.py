"""Community partitioning of the News-HSN for shard-parallel serving.

A creator/subject **community** is a connected component of the bipartite
creator↔subject projection of the News-HSN: two context nodes belong to the
same community when some training article links them (directly or through a
chain of articles). Communities are the natural unit of shard placement
because the GDU diffusion context of an article — its creator's hidden
state and its subjects' hidden states — is closed under community
membership for every article of the training corpus: placing whole
communities on one shard makes that shard's diffusion context local.

:func:`community_labels` finds the components with a union-find over the
checkpointed :class:`repro.core.pipeline.GraphIndex` edge arrays (no
dataset required — a serving process only has the checkpoint), and
:func:`balanced_assignment` bin-packs communities onto ``num_shards``
shards with the greedy longest-processing-time heuristic, weighting each
community by its article count so shards see comparable traffic.

Both functions are deterministic: identical inputs produce identical
partitions, which is what makes shard routing reproducible across service
restarts (asserted in ``tests/test_serve_shard.py``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np


class UnionFind:
    """Path-compressing union-find over ``n`` integer nodes."""

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.rank = [0] * n

    def find(self, a: int) -> int:
        root = a
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[a] != root:  # path compression
            self.parent[a], a = root, self.parent[a]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1


def community_labels(
    num_creators: int,
    num_subjects: int,
    article_creator: np.ndarray,
    article_subject_gather: np.ndarray,
    article_subject_segment: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Connected components over creators ∪ subjects, linked via articles.

    Parameters mirror the :class:`repro.core.pipeline.GraphIndex` arrays:
    ``article_creator[i]`` is article row ``i``'s creator row, and the
    ``(gather, segment)`` pair lists subject-row/article-row link endpoints.

    Returns ``(creator_community, subject_community, num_communities)``
    where the community ids are dense integers ``0..num_communities-1``,
    numbered in order of first appearance over creator rows then subject
    rows (deterministic).
    """
    uf = UnionFind(num_creators + num_subjects)
    article_creator = np.asarray(article_creator, dtype=np.intp)
    gather = np.asarray(article_subject_gather, dtype=np.intp)
    segment = np.asarray(article_subject_segment, dtype=np.intp)
    # Each subject link joins the subject with its article's creator.
    for subject_row, article_row in zip(gather, segment):
        uf.union(int(article_creator[article_row]), num_creators + int(subject_row))

    remap: Dict[int, int] = {}
    creator_community = np.empty(num_creators, dtype=np.intp)
    for row in range(num_creators):
        root = uf.find(row)
        creator_community[row] = remap.setdefault(root, len(remap))
    subject_community = np.empty(num_subjects, dtype=np.intp)
    for row in range(num_subjects):
        root = uf.find(num_creators + row)
        subject_community[row] = remap.setdefault(root, len(remap))
    return creator_community, subject_community, len(remap)


def balanced_assignment(
    weights: Sequence[float], num_shards: int
) -> List[int]:
    """Greedy LPT bin-packing: community ``i`` (weight ``weights[i]``) → shard.

    Heaviest community first, each onto the currently lightest shard; ties
    break on the lowest shard id and, among equal weights, the lowest
    community id, so the assignment is a pure function of its inputs.
    Returns ``assignment`` with ``assignment[i]`` in ``0..num_shards-1``.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    order = sorted(range(len(weights)), key=lambda i: (-float(weights[i]), i))
    loads = [0.0] * num_shards
    assignment = [0] * len(weights)
    for community in order:
        shard = min(range(num_shards), key=lambda s: (loads[s], s))
        assignment[community] = shard
        loads[shard] += float(weights[community])
    return assignment


def community_article_weights(
    creator_community: np.ndarray,
    num_communities: int,
    article_creator: np.ndarray,
) -> np.ndarray:
    """Articles per community (every article weighs on its creator's one)."""
    weights = np.zeros(num_communities, dtype=np.float64)
    for creator_row in np.asarray(article_creator, dtype=np.intp):
        weights[creator_community[creator_row]] += 1.0
    return weights
