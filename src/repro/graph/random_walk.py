"""Truncated random walks over the News-HSN, the DeepWalk walk corpus.

DeepWalk treats walks as sentences and node ids as words; on the
heterogeneous network a uniform random walk naturally alternates between
node types (article -> creator -> article -> subject -> ...), which is how
the paper's DeepWalk baseline consumes the structure.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .hsn import HeterogeneousNetwork, NodeType


def random_walk(
    network: HeterogeneousNetwork,
    start: Tuple[NodeType, str],
    length: int,
    rng: np.random.Generator,
) -> List[Tuple[NodeType, str]]:
    """One uniform random walk of up to ``length`` nodes from ``start``.

    Stops early only at isolated nodes (which the News-HSN forbids for
    articles but may occur for degenerate creators/subjects in subgraphs).
    """
    if length < 1:
        raise ValueError("walk length must be >= 1")
    walk = [start]
    current = start
    for _ in range(length - 1):
        neighbors = network.neighbors(current)
        if not neighbors:
            break
        current = neighbors[rng.integers(len(neighbors))]
        walk.append(current)
    return walk


def node2vec_walk(
    network: HeterogeneousNetwork,
    start: Tuple[NodeType, str],
    length: int,
    rng: np.random.Generator,
    p: float = 1.0,
    q: float = 1.0,
) -> List[Tuple[NodeType, str]]:
    """One second-order biased walk (Grover & Leskovec 2016).

    Transition weights from the previous step's node ``t`` through current
    node ``v`` to candidate ``x``: ``1/p`` if ``x == t`` (return), ``1`` if
    ``x`` neighbors ``t`` (BFS-like), else ``1/q`` (DFS-like). On the
    bipartite News-HSN two consecutive neighbors never share an edge, so the
    middle case only arises via shared neighbors at distance 2 — we use the
    standard distance test.
    """
    if length < 1:
        raise ValueError("walk length must be >= 1")
    if p <= 0 or q <= 0:
        raise ValueError("p and q must be positive")
    walk = [start]
    if length == 1:
        return walk
    neighbors = network.neighbors(start)
    if not neighbors:
        return walk
    current = neighbors[rng.integers(len(neighbors))]
    walk.append(current)
    while len(walk) < length:
        candidates = network.neighbors(current)
        if not candidates:
            break
        previous = walk[-2]
        prev_neighbors = set(network.neighbors(previous))
        weights = np.empty(len(candidates))
        for i, candidate in enumerate(candidates):
            if candidate == previous:
                weights[i] = 1.0 / p
            elif candidate in prev_neighbors:
                weights[i] = 1.0
            else:
                weights[i] = 1.0 / q
        weights /= weights.sum()
        current = candidates[rng.choice(len(candidates), p=weights)]
        walk.append(current)
    return walk


def generate_walk_corpus(
    network: HeterogeneousNetwork,
    num_walks: int = 10,
    walk_length: int = 40,
    seed: int = 0,
    node_type: Optional[NodeType] = None,
    p: Optional[float] = None,
    q: Optional[float] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[List[Tuple[NodeType, str]]]:
    """``num_walks`` walks from every node (optionally of one type).

    Start order is shuffled per round, as in the DeepWalk reference
    implementation. Passing ``p``/``q`` switches to node2vec biased walks.
    An explicit ``rng`` takes precedence over ``seed``; the default
    ``default_rng(seed)`` stream is unchanged.
    """
    rng = rng if rng is not None else np.random.default_rng(seed)
    starts = network.nodes(node_type)
    biased = p is not None or q is not None
    p = 1.0 if p is None else p
    q = 1.0 if q is None else q
    corpus: List[List[Tuple[NodeType, str]]] = []
    for _ in range(num_walks):
        order = rng.permutation(len(starts))
        for i in order:
            if biased:
                corpus.append(node2vec_walk(network, starts[i], walk_length, rng, p=p, q=q))
            else:
                corpus.append(random_walk(network, starts[i], walk_length, rng))
    return corpus
