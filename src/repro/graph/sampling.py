"""Train/test splitting per the paper's protocol (§5.1.1).

10-fold cross validation: each node set (articles, creators, subjects) is
partitioned 9:1 into train/test; the training 9 folds are then subsampled by
the ratio θ ∈ {0.1, ..., 1.0} to simulate varying amounts of supervision.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np


@dataclasses.dataclass
class Split:
    """One CV split of a single node set (lists of entity ids)."""

    train: List[str]
    test: List[str]

    def subsample_train(self, theta: float, rng: np.random.Generator) -> "Split":
        """Keep a θ fraction of the training ids (at least one)."""
        if not 0.0 < theta <= 1.0:
            raise ValueError(f"theta must be in (0, 1], got {theta}")
        if theta == 1.0:
            return Split(train=list(self.train), test=list(self.test))
        k = max(1, int(round(theta * len(self.train))))
        chosen = rng.choice(len(self.train), size=k, replace=False)
        return Split(
            train=[self.train[i] for i in sorted(chosen)],
            test=list(self.test),
        )


@dataclasses.dataclass
class TriSplit:
    """Aligned splits for the three node sets of one fold."""

    articles: Split
    creators: Split
    subjects: Split

    def subsample_train(self, theta: float, rng: np.random.Generator) -> "TriSplit":
        return TriSplit(
            articles=self.articles.subsample_train(theta, rng),
            creators=self.creators.subsample_train(theta, rng),
            subjects=self.subjects.subsample_train(theta, rng),
        )


def save_tri_split(split: TriSplit, path) -> None:
    """Persist a TriSplit as JSON so an experiment's exact folds can be
    re-used across sessions/machines."""
    import json
    from pathlib import Path

    payload = {
        kind: {"train": part.train, "test": part.test}
        for kind, part in (
            ("articles", split.articles),
            ("creators", split.creators),
            ("subjects", split.subjects),
        )
    }
    Path(path).write_text(json.dumps(payload))


def load_tri_split(path) -> TriSplit:
    """Load a TriSplit saved by :func:`save_tri_split`."""
    import json
    from pathlib import Path

    payload = json.loads(Path(path).read_text())
    parts = {}
    for kind in ("articles", "creators", "subjects"):
        entry = payload.get(kind)
        if entry is None or "train" not in entry or "test" not in entry:
            raise ValueError(f"malformed split file: missing {kind!r}")
        overlap = set(entry["train"]) & set(entry["test"])
        if overlap:
            raise ValueError(f"{kind} train/test overlap: {sorted(overlap)[:3]}")
        parts[kind] = Split(train=list(entry["train"]), test=list(entry["test"]))
    return TriSplit(articles=parts["articles"], creators=parts["creators"],
                    subjects=parts["subjects"])


def k_fold_indices(n: int, k: int, rng: np.random.Generator) -> List[np.ndarray]:
    """Shuffle ``range(n)`` and cut it into ``k`` near-equal folds."""
    if k < 2:
        raise ValueError("k must be >= 2")
    if n < k:
        raise ValueError(f"cannot make {k} folds from {n} items")
    perm = rng.permutation(n)
    return [fold for fold in np.array_split(perm, k)]


def k_fold_splits(ids: Sequence[str], k: int, rng: np.random.Generator) -> List[Split]:
    """k splits of ``ids``: fold i is the test set, the rest train."""
    ids = list(ids)
    folds = k_fold_indices(len(ids), k, rng)
    splits = []
    for i in range(k):
        test_idx = set(folds[i].tolist())
        splits.append(
            Split(
                train=[ids[j] for j in range(len(ids)) if j not in test_idx],
                test=[ids[j] for j in sorted(test_idx)],
            )
        )
    return splits


def stratified_k_fold_splits(
    ids: Sequence[str],
    labels: Sequence[int],
    k: int,
    rng: np.random.Generator,
) -> List[Split]:
    """k-fold splits that roughly preserve the label distribution per fold.

    Falls back to plain k-fold behaviour when classes are tiny.
    """
    ids = list(ids)
    labels = list(labels)
    if len(ids) != len(labels):
        raise ValueError("ids and labels must align")
    by_label: Dict[int, List[int]] = {}
    for idx, label in enumerate(labels):
        by_label.setdefault(label, []).append(idx)
    fold_members: List[List[int]] = [[] for _ in range(k)]
    for label in sorted(by_label):
        members = np.asarray(by_label[label])
        rng.shuffle(members)
        for pos, idx in enumerate(members):
            fold_members[pos % k].append(int(idx))
    splits = []
    for i in range(k):
        test_idx = set(fold_members[i])
        splits.append(
            Split(
                train=[ids[j] for j in range(len(ids)) if j not in test_idx],
                test=[ids[j] for j in sorted(test_idx)],
            )
        )
    return splits


def tri_splits(
    article_ids: Sequence[str],
    creator_ids: Sequence[str],
    subject_ids: Sequence[str],
    k: int = 10,
    seed: int = 0,
    article_labels: Optional[Sequence[int]] = None,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[TriSplit]:
    """Generate the paper's aligned 10-fold splits over all three node sets.

    An explicit ``rng`` takes precedence over ``seed``; the default
    ``default_rng(seed)`` stream is unchanged.
    """
    rng = rng if rng is not None else np.random.default_rng(seed)
    if article_labels is not None:
        article_splits = stratified_k_fold_splits(article_ids, article_labels, k, rng)
    else:
        article_splits = k_fold_splits(article_ids, k, rng)
    creator_splits = k_fold_splits(creator_ids, k, rng)
    subject_splits = k_fold_splits(subject_ids, k, rng)
    for a, c, s in zip(article_splits, creator_splits, subject_splits):
        yield TriSplit(articles=a, creators=c, subjects=s)
