"""Evaluation metrics (bi-class and multi-class, per paper §5.1.3)."""

from .calibration import (
    CalibrationBin,
    TemperatureScaler,
    calibration_bins,
    expected_calibration_error,
    render_reliability,
)
from .ordinal import (
    kendall_tau,
    mean_absolute_error,
    mean_squared_error,
    quadratic_weighted_kappa,
    within_one_accuracy,
)
from .report import classification_report
from .stats import (
    ConfidenceInterval,
    bootstrap_metric,
    compare_methods,
    mcnemar_test,
    paired_sign_test,
)
from .ranking import average_precision, precision_at_k, roc_auc, roc_curve
from .classification import (
    BinaryMetrics,
    MultiClassMetrics,
    accuracy,
    confusion_matrix,
    f1_score,
    macro_f1,
    macro_precision,
    macro_recall,
    precision,
    recall,
)

__all__ = [
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "macro_precision",
    "macro_recall",
    "macro_f1",
    "confusion_matrix",
    "BinaryMetrics",
    "MultiClassMetrics",
    "roc_auc",
    "roc_curve",
    "average_precision",
    "precision_at_k",
    "mean_absolute_error",
    "mean_squared_error",
    "within_one_accuracy",
    "kendall_tau",
    "quadratic_weighted_kappa",
    "classification_report",
    "calibration_bins",
    "expected_calibration_error",
    "render_reliability",
    "CalibrationBin",
    "TemperatureScaler",
    "ConfidenceInterval",
    "bootstrap_metric",
    "compare_methods",
    "mcnemar_test",
    "paired_sign_test",
]
