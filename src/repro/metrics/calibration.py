"""Probability calibration metrics for the softmax heads.

A credibility system's probabilities matter (a 0.9-confident "False" should
be wrong 10% of the time); these tools quantify that: expected calibration
error over confidence bins and a printable reliability table.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np


@dataclasses.dataclass
class CalibrationBin:
    """One confidence bin of a reliability diagram."""

    low: float
    high: float
    count: int
    mean_confidence: float
    accuracy: float

    @property
    def gap(self) -> float:
        """|confidence − accuracy| — the bin's calibration error."""
        return abs(self.mean_confidence - self.accuracy)


def calibration_bins(
    y_true: Sequence[int],
    probabilities: np.ndarray,
    num_bins: int = 10,
) -> List[CalibrationBin]:
    """Bin predictions by top-class confidence; empty bins are skipped.

    Parameters
    ----------
    y_true:
        Integer labels, shape (N,).
    probabilities:
        Class distributions, shape (N, C); rows should sum to 1.
    """
    y_true = np.asarray(y_true)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.ndim != 2 or probabilities.shape[0] != y_true.shape[0]:
        raise ValueError("probabilities must be (N, C) aligned with y_true")
    if y_true.size == 0:
        raise ValueError("calibration requires at least one sample")
    if num_bins < 1:
        raise ValueError("num_bins must be >= 1")
    confidence = probabilities.max(axis=1)
    predicted = probabilities.argmax(axis=1)
    correct = (predicted == y_true).astype(np.float64)

    edges = np.linspace(0.0, 1.0, num_bins + 1)
    bins: List[CalibrationBin] = []
    for i in range(num_bins):
        low, high = edges[i], edges[i + 1]
        if i == num_bins - 1:
            mask = (confidence >= low) & (confidence <= high)
        else:
            mask = (confidence >= low) & (confidence < high)
        if not mask.any():
            continue
        bins.append(
            CalibrationBin(
                low=float(low),
                high=float(high),
                count=int(mask.sum()),
                mean_confidence=float(confidence[mask].mean()),
                accuracy=float(correct[mask].mean()),
            )
        )
    return bins


def expected_calibration_error(
    y_true: Sequence[int], probabilities: np.ndarray, num_bins: int = 10
) -> float:
    """ECE: count-weighted mean |confidence − accuracy| over bins."""
    bins = calibration_bins(y_true, probabilities, num_bins)
    total = sum(b.count for b in bins)
    return float(sum(b.count * b.gap for b in bins) / total)


class TemperatureScaler:
    """Post-hoc temperature scaling (Guo et al. 2017).

    Fits a single scalar T > 0 minimizing NLL of ``softmax(logits / T)`` on
    a held-out set (golden-section search — the objective is unimodal in T),
    then rescales new logits. Leaves argmax predictions unchanged; only the
    confidence calibration moves.
    """

    def __init__(self, low: float = 0.05, high: float = 20.0):
        if not 0 < low < high:
            raise ValueError("need 0 < low < high")
        self.low = low
        self.high = high
        self.temperature: float = 1.0

    @staticmethod
    def _nll(logits: np.ndarray, y_true: np.ndarray, temperature: float) -> float:
        scaled = logits / temperature
        shifted = scaled - scaled.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        return float(-log_probs[np.arange(len(y_true)), y_true].mean())

    def fit(self, logits: np.ndarray, y_true: Sequence[int]) -> "TemperatureScaler":
        logits = np.asarray(logits, dtype=np.float64)
        y_true = np.asarray(y_true, dtype=np.intp)
        if logits.ndim != 2 or logits.shape[0] != y_true.shape[0] or y_true.size == 0:
            raise ValueError("logits must be (N, C) aligned with non-empty y_true")
        phi = (np.sqrt(5.0) - 1.0) / 2.0
        a, b = self.low, self.high
        c, d = b - phi * (b - a), a + phi * (b - a)
        fc = self._nll(logits, y_true, c)
        fd = self._nll(logits, y_true, d)
        for _ in range(80):
            if fc < fd:
                b, d, fd = d, c, fc
                c = b - phi * (b - a)
                fc = self._nll(logits, y_true, c)
            else:
                a, c, fc = c, d, fd
                d = a + phi * (b - a)
                fd = self._nll(logits, y_true, d)
        self.temperature = float(0.5 * (a + b))
        return self

    def transform(self, logits: np.ndarray) -> np.ndarray:
        """Calibrated class probabilities for new logits."""
        logits = np.asarray(logits, dtype=np.float64) / self.temperature
        shifted = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs


def render_reliability(
    y_true: Sequence[int], probabilities: np.ndarray, num_bins: int = 10
) -> str:
    """Text reliability diagram plus the ECE line."""
    bins = calibration_bins(y_true, probabilities, num_bins)
    ece = expected_calibration_error(y_true, probabilities, num_bins)
    lines = [f"{'bin':>12s} {'n':>6s} {'conf':>7s} {'acc':>7s} {'gap':>7s}"]
    for b in bins:
        lines.append(
            f"[{b.low:.1f}, {b.high:.1f}] {b.count:>6d} {b.mean_confidence:>7.3f} "
            f"{b.accuracy:>7.3f} {b.gap:>7.3f}"
        )
    lines.append(f"expected calibration error: {ece:.4f}")
    return "\n".join(lines)
