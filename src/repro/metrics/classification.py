"""Classification metrics used in the paper's evaluation (§5.1.3).

Bi-class: Accuracy, Precision, Recall, F1 (positive class = the credible
group {True, Mostly True, Half True}).
Multi-class: Accuracy, Macro-Precision, Macro-Recall, Macro-F1 over the six
Truth-O-Meter labels.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import numpy as np


def _validate(y_true: Sequence[int], y_pred: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("metrics require at least one sample")
    return y_true, y_pred


def accuracy(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float((y_true == y_pred).mean())


def confusion_matrix(
    y_true: Sequence[int], y_pred: Sequence[int], num_classes: Optional[int] = None
) -> np.ndarray:
    """(num_classes, num_classes) matrix, rows = true class, cols = predicted."""
    y_true, y_pred = _validate(y_true, y_pred)
    if num_classes is None:
        num_classes = int(max(y_true.max(), y_pred.max())) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def precision(y_true: Sequence[int], y_pred: Sequence[int], positive: int = 1) -> float:
    """Binary precision of class ``positive``; 0 when nothing is predicted positive."""
    y_true, y_pred = _validate(y_true, y_pred)
    predicted = y_pred == positive
    if not predicted.any():
        return 0.0
    return float((y_true[predicted] == positive).mean())


def recall(y_true: Sequence[int], y_pred: Sequence[int], positive: int = 1) -> float:
    """Binary recall of class ``positive``; 0 when no positives exist."""
    y_true, y_pred = _validate(y_true, y_pred)
    actual = y_true == positive
    if not actual.any():
        return 0.0
    return float((y_pred[actual] == positive).mean())


def f1_score(y_true: Sequence[int], y_pred: Sequence[int], positive: int = 1) -> float:
    """Binary F1 (harmonic mean of precision and recall)."""
    p = precision(y_true, y_pred, positive)
    r = recall(y_true, y_pred, positive)
    if p + r == 0:
        return 0.0
    return 2 * p * r / (p + r)


def macro_precision(y_true: Sequence[int], y_pred: Sequence[int], num_classes: int) -> float:
    """Unweighted mean of per-class precision over all ``num_classes``."""
    return float(np.mean([precision(y_true, y_pred, c) for c in range(num_classes)]))


def macro_recall(y_true: Sequence[int], y_pred: Sequence[int], num_classes: int) -> float:
    """Unweighted mean of per-class recall."""
    return float(np.mean([recall(y_true, y_pred, c) for c in range(num_classes)]))


def macro_f1(y_true: Sequence[int], y_pred: Sequence[int], num_classes: int) -> float:
    """Unweighted mean of per-class F1."""
    return float(np.mean([f1_score(y_true, y_pred, c) for c in range(num_classes)]))


@dataclasses.dataclass
class BinaryMetrics:
    """The four Figure-4 metrics for one evaluation."""

    accuracy: float
    f1: float
    precision: float
    recall: float

    @classmethod
    def compute(cls, y_true: Sequence[int], y_pred: Sequence[int]) -> "BinaryMetrics":
        return cls(
            accuracy=accuracy(y_true, y_pred),
            f1=f1_score(y_true, y_pred),
            precision=precision(y_true, y_pred),
            recall=recall(y_true, y_pred),
        )

    def as_dict(self) -> Dict[str, float]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class MultiClassMetrics:
    """The four Figure-5 metrics for one evaluation."""

    accuracy: float
    macro_f1: float
    macro_precision: float
    macro_recall: float

    @classmethod
    def compute(
        cls, y_true: Sequence[int], y_pred: Sequence[int], num_classes: int = 6
    ) -> "MultiClassMetrics":
        return cls(
            accuracy=accuracy(y_true, y_pred),
            macro_f1=macro_f1(y_true, y_pred, num_classes),
            macro_precision=macro_precision(y_true, y_pred, num_classes),
            macro_recall=macro_recall(y_true, y_pred, num_classes),
        )

    def as_dict(self) -> Dict[str, float]:
        return dataclasses.asdict(self)
