"""Ordinal metrics over the 6-level credibility scale.

The Truth-O-Meter classes are ordered (True=6 .. Pants on Fire!=1), so
distance-aware metrics complement exact-match accuracy: predicting "Mostly
True" for a "True" article is a much smaller error than predicting "Pants
on Fire!".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _validate(y_true: Sequence[int], y_pred: Sequence[int]):
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch")
    if y_true.size == 0:
        raise ValueError("metrics require at least one sample")
    return y_true, y_pred


def mean_absolute_error(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Mean |true score − predicted score| on the 1..6 scale (class indices ok)."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.abs(y_true - y_pred).mean())


def mean_squared_error(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Mean squared score error."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(((y_true - y_pred) ** 2).mean())


def within_one_accuracy(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Fraction of predictions within one level of the truth."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float((np.abs(y_true - y_pred) <= 1).mean())


def kendall_tau(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Kendall's τ-a rank correlation between true and predicted scores.

    O(n²) pair enumeration — fine for held-out folds of a few hundred nodes.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    n = len(y_true)
    if n < 2:
        raise ValueError("kendall_tau requires at least two samples")
    concordant = discordant = 0
    for i in range(n):
        dt = y_true[i + 1:] - y_true[i]
        dp = y_pred[i + 1:] - y_pred[i]
        product = dt * dp
        concordant += int((product > 0).sum())
        discordant += int((product < 0).sum())
    total_pairs = n * (n - 1) / 2
    return float((concordant - discordant) / total_pairs)


def quadratic_weighted_kappa(
    y_true: Sequence[int], y_pred: Sequence[int], num_classes: int = 6
) -> float:
    """Cohen's kappa with quadratic penalty weights — the standard agreement
    statistic for ordinal raters."""
    y_true = np.asarray(y_true, dtype=np.intp)
    y_pred = np.asarray(y_pred, dtype=np.intp)
    if y_true.size == 0:
        raise ValueError("kappa requires at least one sample")
    observed = np.zeros((num_classes, num_classes))
    np.add.at(observed, (y_true, y_pred), 1.0)
    observed /= observed.sum()
    marginal_true = observed.sum(axis=1)
    marginal_pred = observed.sum(axis=0)
    expected = np.outer(marginal_true, marginal_pred)
    grid = np.arange(num_classes)
    weights = (grid[:, None] - grid[None, :]) ** 2 / (num_classes - 1) ** 2
    denom = (weights * expected).sum()
    if denom == 0:
        return 1.0  # both raters constant and identical
    return float(1.0 - (weights * observed).sum() / denom)
