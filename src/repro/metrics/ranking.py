"""Ranking / threshold-free metrics: ROC-AUC and precision-recall curves.

Extensions beyond the paper's Accuracy/Precision/Recall/F1 — useful because
credibility inference is naturally score-based (the 6-level scale orders
predictions even when the argmax label is wrong).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def roc_auc(y_true: Sequence[int], scores: Sequence[float]) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) statistic.

    Ties in ``scores`` receive the standard midrank treatment.
    """
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must align")
    n_pos = int((y_true == 1).sum())
    n_neg = int((y_true == 0).sum())
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc requires both classes present")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0  # midrank, 1-based
        i = j + 1
    rank_sum_pos = ranks[y_true == 1].sum()
    return float((rank_sum_pos - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def roc_curve(
    y_true: Sequence[int], scores: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(fpr, tpr, thresholds) at every distinct score cut."""
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    order = np.argsort(-scores, kind="mergesort")
    y_sorted = y_true[order]
    s_sorted = scores[order]
    distinct = np.where(np.diff(s_sorted))[0]
    cut_indices = np.concatenate([distinct, [len(s_sorted) - 1]])
    tps = np.cumsum(y_sorted == 1)[cut_indices].astype(np.float64)
    fps = np.cumsum(y_sorted == 0)[cut_indices].astype(np.float64)
    n_pos = max(1, int((y_true == 1).sum()))
    n_neg = max(1, int((y_true == 0).sum()))
    tpr = np.concatenate([[0.0], tps / n_pos])
    fpr = np.concatenate([[0.0], fps / n_neg])
    thresholds = np.concatenate([[np.inf], s_sorted[cut_indices]])
    return fpr, tpr, thresholds


def average_precision(y_true: Sequence[int], scores: Sequence[float]) -> float:
    """Area under the precision-recall curve (step interpolation)."""
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    if (y_true == 1).sum() == 0:
        raise ValueError("average_precision requires at least one positive")
    order = np.argsort(-scores, kind="mergesort")
    y_sorted = y_true[order]
    tps = np.cumsum(y_sorted == 1)
    precision_at_k = tps / np.arange(1, len(y_sorted) + 1)
    return float((precision_at_k * (y_sorted == 1)).sum() / (y_true == 1).sum())


def precision_at_k(y_true: Sequence[int], scores: Sequence[float], k: int) -> float:
    """Precision among the top-k scored items."""
    if k <= 0:
        raise ValueError("k must be positive")
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    k = min(k, len(scores))
    top = np.argsort(-scores, kind="mergesort")[:k]
    return float((y_true[top] == 1).mean())
