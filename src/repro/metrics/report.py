"""Per-class classification report (sklearn-style, text-rendered)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from .classification import accuracy, f1_score, precision, recall


def classification_report(
    y_true: Sequence[int],
    y_pred: Sequence[int],
    class_names: Optional[Sequence[str]] = None,
    num_classes: Optional[int] = None,
) -> str:
    """Render per-class precision/recall/F1/support plus macro averages.

    ``class_names`` defaults to the Truth-O-Meter labels when six classes
    are in play, otherwise to ``class 0..k``.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.size == 0:
        raise ValueError("y_true and y_pred must align and be non-empty")
    if num_classes is None:
        num_classes = int(max(y_true.max(), y_pred.max())) + 1
    if class_names is None:
        if num_classes == 6:
            from ..data.schema import CredibilityLabel

            class_names = [
                CredibilityLabel.from_class_index(i).display_name
                for i in range(6)
            ]
        else:
            class_names = [f"class {i}" for i in range(num_classes)]
    if len(class_names) != num_classes:
        raise ValueError("class_names length must equal num_classes")

    width = max(12, max(len(n) for n in class_names) + 1)
    lines = [
        f"{'':<{width}s} {'precision':>9s} {'recall':>9s} {'f1':>9s} {'support':>8s}"
    ]
    stats: Dict[str, list] = {"precision": [], "recall": [], "f1": []}
    for c in range(num_classes):
        p = precision(y_true, y_pred, positive=c)
        r = recall(y_true, y_pred, positive=c)
        f = f1_score(y_true, y_pred, positive=c)
        support = int((y_true == c).sum())
        stats["precision"].append(p)
        stats["recall"].append(r)
        stats["f1"].append(f)
        lines.append(
            f"{class_names[c]:<{width}s} {p:>9.3f} {r:>9.3f} {f:>9.3f} {support:>8d}"
        )
    lines.append("")
    lines.append(
        f"{'macro avg':<{width}s} {np.mean(stats['precision']):>9.3f} "
        f"{np.mean(stats['recall']):>9.3f} {np.mean(stats['f1']):>9.3f} "
        f"{len(y_true):>8d}"
    )
    lines.append(f"{'accuracy':<{width}s} {accuracy(y_true, y_pred):>9.3f}")
    return "\n".join(lines)
