"""Statistical comparison utilities for method evaluations.

The paper compares methods by eyeballing curves; for a reproduction it is
useful to quantify whether "FakeDetector beats X" survives sampling noise:
bootstrap confidence intervals on a metric, McNemar's test on paired
predictions, and a paired sign test across folds/θ cells.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Optional, Sequence, Tuple

import numpy as np


__all__ = [
    "ConfidenceInterval",
    "bootstrap_metric",
    "mcnemar_test",
    "paired_sign_test",
    "mean_and_std",
    "compare_methods",
]


@dataclasses.dataclass
class ConfidenceInterval:
    """A point estimate with a bootstrap percentile interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self):
        return f"{self.estimate:.3f} [{self.low:.3f}, {self.high:.3f}]"


def bootstrap_metric(
    y_true: Sequence[int],
    y_pred: Sequence[int],
    metric: Callable[[Sequence[int], Sequence[int]], float],
    num_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap CI of ``metric(y_true, y_pred)``.

    Resamples (true, pred) pairs with replacement; degenerate resamples that
    make the metric undefined (e.g. a single-class sample for precision)
    are retried a bounded number of times, then skipped.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.size == 0:
        raise ValueError("y_true and y_pred must be equal-length and non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    n = y_true.size
    estimate = float(metric(y_true, y_pred))
    samples = []
    for _ in range(num_resamples):
        idx = rng.integers(0, n, size=n)
        try:
            samples.append(float(metric(y_true[idx], y_pred[idx])))
        except (ValueError, ZeroDivisionError):
            continue
    if not samples:
        raise ValueError("all bootstrap resamples were degenerate")
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(samples, [alpha, 1.0 - alpha])
    return ConfidenceInterval(
        estimate=estimate, low=float(low), high=float(high), confidence=confidence
    )


def mcnemar_test(
    y_true: Sequence[int],
    pred_a: Sequence[int],
    pred_b: Sequence[int],
) -> Tuple[float, float]:
    """McNemar's test on two classifiers' paired correctness.

    Returns ``(statistic, p_value)`` using the exact binomial formulation
    for small discordant counts and the chi-squared approximation (with
    continuity correction) otherwise. Small p: the two classifiers'
    error patterns genuinely differ.
    """
    y_true = np.asarray(y_true)
    pred_a = np.asarray(pred_a)
    pred_b = np.asarray(pred_b)
    if not (y_true.shape == pred_a.shape == pred_b.shape):
        raise ValueError("all inputs must align")
    correct_a = pred_a == y_true
    correct_b = pred_b == y_true
    b = int((correct_a & ~correct_b).sum())   # A right, B wrong
    c = int((~correct_a & correct_b).sum())   # A wrong, B right
    n = b + c
    if n == 0:
        return 0.0, 1.0
    if n < 25:
        # Exact two-sided binomial test with p=0.5.
        k = min(b, c)
        p = sum(math.comb(n, i) for i in range(0, k + 1)) / 2.0 ** n
        return float(min(b, c)), float(min(1.0, 2.0 * p))
    statistic = (abs(b - c) - 1.0) ** 2 / n
    p_value = math.erfc(math.sqrt(statistic / 2.0))  # chi2(1) survival
    return float(statistic), float(p_value)


def paired_sign_test(
    scores_a: Sequence[float], scores_b: Sequence[float]
) -> Tuple[int, int, float]:
    """Sign test over paired metric values (e.g. per-fold accuracies).

    Returns ``(wins_a, wins_b, p_value)``; ties are dropped, as usual.
    """
    scores_a = np.asarray(scores_a, dtype=np.float64)
    scores_b = np.asarray(scores_b, dtype=np.float64)
    if scores_a.shape != scores_b.shape or scores_a.size == 0:
        raise ValueError("paired scores must align and be non-empty")
    diffs = scores_a - scores_b
    wins_a = int((diffs > 0).sum())
    wins_b = int((diffs < 0).sum())
    n = wins_a + wins_b
    if n == 0:
        return 0, 0, 1.0
    k = min(wins_a, wins_b)
    p = sum(math.comb(n, i) for i in range(0, k + 1)) / 2.0 ** n
    return wins_a, wins_b, float(min(1.0, 2.0 * p))


def mean_and_std(values: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and (ddof=1) standard deviation; std 0 for single values."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("need at least one value")
    if values.size == 1:
        return float(values[0]), 0.0
    return float(values.mean()), float(values.std(ddof=1))


def compare_methods(
    result,
    method_a: str,
    method_b: str,
    kind: str = "article",
    metric: str = "accuracy",
    problem: str = "binary",
) -> Tuple[int, int, float]:
    """Paired sign test between two methods over all (fold, θ) cells of a
    :class:`repro.experiments.SweepResult`."""
    cells_a = result.cells[method_a][kind]
    cells_b = result.cells[method_b][kind]
    scores_a, scores_b = [], []
    for theta in result.thetas:
        for cell_a, cell_b in zip(cells_a[theta], cells_b[theta]):
            obj_a = cell_a.binary if problem == "binary" else cell_a.multi
            obj_b = cell_b.binary if problem == "binary" else cell_b.multi
            scores_a.append(getattr(obj_a, metric))
            scores_b.append(getattr(obj_b, metric))
    return paired_sign_test(scores_a, scores_b)
