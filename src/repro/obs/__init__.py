"""Unified observability: structured events, span traces, metrics, op profiles.

Four dependency-free building blocks shared by training, serving and the
autograd engine:

- :mod:`repro.obs.events` — structured event logging. ``get_logger()``
  returns the process-global logger (human stderr sink by default);
  ``configure_logging`` rewires levels, namespace filters and JSONL sinks.
- :mod:`repro.obs.tracing` — nested timed spans.
  ``with trace("epoch", epoch=i) as span: span.set(loss=...)`` is free when
  no tracer is installed and streams JSONL when one is.
- :mod:`repro.obs.metrics` — named counters/gauges/histograms in a
  :class:`MetricsRegistry`; :class:`repro.serve.ServingMetrics` is a facade
  over it.
- :mod:`repro.obs.profiler` — :class:`OpProfiler` attributes wall time and
  call counts to every autograd tape op, forward and backward.

CLI surface: ``repro train --trace t.jsonl --profile`` records a run,
``repro obs report t.jsonl`` renders the span tree and op table.
"""

from .events import (
    Event,
    EventLogger,
    HumanSink,
    JsonlSink,
    LEVELS,
    configure_logging,
    get_logger,
    read_events,
    reset_logging,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    percentile,
    reset_registry,
)
from .profiler import OpProfiler, render_profile
from .report import aggregate_spans, render_spans, render_trace_file, self_times
from .tracing import (
    NULL_SPAN,
    Span,
    Tracer,
    get_tracer,
    install_tracer,
    read_trace,
    trace,
    uninstall_tracer,
)

__all__ = [
    # events
    "Event",
    "EventLogger",
    "HumanSink",
    "JsonlSink",
    "LEVELS",
    "configure_logging",
    "get_logger",
    "read_events",
    "reset_logging",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "percentile",
    "reset_registry",
    # profiler
    "OpProfiler",
    "render_profile",
    # tracing
    "NULL_SPAN",
    "Span",
    "Tracer",
    "get_tracer",
    "install_tracer",
    "read_trace",
    "trace",
    "uninstall_tracer",
    # report
    "aggregate_spans",
    "render_spans",
    "render_trace_file",
    "self_times",
]
