"""Unified observability: events, traces, metrics, profiles, exports, SLOs.

Building blocks shared by training, serving and the autograd engine:

- :mod:`repro.obs.events` — structured event logging. ``get_logger()``
  returns the process-global logger (human stderr sink by default);
  ``configure_logging`` rewires levels, namespace filters and JSONL sinks.
- :mod:`repro.obs.tracing` — nested timed spans.
  ``with trace("epoch", epoch=i) as span: span.set(loss=...)`` is free when
  no tracer is installed and streams JSONL when one is. A
  :class:`TraceStore` merges spans from several processes into one
  ``repro.obs.trace/1`` file per distributed request.
- :mod:`repro.obs.context` — the request-scoped :class:`TraceContext`
  carried via ``contextvars`` and W3C-style ``traceparent`` headers so
  worker spans parent under the front-end request span.
- :mod:`repro.obs.drift` — :class:`DriftMonitor` compares a serving-time
  rolling window against the checkpoint's :class:`BaselineProfile` with
  PSI/KL and flips ``/v1/healthz`` degraded on sustained drift.
- :mod:`repro.obs.metrics` — named counters/gauges/histograms in a
  :class:`MetricsRegistry`; :class:`repro.serve.ServingMetrics` is a facade
  over it.
- :mod:`repro.obs.profiler` — :class:`OpProfiler` attributes wall time and
  call counts to every autograd tape op, forward and backward.
- :mod:`repro.obs.flame` — :class:`SamplingProfiler`, a 100 Hz
  background-thread stack sampler producing folded stacks tagged with
  span/op context, flamegraph SVGs, and self-time diffs between runs
  (``repro train --flame``, ``repro obs flame <run> --diff <other>``).
- :mod:`repro.obs.memory` — :class:`MemoryProfiler` attributes allocated
  bytes, peak live bytes and allocation lifetimes to tape ops, with a
  live-tensor census by shape/dtype.
- :mod:`repro.obs.export` — Prometheus text / JSON snapshot writers over a
  registry, a :class:`PeriodicExporter` background flusher, and the stdlib
  :class:`MetricsServer` serving ``/metrics`` + ``/healthz``.
- :mod:`repro.obs.runs` — persistent :class:`RunRegistry` of per-run JSON
  records (``results/runs/``) and :func:`diff_runs` regression gating.
- :mod:`repro.obs.slo` — rolling-window :class:`SloMonitor` emitting
  structured breach/recover events from inside the serving path.
- :mod:`repro.obs.lifecycle` — exit-time flushing for buffered writers.

CLI surface: ``repro train --trace t.jsonl --profile --profile-memory``
records a run (and a ``results/runs/`` record by default), ``repro obs
report t.jsonl [--json]`` renders it, ``repro obs diff <a> <b>`` gates two
run records, and ``repro serve batch --metrics-port`` exposes the scrape
endpoint (``repro serve http`` serves ``/metrics`` on its own port).
"""

from .context import (
    REQUEST_ID_HEADER,
    TRACEPARENT_HEADER,
    TraceContext,
    current_context,
    extract_context,
    inject,
    new_request_id,
    new_trace_id,
    reset_context,
    set_context,
)
from .drift import (
    BASELINE_SCHEMA,
    BaselineProfile,
    DRIFT_BASELINE_FILE,
    DriftMonitor,
    bernoulli_psi,
    drift_slo_rule,
    kl_divergence,
    load_baseline,
    psi,
)
from .events import (
    Event,
    EventLogger,
    HumanSink,
    JsonlSink,
    LEVELS,
    configure_logging,
    get_logger,
    read_events,
    reset_logging,
)
from .export import (
    MetricsServer,
    PeriodicExporter,
    PROMETHEUS_CONTENT_TYPE,
    SNAPSHOT_SCHEMA,
    json_snapshot,
    parse_prometheus,
    prometheus_name,
    render_prometheus,
    write_json_snapshot,
    write_prometheus,
)
from .flame import (
    PROFILE_DIFF_SCHEMA,
    PROFILE_SCHEMA,
    Profile,
    SamplingProfiler,
    current_tags,
    diff_profiles,
    merge_profiles,
    render_diff,
    render_flamegraph_svg,
    render_top,
    tag,
    write_flamegraph,
)
from .lifecycle import flush_all, flush_at_exit, unregister_flush
from .memory import MemoryProfiler, render_memory
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    percentile,
    reset_registry,
)
from .profiler import OpProfiler, render_profile
from .report import (
    REPORT_SCHEMA,
    TRACE_RENDER_SCHEMA,
    aggregate_spans,
    render_drift,
    render_spans,
    render_timeline,
    render_trace_file,
    report_to_dict,
    self_times,
    timeline_to_dict,
)
from .runs import (
    DIFF_SCHEMA,
    RUN_SCHEMA,
    RunDiff,
    RunRecord,
    RunRegistry,
    Threshold,
    config_digest,
    current_git_sha,
    default_runs_dir,
    diff_runs,
    parse_threshold_specs,
)
from .slo import SloMonitor, SloRule, SloStatus, default_serving_rules
from .tracing import (
    NULL_SPAN,
    Span,
    TRACE_SCHEMA,
    TraceStore,
    Tracer,
    get_tracer,
    install_tracer,
    new_span_id,
    read_trace,
    span_record,
    trace,
    uninstall_tracer,
)

__all__ = [
    # context
    "REQUEST_ID_HEADER",
    "TRACEPARENT_HEADER",
    "TraceContext",
    "current_context",
    "extract_context",
    "inject",
    "new_request_id",
    "new_trace_id",
    "reset_context",
    "set_context",
    # drift
    "BASELINE_SCHEMA",
    "BaselineProfile",
    "DRIFT_BASELINE_FILE",
    "DriftMonitor",
    "bernoulli_psi",
    "drift_slo_rule",
    "kl_divergence",
    "load_baseline",
    "psi",
    # events
    "Event",
    "EventLogger",
    "HumanSink",
    "JsonlSink",
    "LEVELS",
    "configure_logging",
    "get_logger",
    "read_events",
    "reset_logging",
    # export
    "MetricsServer",
    "PeriodicExporter",
    "PROMETHEUS_CONTENT_TYPE",
    "SNAPSHOT_SCHEMA",
    "json_snapshot",
    "parse_prometheus",
    "prometheus_name",
    "render_prometheus",
    "write_json_snapshot",
    "write_prometheus",
    # flame
    "PROFILE_DIFF_SCHEMA",
    "PROFILE_SCHEMA",
    "Profile",
    "SamplingProfiler",
    "current_tags",
    "diff_profiles",
    "merge_profiles",
    "render_diff",
    "render_flamegraph_svg",
    "render_top",
    "tag",
    "write_flamegraph",
    # lifecycle
    "flush_all",
    "flush_at_exit",
    "unregister_flush",
    # memory
    "MemoryProfiler",
    "render_memory",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "percentile",
    "reset_registry",
    # profiler
    "OpProfiler",
    "render_profile",
    # runs
    "DIFF_SCHEMA",
    "RUN_SCHEMA",
    "RunDiff",
    "RunRecord",
    "RunRegistry",
    "Threshold",
    "config_digest",
    "current_git_sha",
    "default_runs_dir",
    "diff_runs",
    "parse_threshold_specs",
    # slo
    "SloMonitor",
    "SloRule",
    "SloStatus",
    "default_serving_rules",
    # tracing
    "NULL_SPAN",
    "Span",
    "TRACE_SCHEMA",
    "TraceStore",
    "Tracer",
    "get_tracer",
    "install_tracer",
    "new_span_id",
    "read_trace",
    "span_record",
    "trace",
    "uninstall_tracer",
    # report
    "REPORT_SCHEMA",
    "TRACE_RENDER_SCHEMA",
    "aggregate_spans",
    "render_drift",
    "render_spans",
    "render_timeline",
    "render_trace_file",
    "report_to_dict",
    "self_times",
    "timeline_to_dict",
]
