"""Request-scoped trace context, propagated across threads and processes.

A :class:`TraceContext` names one distributed request: a 128-bit hex
``trace_id``, the ``span_id`` of the currently-open span (the parent for
any child work), and a small string ``baggage`` map. The ambient context
lives in a :mod:`contextvars` variable so it follows the logical flow of
control — each HTTP handler thread binds its own context without touching
the others.

On the wire the context travels as a W3C-style ``traceparent`` header::

    traceparent: 00-<32 hex trace_id>-<16 hex span_id>-01

:func:`inject` stamps an outgoing header dict, :func:`extract_context`
parses an incoming header mapping (case-insensitively, so both plain dicts
and :class:`email.message.Message` header objects work). Malformed headers
are ignored — a bad ``traceparent`` must never fail the request it rides.

Ids come from :func:`os.urandom`, not :mod:`random` — trace ids must be
unique across forked workers and are not part of any seeded experiment.
"""

from __future__ import annotations

import contextvars
import dataclasses
import os
import re
from typing import Dict, Mapping, Optional, Tuple

TRACEPARENT_HEADER = "traceparent"
REQUEST_ID_HEADER = "X-Request-Id"

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-"
    r"(?P<trace_id>[0-9a-f]{32})-"
    r"(?P<span_id>[0-9a-f]{16})-"
    r"(?P<flags>[0-9a-f]{2})$"
)


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex chars."""
    return os.urandom(16).hex()


def new_request_id() -> str:
    """A fresh 64-bit request id as 16 lowercase hex chars."""
    return os.urandom(8).hex()


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """One distributed request's identity.

    ``span_id`` is the integer id of the span that owns the current unit
    of work; ``None`` means the context carries only a trace id (a fresh
    root — children created under it start a new top-level span).
    """

    trace_id: str
    span_id: Optional[int] = None
    baggage: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def new(cls, **baggage: str) -> "TraceContext":
        return cls(trace_id=new_trace_id(), baggage=tuple(sorted(baggage.items())))

    def child(self, span_id: int) -> "TraceContext":
        """Same trace, re-parented under ``span_id``."""
        return dataclasses.replace(self, span_id=span_id)

    def baggage_dict(self) -> Dict[str, str]:
        return dict(self.baggage)

    # -- wire format ----------------------------------------------------
    def to_traceparent(self) -> str:
        span = self.span_id if self.span_id is not None else 0
        return f"00-{self.trace_id}-{span & (2**64 - 1):016x}-01"

    @classmethod
    def from_traceparent(cls, header: str) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` value; ``None`` when malformed."""
        match = _TRACEPARENT_RE.match(header.strip().lower())
        if match is None:
            return None
        trace_id = match.group("trace_id")
        if trace_id == "0" * 32:
            return None
        span_id = int(match.group("span_id"), 16)
        return cls(trace_id=trace_id, span_id=span_id or None)

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {"trace_id": self.trace_id}
        if self.span_id is not None:
            record["span_id"] = self.span_id
        if self.baggage:
            record["baggage"] = self.baggage_dict()
        return record

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TraceContext":
        baggage = payload.get("baggage") or {}
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=payload.get("span_id"),
            baggage=tuple(sorted((str(k), str(v)) for k, v in baggage.items())),
        )


def inject(context: TraceContext, headers: Dict[str, str]) -> Dict[str, str]:
    """Stamp ``headers`` with the context's ``traceparent``; returns headers."""
    headers[TRACEPARENT_HEADER] = context.to_traceparent()
    return headers


def extract_context(headers: Mapping[str, str]) -> Optional[TraceContext]:
    """Pull a :class:`TraceContext` out of an incoming header mapping.

    Header lookup is case-insensitive. Works with plain dicts and with
    stdlib :class:`email.message.Message`-style header objects (which the
    http.server handlers expose). Returns ``None`` when no parseable
    ``traceparent`` is present.
    """
    value = None
    getter = getattr(headers, "get", None)
    if getter is not None:
        value = getter(TRACEPARENT_HEADER)
    if value is None:
        for key in headers:
            if str(key).lower() == TRACEPARENT_HEADER:
                value = headers[key]
                break
    if value is None:
        return None
    return TraceContext.from_traceparent(str(value))


# ----------------------------------------------------------------------
# Ambient context (contextvars)
# ----------------------------------------------------------------------
_CURRENT: contextvars.ContextVar[Optional[TraceContext]] = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def current_context() -> Optional[TraceContext]:
    """The ambient :class:`TraceContext`, or ``None`` outside any request."""
    return _CURRENT.get()


def set_context(context: Optional[TraceContext]) -> contextvars.Token:
    """Bind the ambient context; pass the token to :func:`reset_context`."""
    return _CURRENT.set(context)


def reset_context(token: contextvars.Token) -> None:
    _CURRENT.reset(token)
