"""Prediction-drift telemetry: PSI/KL monitoring against a training baseline.

The serving-time failure mode that accuracy metrics cannot see: the model
keeps answering, but the *inputs* (BoW feature activations) or the
*outputs* (class distribution, confidence) slide away from the corpus it
was fitted on, and quality decays silently. Following the distribution-
shift framing of dynamic-HIN fake news detection (arXiv 2205.07039), this
module captures a :class:`BaselineProfile` at checkpoint-save time and
compares a serving-side rolling window against it with two standard
divergences:

- **PSI** (population stability index): ``sum((a - e) * ln(a / e))`` over
  matched probability bins. The industry rule of thumb reads < 0.1 as
  stable, 0.1–0.25 as drifting, > 0.25 as shifted.
- **KL divergence** ``D(actual || expected)`` as a secondary, asymmetric
  view of the same histograms.

Three profile axes: predicted class distribution, max-softmax confidence
histogram (10 equal bins over [0, 1]), and per-feature Bernoulli
activation rates of the explicit BoW vector (summarized as the mean
per-feature PSI). A :class:`DriftMonitor` windows per-batch aggregates —
counts, not raw rows — so memory stays O(batches), feeds ``drift_*``
gauges, an optional :class:`SloRule`, and emits edge-triggered
``obs.drift.breach`` / ``obs.drift.recover`` events exactly like
:class:`repro.obs.slo.SloMonitor` does for latency.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from .events import get_logger
from .metrics import MetricsRegistry
from .slo import SloMonitor, SloRule
from .tracing import get_tracer

PathLike = Union[str, Path]

BASELINE_SCHEMA = "repro.obs.drift_baseline/1"
DRIFT_BASELINE_FILE = "drift_baseline.json"
DRIFT_SIGNAL = "drift_class_psi"

#: Bin edges for the max-softmax confidence histogram.
CONFIDENCE_EDGES = tuple(i / 10 for i in range(11))


# ----------------------------------------------------------------------
# Divergence math
# ----------------------------------------------------------------------
def _as_probs(values, eps: float) -> np.ndarray:
    arr = np.asarray(values, dtype=float).clip(min=eps)
    return arr / arr.sum()


def psi(expected, actual, eps: float = 1e-4) -> float:
    """Population stability index between two matched histograms.

    Inputs may be counts or probabilities; both are epsilon-clipped and
    renormalized so empty bins contribute a finite penalty instead of inf.
    """
    e = _as_probs(expected, eps)
    a = _as_probs(actual, eps)
    if e.shape != a.shape:
        raise ValueError(f"shape mismatch: {e.shape} vs {a.shape}")
    return float(np.sum((a - e) * np.log(a / e)))


def kl_divergence(expected, actual, eps: float = 1e-4) -> float:
    """``D_KL(actual || expected)`` over matched histograms (nats)."""
    e = _as_probs(expected, eps)
    a = _as_probs(actual, eps)
    if e.shape != a.shape:
        raise ValueError(f"shape mismatch: {e.shape} vs {a.shape}")
    return float(np.sum(a * np.log(a / e)))


def bernoulli_psi(expected_rates, actual_rates, eps: float = 1e-4) -> float:
    """Mean per-feature PSI between two vectors of activation rates.

    Each feature is a Bernoulli variable (active / inactive), so its PSI is
    the two-bin formula on ``(rate, 1 - rate)``; the summary statistic is
    the mean over features, keeping the scale comparable to :func:`psi`.
    """
    e = np.asarray(expected_rates, dtype=float).clip(eps, 1.0 - eps)
    a = np.asarray(actual_rates, dtype=float).clip(eps, 1.0 - eps)
    if e.shape != a.shape:
        raise ValueError(f"shape mismatch: {e.shape} vs {a.shape}")
    if e.size == 0:
        return 0.0
    per_feature = (a - e) * np.log(a / e) + (e - a) * np.log((1 - a) / (1 - e))
    return float(per_feature.mean())


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def _batch_aggregates(
    explicit: np.ndarray, logits: np.ndarray, num_classes: int
) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """(n, class_counts, confidence_counts, activation_counts) for a batch."""
    explicit = np.atleast_2d(np.asarray(explicit, dtype=float))
    logits = np.atleast_2d(np.asarray(logits, dtype=float))
    probs = _softmax(logits)
    classes = probs.argmax(axis=1)
    class_counts = np.bincount(classes, minlength=num_classes).astype(float)
    confidence = probs.max(axis=1)
    conf_counts, _ = np.histogram(confidence, bins=np.asarray(CONFIDENCE_EDGES))
    activation_counts = (explicit > 0).sum(axis=0).astype(float)
    return len(logits), class_counts, conf_counts.astype(float), activation_counts


# ----------------------------------------------------------------------
# Baseline profile
# ----------------------------------------------------------------------
@dataclasses.dataclass
class BaselineProfile:
    """The training-time reference distribution a serving window drifts from."""

    class_probs: List[float]
    confidence_probs: List[float]
    feature_rates: List[float]
    samples: int

    @property
    def num_classes(self) -> int:
        return len(self.class_probs)

    @classmethod
    def from_observations(
        cls, explicit: np.ndarray, logits: np.ndarray
    ) -> "BaselineProfile":
        logits = np.atleast_2d(np.asarray(logits, dtype=float))
        n, class_counts, conf_counts, act_counts = _batch_aggregates(
            explicit, logits, logits.shape[1]
        )
        return cls(
            class_probs=list(class_counts / max(n, 1)),
            confidence_probs=list(conf_counts / max(n, 1)),
            feature_rates=list(act_counts / max(n, 1)),
            samples=n,
        )

    @classmethod
    def from_detector(cls, detector) -> "BaselineProfile":
        """Profile a fitted detector over its own training articles.

        One full-graph forward (the same pass ``InferenceSession`` runs at
        construction) yields the article logits; the explicit BoW matrix is
        already materialized on the features object.
        """
        if detector.model is None or detector.features is None:
            raise RuntimeError("cannot profile an unfitted FakeDetector")
        detector.model.eval()
        logits, _ = detector.model.forward_with_states(
            detector.features, detector.graph
        )
        return cls.from_observations(
            detector.features.articles.explicit, logits["article"].data
        )

    # -- persistence ---------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "schema": BASELINE_SCHEMA,
            "class_probs": [float(v) for v in self.class_probs],
            "confidence_probs": [float(v) for v in self.confidence_probs],
            "confidence_edges": list(CONFIDENCE_EDGES),
            "feature_rates": [float(v) for v in self.feature_rates],
            "samples": int(self.samples),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "BaselineProfile":
        schema = payload.get("schema")
        if schema != BASELINE_SCHEMA:
            raise ValueError(
                f"unsupported drift baseline schema {schema!r} "
                f"(expected {BASELINE_SCHEMA!r})"
            )
        return cls(
            class_probs=[float(v) for v in payload["class_probs"]],
            confidence_probs=[float(v) for v in payload["confidence_probs"]],
            feature_rates=[float(v) for v in payload["feature_rates"]],
            samples=int(payload["samples"]),
        )

    def save(self, directory: PathLike) -> Path:
        path = Path(directory) / DRIFT_BASELINE_FILE
        path.write_text(json.dumps(self.to_dict()))
        return path

    @classmethod
    def load(cls, path: PathLike) -> "BaselineProfile":
        return cls.from_dict(json.loads(Path(path).read_text()))


def load_baseline(checkpoint_dir: PathLike) -> Optional[BaselineProfile]:
    """The checkpoint's baseline profile, or ``None`` for pre-drift
    checkpoints saved before the profile existed (monitoring just stays
    off — old checkpoints keep serving)."""
    path = Path(checkpoint_dir) / DRIFT_BASELINE_FILE
    if not path.exists():
        return None
    return BaselineProfile.load(path)


def drift_slo_rule(
    threshold: float,
    window_seconds: float = 60.0,
    min_samples: int = 3,
) -> SloRule:
    """The rule wiring sustained drift into ``/v1/healthz`` degradation."""
    return SloRule(
        "drift_psi", DRIFT_SIGNAL, "mean", threshold,
        window_seconds=window_seconds, min_samples=min_samples,
    )


# ----------------------------------------------------------------------
# Rolling-window monitor
# ----------------------------------------------------------------------
class DriftMonitor:
    """Rolling-window PSI/KL against a :class:`BaselineProfile`.

    The window holds per-batch *aggregates* (class counts, confidence
    histogram counts, feature activation counts) and evicts whole batches
    once retained samples exceed ``window`` — raw feature rows never
    accumulate. ``breach`` is declared when the class-distribution PSI or
    the confidence PSI exceeds ``threshold`` with at least ``min_samples``
    observations in the window; transitions emit one edge-triggered event
    each way and, when a tracer is streaming, a ``{"type": "drift"}``
    record so ``repro obs report`` can summarize them post-hoc.

    Parameters
    ----------
    baseline: the reference profile.
    window: max prediction samples retained (by whole batches).
    threshold: PSI breach level (0.25 ≈ "significant shift").
    min_samples: observations required before any verdict.
    registry: optional gauges target (``drift.*`` names, plus a
        ``.shard<N>`` suffix when ``shard`` is set).
    slo: optional :class:`SloMonitor` fed the class PSI under the
        ``drift_class_psi`` signal (pair with :func:`drift_slo_rule`).
    logger: event logger; defaults to ``get_logger("obs.drift")``.
    shard: shard index for gauge naming / event attribution.
    """

    def __init__(
        self,
        baseline: BaselineProfile,
        *,
        window: int = 1024,
        threshold: float = 0.25,
        min_samples: int = 50,
        registry: Optional[MetricsRegistry] = None,
        slo: Optional[SloMonitor] = None,
        logger=None,
        shard: Optional[int] = None,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.baseline = baseline
        self.window = window
        self.threshold = threshold
        self.min_samples = min_samples
        self.shard = shard
        self._registry = registry
        self._slo = slo
        self._logger = logger if logger is not None else get_logger("obs.drift")
        self._lock = threading.Lock()
        self._batches: Deque[Tuple[int, np.ndarray, np.ndarray, np.ndarray]] = deque()
        self._samples = 0
        self._breached = False
        # Running window totals, updated on append/evict so evaluation is
        # O(bins) per batch instead of re-summing the whole deque.
        self._class_totals = np.zeros(baseline.num_classes)
        self._conf_totals = np.zeros(len(CONFIDENCE_EDGES) - 1)
        self._act_totals = np.zeros(len(baseline.feature_rates))
        self._last_summary: Optional[Dict] = None

    # -- feeding -------------------------------------------------------
    def observe_batch(self, explicit: np.ndarray, logits: np.ndarray) -> None:
        """Fold one prediction batch's features + logits into the window."""
        aggregates = _batch_aggregates(
            explicit, logits, self.baseline.num_classes
        )
        if aggregates[0] == 0:
            return
        with self._lock:
            self._batches.append(aggregates)
            self._samples += aggregates[0]
            self._class_totals += aggregates[1]
            self._conf_totals += aggregates[2]
            self._act_totals += aggregates[3]
            while self._samples - self._batches[0][0] >= self.window:
                dropped = self._batches.popleft()
                self._samples -= dropped[0]
                self._class_totals -= dropped[1]
                self._conf_totals -= dropped[2]
                self._act_totals -= dropped[3]
        self.evaluate()

    # -- evaluation ----------------------------------------------------
    def _window_totals(self):
        with self._lock:
            if not self._batches:
                return 0, None, None, None
            return (
                self._samples,
                self._class_totals.copy(),
                self._conf_totals.copy(),
                self._act_totals.copy(),
            )

    def evaluate(self) -> Dict:
        """Compute divergences, update gauges/SLO, fire edge events."""
        n, class_counts, conf_counts, act_counts = self._window_totals()
        summary: Dict = {
            "samples": n,
            "threshold": self.threshold,
            "class_psi": None,
            "confidence_psi": None,
            "feature_psi": None,
            "class_kl": None,
            "breached": False,
        }
        if n >= self.min_samples:
            # One normalization serves both class divergences.
            e = _as_probs(self.baseline.class_probs, 1e-4)
            a = _as_probs(class_counts, 1e-4)
            log_ratio = np.log(a / e)
            summary["class_psi"] = float(np.sum((a - e) * log_ratio))
            summary["class_kl"] = float(np.sum(a * log_ratio))
            summary["confidence_psi"] = psi(
                self.baseline.confidence_probs, conf_counts
            )
            summary["feature_psi"] = bernoulli_psi(
                self.baseline.feature_rates, act_counts / n
            )
            summary["breached"] = (
                summary["class_psi"] > self.threshold
                or summary["confidence_psi"] > self.threshold
            )
        self._export(summary)
        self._transition(summary)
        self._last_summary = summary
        return summary

    def _gauge_name(self, key: str) -> str:
        name = f"drift.{key}"
        if self.shard is not None:
            name += f".shard{self.shard}"
        return name

    def _export(self, summary: Dict) -> None:
        if self._registry is not None:
            for key in ("class_psi", "confidence_psi", "feature_psi"):
                if summary[key] is not None:
                    self._registry.gauge(self._gauge_name(key)).set(summary[key])
            self._registry.gauge(self._gauge_name("samples")).set(
                summary["samples"]
            )
        if self._slo is not None and summary["class_psi"] is not None:
            self._slo.observe(DRIFT_SIGNAL, summary["class_psi"])

    def _transition(self, summary: Dict) -> None:
        breached = bool(summary["breached"])
        if breached == self._breached:
            return
        self._breached = breached
        detail = {
            k: summary[k]
            for k in ("class_psi", "confidence_psi", "feature_psi", "samples")
        }
        if self.shard is not None:
            detail["shard"] = self.shard
        if breached:
            self._logger.warning("breach", threshold=self.threshold, **detail)
        else:
            self._logger.info("recover", threshold=self.threshold, **detail)
        tracer = get_tracer()
        if tracer is not None:
            tracer.write({
                "type": "drift",
                "event": "breach" if breached else "recover",
                "threshold": self.threshold,
                **detail,
            })

    # -- reporting -----------------------------------------------------
    @property
    def breached(self) -> bool:
        return self._breached

    def summary(self) -> Dict:
        """Current window verdict — the dict workers ship to the parent.

        Returns the cached result of the last :meth:`evaluate` (every
        ``observe_batch`` evaluates), so the per-result hot path pays one
        dict read, not a divergence recomputation.
        """
        if self._last_summary is None:
            return self.evaluate()
        return self._last_summary

    def health(self) -> Dict:
        summary = self.evaluate()
        return {
            "status": "degraded" if summary["breached"] else "ok",
            "drift": summary,
        }
