"""Structured event logging: leveled, namespaced records with pluggable sinks.

An :class:`Event` is one structured fact (``name`` + flat ``fields`` dict)
rather than a formatted string, so the same emission can feed a terminal
(:class:`HumanSink`), a machine-readable log (:class:`JsonlSink`) and any
future shipper without reformatting. The process-global root logger from
:func:`get_logger` defaults to a human stderr sink at ``info`` level —
exactly what a CLI run wants — and :func:`configure_logging` rewires it for
servers (JSONL files, level/namespace filters).

The module is dependency-free and import-cheap: nothing here touches numpy
or the model code, so every subsystem (trainer, pipeline, serving, CLI) can
log without layering concerns.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO, Union

from .lifecycle import flush_at_exit, unregister_flush

#: Numeric severity thresholds, logging-module compatible.
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def _level_number(level: str) -> int:
    try:
        return LEVELS[level]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r} (expected one of {sorted(LEVELS)})"
        ) from None


@dataclasses.dataclass
class Event:
    """One structured log record."""

    name: str                      # dotted namespace, e.g. "train.epoch"
    level: str                     # one of LEVELS
    ts: float                      # unix seconds (time.time)
    fields: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "event",
            "ts": self.ts,
            "level": self.level,
            "name": self.name,
            "fields": self.fields,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Event":
        return cls(
            name=str(payload["name"]),
            level=str(payload["level"]),
            ts=float(payload["ts"]),
            fields=dict(payload.get("fields", {})),
        )


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class HumanSink:
    """One-line-per-event text sink (stderr by default)."""

    def __init__(self, stream: Optional[TextIO] = None):
        self._stream = stream
        self._lock = threading.Lock()

    @property
    def stream(self) -> TextIO:
        # Resolved lazily so pytest's capture swaps are honored.
        return self._stream if self._stream is not None else sys.stderr

    def emit(self, event: Event) -> None:
        clock = time.strftime("%H:%M:%S", time.localtime(event.ts))
        kv = " ".join(f"{k}={_format_value(v)}" for k, v in event.fields.items())
        line = f"[{clock}] {event.level:<7s} {event.name}"
        if kv:
            line = f"{line}  {kv}"
        with self._lock:
            print(line, file=self.stream)  # repro: noqa[RA001] this IS the logger's terminal sink

    def close(self) -> None:  # streams are borrowed, never closed
        pass


class JsonlSink:
    """Append events as JSON lines to a file path or open text stream.

    Registered with :func:`repro.obs.lifecycle.flush_at_exit`, so an exit
    path that never reaches :meth:`close` (crash-adjacent ``sys.exit``,
    unhandled exception in a script) still flushes the last buffered lines.
    """

    def __init__(self, target: Union[str, Path, TextIO]):
        self._lock = threading.Lock()
        if isinstance(target, (str, Path)):
            self._file: TextIO = open(target, "a", encoding="utf-8")
            self._owns = True
        else:
            self._file = target
            self._owns = False
        flush_at_exit(self)

    def emit(self, event: Event) -> None:
        line = json.dumps(event.to_dict(), default=str)
        with self._lock:
            self._file.write(line + "\n")
            self._file.flush()

    def flush(self) -> None:
        """Flush the underlying stream (safe on an already-closed file)."""
        with self._lock:
            if not self._file.closed:
                self._file.flush()

    def close(self) -> None:
        unregister_flush(self)
        if self._owns:
            self._file.close()


class EventLogger:
    """Leveled, namespaced structured logger fanning out to sinks.

    Parameters
    ----------
    sinks:
        Objects with ``emit(event)`` (and optionally ``close()``).
    level:
        Minimum severity that passes (``"debug" | "info" | "warning" |
        "error"``).
    namespaces:
        Optional allow-list of dotted-name prefixes; an event passes when
        its full name equals a prefix or sits under ``prefix + "."``.
        ``None`` allows everything.
    namespace:
        Prefix prepended to every event name this logger emits
        (:meth:`bind` children share sinks/filters with the parent).
    """

    def __init__(
        self,
        sinks: Optional[Iterable] = None,
        level: str = "info",
        namespaces: Optional[Sequence[str]] = None,
        namespace: str = "",
    ):
        self._sinks: List = list(sinks) if sinks is not None else []
        self._threshold = _level_number(level)
        self._level = level
        self._namespaces = tuple(namespaces) if namespaces is not None else None
        self.namespace = namespace

    # -- configuration -------------------------------------------------
    def set_level(self, level: str) -> None:
        self._threshold = _level_number(level)
        self._level = level

    @property
    def level(self) -> str:
        return self._level

    def set_namespaces(self, namespaces: Optional[Sequence[str]]) -> None:
        self._namespaces = tuple(namespaces) if namespaces is not None else None

    def add_sink(self, sink) -> None:
        self._sinks.append(sink)

    @property
    def sinks(self) -> List:
        return list(self._sinks)

    def bind(self, namespace: str) -> "EventLogger":
        """Child logger emitting under ``<self.namespace>.<namespace>``.

        The child *shares* this logger's sink list and filters, so
        reconfiguring the root retroactively applies to bound children.
        """
        child = EventLogger.__new__(EventLogger)
        child._sinks = self._sinks               # shared, not copied
        child._threshold = self._threshold
        child._level = self._level
        child._namespaces = self._namespaces
        child.namespace = (
            f"{self.namespace}.{namespace}" if self.namespace else namespace
        )
        # Children track mutable filters through the original root logger.
        child._parent = self._effective()
        return child

    # -- filtering -----------------------------------------------------
    def _effective(self) -> "EventLogger":
        return getattr(self, "_parent", self)

    def enabled_for(self, level: str, name: str = "") -> bool:
        root = self._effective()
        if _level_number(level) < root._threshold:
            return False
        if root._namespaces is None:
            return True
        full = f"{self.namespace}.{name}" if self.namespace and name else (
            self.namespace or name
        )
        return any(
            full == prefix or full.startswith(prefix + ".")
            for prefix in root._namespaces
        )

    # -- emission ------------------------------------------------------
    def log(self, level: str, name: str, **fields: Any) -> Optional[Event]:
        if not self.enabled_for(level, name):
            return None
        full = f"{self.namespace}.{name}" if self.namespace else name
        event = Event(name=full, level=level, ts=time.time(), fields=fields)
        for sink in self._effective()._sinks:
            sink.emit(event)
        return event

    def debug(self, name: str, **fields: Any) -> Optional[Event]:
        return self.log("debug", name, **fields)

    def info(self, name: str, **fields: Any) -> Optional[Event]:
        return self.log("info", name, **fields)

    def warning(self, name: str, **fields: Any) -> Optional[Event]:
        return self.log("warning", name, **fields)

    def error(self, name: str, **fields: Any) -> Optional[Event]:
        return self.log("error", name, **fields)

    def close(self) -> None:
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close:
                close()


# ----------------------------------------------------------------------
# Process-global logger
# ----------------------------------------------------------------------
_ROOT_LOCK = threading.Lock()
_ROOT: Optional[EventLogger] = None


def get_logger(namespace: str = "") -> EventLogger:
    """The process-global logger (human stderr sink, ``info`` level).

    ``get_logger("train")`` returns a child bound to the ``train``
    namespace; reconfiguring via :func:`configure_logging` affects every
    previously obtained child because sinks and filters are shared.
    """
    global _ROOT
    with _ROOT_LOCK:
        if _ROOT is None:
            _ROOT = EventLogger(sinks=[HumanSink()], level="info")
    return _ROOT.bind(namespace) if namespace else _ROOT


def configure_logging(
    level: Optional[str] = None,
    sinks: Optional[Iterable] = None,
    jsonl_path: Optional[Union[str, Path]] = None,
    namespaces: Optional[Sequence[str]] = None,
) -> EventLogger:
    """Reconfigure the process-global logger in place.

    ``sinks`` replaces the sink list outright; ``jsonl_path`` appends a
    :class:`JsonlSink` to whatever sinks remain. ``namespaces=None`` leaves
    the current filter untouched — pass ``()`` to silence everything or an
    explicit prefix list to narrow.
    """
    root = get_logger()
    if level is not None:
        root.set_level(level)
    if sinks is not None:
        root._sinks[:] = list(sinks)
    if jsonl_path is not None:
        root.add_sink(JsonlSink(jsonl_path))
    if namespaces is not None:
        root.set_namespaces(namespaces)
    return root


def reset_logging() -> None:
    """Drop the global logger (tests); the next get_logger() rebuilds it."""
    global _ROOT
    with _ROOT_LOCK:
        if _ROOT is not None:
            _ROOT.close()
        _ROOT = None


def read_events(path: Union[str, Path]) -> List[Event]:
    """Parse every ``type == "event"`` line of a JSONL file back to Events."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if payload.get("type") == "event":
                events.append(Event.from_dict(payload))
    return events
