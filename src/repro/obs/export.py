"""Metric exporters: Prometheus text format, JSON snapshots, scrape endpoint.

Everything in a :class:`repro.obs.metrics.MetricsRegistry` dies with the
process unless it leaves in a scrape-able shape. This module is the export
layer:

- :func:`render_prometheus` — the registry in Prometheus text exposition
  format (version 0.0.4). Counters become ``<name>_total``, gauges map
  directly, histograms export as summaries (``quantile`` labels over the
  bounded window, cumulative ``_sum``/``_count``) plus windowed
  ``_min``/``_max`` gauges.
- :func:`json_snapshot` / :func:`write_json_snapshot` — the flat snapshot
  under the stable schema ``repro.obs.metrics/1``.
- :class:`PeriodicExporter` — background thread flushing either format to a
  file on an interval, with atomic replace and a clean shutdown flush.
- :class:`MetricsServer` — a stdlib ``http.server`` endpoint exposing
  ``/metrics`` (Prometheus text) and ``/healthz`` (JSON; 503 once an
  attached health callback reports degradation). ``repro serve batch
  --metrics-port`` wires it to the live serving registry.

:func:`parse_prometheus` is a minimal reader for the exposition format so
tests (and the run differ) can round-trip what the writer emits, including
label escaping.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from .lifecycle import flush_at_exit, unregister_flush
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Schema tag stamped on every JSON metrics snapshot.
SNAPSHOT_SCHEMA = "repro.obs.metrics/1"

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Summary quantiles exported for every histogram.
QUANTILES = (0.5, 0.95, 0.99)

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(\{(?P<labels>.*)\})?\s+(?P<value>\S+)$"
)


def prometheus_name(name: str, prefix: str = "repro_") -> str:
    """Sanitize a registry metric name into a legal Prometheus name.

    Dots and other illegal characters become underscores and the exporter
    prefix (default ``repro_``) namespaces the series:
    ``serve.latency_seconds`` → ``repro_serve_latency_seconds``.
    """
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    full = f"{prefix}{sanitized}"
    if not _NAME_OK.match(full):
        full = f"_{full}"
    return full


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def unescape_label_value(value: str) -> str:
    """Inverse of :func:`escape_label_value`."""
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"\\": "\\", "n": "\n", '"': '"'}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def format_labels(labels: Optional[Dict[str, str]]) -> str:
    """``{k="v",...}`` label block (empty string for no labels)."""
    if not labels:
        return ""
    parts = [
        f'{key}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    ]
    return "{" + ",".join(parts) + "}"


def _fmt(value: float) -> str:
    return repr(float(value))


def prometheus_lines(
    registry: MetricsRegistry,
    labels: Optional[Dict[str, str]] = None,
    prefix: str = "repro_",
) -> List[str]:
    """The registry as exposition-format lines (with ``# TYPE`` comments)."""
    lines: List[str] = []
    base = dict(labels) if labels else {}
    for name, metric in registry.items():
        pname = prometheus_name(name, prefix=prefix)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {pname}_total counter")
            lines.append(f"{pname}_total{format_labels(base)} {_fmt(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname}{format_labels(base)} {_fmt(metric.value)}")
        elif isinstance(metric, Histogram):
            snap = metric.snapshot()
            lines.append(f"# TYPE {pname} summary")
            for q in QUANTILES:
                q_labels = dict(base)
                q_labels["quantile"] = _fmt(q)
                key = f"p{int(q * 100)}"
                lines.append(f"{pname}{format_labels(q_labels)} {_fmt(snap[key])}")
            lines.append(f"{pname}_sum{format_labels(base)} {_fmt(snap['sum'])}")
            lines.append(f"{pname}_count{format_labels(base)} {_fmt(snap['count'])}")
            for stat in ("min", "max"):
                lines.append(f"# TYPE {pname}_{stat} gauge")
                lines.append(
                    f"{pname}_{stat}{format_labels(base)} {_fmt(snap[stat])}"
                )
    return lines


def render_prometheus(
    registry: MetricsRegistry,
    labels: Optional[Dict[str, str]] = None,
    prefix: str = "repro_",
) -> str:
    """The full ``/metrics`` payload (trailing newline included)."""
    return "\n".join(prometheus_lines(registry, labels=labels, prefix=prefix)) + "\n"


@dataclasses.dataclass(frozen=True)
class Sample:
    """One parsed exposition-format sample line."""

    name: str
    labels: Dict[str, str]
    value: float


def _parse_label_block(block: str) -> Dict[str, str]:
    """Parse ``k="v",k2="v2"`` honoring escaped quotes inside values."""
    labels: Dict[str, str] = {}
    i = 0
    n = len(block)
    while i < n:
        eq = block.index("=", i)
        key = block[i:eq].strip().lstrip(",").strip()
        if block[eq + 1] != '"':
            raise ValueError(f"malformed label block: {block!r}")
        j = eq + 2
        raw: List[str] = []
        while j < n:
            ch = block[j]
            if ch == "\\" and j + 1 < n:
                raw.append(block[j : j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        if j >= n:
            raise ValueError(f"unterminated label value in {block!r}")
        labels[key] = unescape_label_value("".join(raw))
        i = j + 1
    return labels


def parse_prometheus(text: str) -> List[Sample]:
    """Parse exposition text back into samples (comments skipped).

    Not a general scraper — just enough of the format to round-trip what
    :func:`render_prometheus` writes, which is what the tests pin down.
    """
    samples: List[Sample] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"unparseable sample line: {line!r}")
        block = match.group("labels")
        samples.append(
            Sample(
                name=match.group("name"),
                labels=_parse_label_block(block) if block else {},
                value=float(match.group("value")),
            )
        )
    return samples


# ----------------------------------------------------------------------
# JSON snapshots
# ----------------------------------------------------------------------
def json_snapshot(
    registry: MetricsRegistry, labels: Optional[Dict[str, str]] = None
) -> Dict:
    """The registry's flat snapshot under the ``repro.obs.metrics/1`` schema."""
    return {
        "schema": SNAPSHOT_SCHEMA,
        "unix_ts": time.time(),
        "labels": dict(labels) if labels else {},
        "metrics": registry.snapshot(),
    }


def _atomic_write(path: Path, content: str) -> Path:
    """Write-then-rename so scrapers never read a torn file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(content, encoding="utf-8")
    os.replace(tmp, path)
    return path


def write_json_snapshot(
    registry: MetricsRegistry,
    path: Union[str, Path],
    labels: Optional[Dict[str, str]] = None,
) -> Path:
    """Atomically write :func:`json_snapshot` to ``path``."""
    payload = json.dumps(json_snapshot(registry, labels=labels), indent=2, sort_keys=True)
    return _atomic_write(Path(path), payload + "\n")


def write_prometheus(
    registry: MetricsRegistry,
    path: Union[str, Path],
    labels: Optional[Dict[str, str]] = None,
) -> Path:
    """Atomically write :func:`render_prometheus` to ``path`` (node-exporter
    textfile-collector style)."""
    return _atomic_write(Path(path), render_prometheus(registry, labels=labels))


# ----------------------------------------------------------------------
# Periodic exporter
# ----------------------------------------------------------------------
class PeriodicExporter:
    """Background thread flushing the registry to a file every ``interval``.

    Parameters
    ----------
    registry:
        The source :class:`MetricsRegistry`.
    path:
        Output file; each flush atomically replaces it.
    interval:
        Seconds between flushes (must be positive).
    fmt:
        ``"prometheus"`` (text exposition) or ``"json"`` (snapshot schema).
    labels:
        Constant labels stamped on every exported sample.

    ``stop()`` performs one final flush so the file always reflects the end
    state; the exporter is also registered with
    :func:`repro.obs.lifecycle.flush_at_exit` for crash-adjacent exits.
    """

    FORMATS = ("prometheus", "json")

    def __init__(
        self,
        registry: MetricsRegistry,
        path: Union[str, Path],
        interval: float = 5.0,
        fmt: str = "prometheus",
        labels: Optional[Dict[str, str]] = None,
    ):
        if interval <= 0:
            raise ValueError("exporter interval must be positive")
        if fmt not in self.FORMATS:
            raise ValueError(f"unknown export format {fmt!r} (expected {self.FORMATS})")
        self.registry = registry
        self.path = Path(path)
        self.interval = float(interval)
        self.fmt = fmt
        self.labels = dict(labels) if labels else {}
        self.flushes = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def flush(self) -> Path:
        """Write one snapshot now (also called from the interval loop)."""
        if self.fmt == "json":
            out = write_json_snapshot(self.registry, self.path, labels=self.labels)
        else:
            out = write_prometheus(self.registry, self.path, labels=self.labels)
        self.flushes += 1
        return out

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.flush()

    def start(self) -> "PeriodicExporter":
        if self._thread is not None and self._thread.is_alive():
            raise RuntimeError("PeriodicExporter already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-metrics-exporter"
        )
        self._thread.start()
        flush_at_exit(self)
        return self

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Stop the loop and write the final snapshot."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        self.flush()
        unregister_flush(self)

    def __enter__(self) -> "PeriodicExporter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Scrape endpoint
# ----------------------------------------------------------------------
class MetricsServer:
    """Stdlib HTTP endpoint exposing ``/metrics`` and ``/healthz``.

    Parameters
    ----------
    registry:
        Registry rendered on every ``/metrics`` scrape.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back from
        :attr:`port` — handy for tests and for `repro serve batch` logs).
    labels:
        Constant labels stamped on every sample.
    health:
        Optional zero-arg callable returning a JSON-serializable dict with a
        ``"status"`` key; anything other than ``"ok"`` turns ``/healthz``
        into a 503 (the conventional load-balancer eject signal). Defaults
        to always-ok. :meth:`repro.obs.slo.SloMonitor.health` slots in
        directly.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        labels: Optional[Dict[str, str]] = None,
        health: Optional[Callable[[], Dict]] = None,
    ):
        self.registry = registry
        self.labels = dict(labels) if labels else {}
        self._health = health or (lambda: {"status": "ok"})
        self._started = time.time()
        server = self

        class _Handler(BaseHTTPRequestHandler):
            server_version = "repro-metrics/1"

            def do_GET(self) -> None:  # stdlib handler naming contract
                route = self.path.split("?", 1)[0]
                if route == "/metrics":
                    body = render_prometheus(
                        server.registry, labels=server.labels
                    ).encode("utf-8")
                    self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
                elif route == "/healthz":
                    payload = dict(server._health())
                    payload.setdefault("uptime_seconds", time.time() - server._started)
                    status = 200 if payload.get("status") == "ok" else 503
                    body = json.dumps(payload, sort_keys=True).encode("utf-8")
                    self._reply(status, "application/json", body)
                else:
                    body = json.dumps({"error": "not found"}).encode("utf-8")
                    self._reply(404, "application/json", body)

            def _reply(self, status: int, content_type: str, body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt: str, *args) -> None:
                from .events import get_logger

                get_logger("obs.http").debug("request", detail=fmt % args)

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        if self._thread is not None and self._thread.is_alive():
            raise RuntimeError("MetricsServer already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            daemon=True,
            name="repro-metrics-http",
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
