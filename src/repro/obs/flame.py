"""Continuous sampling profiler with folded stacks and flamegraph export.

The PR 2 :class:`repro.obs.OpProfiler` attributes time to autograd tape
ops, but it is blind to everything outside the tape: BoW featurization,
shard routing, queue handling, serialization, and the raw-numpy interiors
of the fused kernels. This module is the production answer — a
low-overhead background thread that walks :func:`sys._current_frames` at a
fixed rate (default 100 Hz) and aggregates *folded stacks*::

    MainThread;serve.request;worker.forward;gru_sequence;repro.autograd.kernels._gru_forward 412

Each sample line is ``thread;context tags;python frames`` and the number
is how many samples landed there. Two context sources are woven in so
samples carry *semantic* ancestry, not just code ancestry:

- the open span path of the sampled thread (a lightweight observer on
  :class:`repro.obs.tracing.Tracer` push/pop — ``serve.request`` …), and
- the autograd op currently executing (an enter/exit hook around every
  :func:`repro.autograd.tensor.instrument_op`-wrapped op —
  ``gru_sequence``, ``matmul`` …).

Both registries are keyed by thread ident rather than ``contextvars``
because the *sampler thread* must read the state of *other* threads;
a contextvar is only readable from its own logical flow of control.

Profiles serialize under the stable schema ``repro.obs.profile/1``
(:meth:`Profile.to_dict`), merge across processes with a per-shard prefix
frame (:func:`merge_profiles`), diff by per-frame self time
(:func:`diff_profiles` — "did the fused kernel move the needle" as one
table), and render as a self-contained flamegraph SVG with no external
dependencies (:func:`render_flamegraph_svg`).

Fork safety: a forked child inherits the profiler *object* but not its
sampler thread, and inherits the parent's accumulated counts. Every
public entry point checks the owning pid — in a child the profiler
reports not-running, drops the inherited counts, and :meth:`start`
brings up a fresh sampler that counts only the child's own stacks.
"""

from __future__ import annotations

import dataclasses
import json
import math
import sys
import threading
import os
from contextlib import contextmanager
from pathlib import Path
from time import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..autograd.tensor import set_op_tag_hook
from .tracing import set_span_observer

#: Schema tag of one serialized sampling profile.
PROFILE_SCHEMA = "repro.obs.profile/1"

#: Schema tag of a profile diff report.
PROFILE_DIFF_SCHEMA = "repro.obs.profile_diff/1"

#: Default sampling rate (Hz); 100 keeps overhead around a percent.
DEFAULT_HZ = 100.0

#: Separator between frames in a folded stack line.
SEP = ";"


# ----------------------------------------------------------------------
# Cross-thread context tags
# ----------------------------------------------------------------------
#: thread ident -> stack of context tags (span names, active op). Written
#: by the owning thread, read by the sampler thread; list append/pop are
#: atomic under the GIL and the sampler copies before use.
_TAGS: Dict[int, List[str]] = {}


# A forked child inherits the registry but only the forking thread — whose
# ident the fork preserves — survives; stale parent tags would mislabel
# every sample the child takes inside an inherited ``tag(...)`` block.
os.register_at_fork(after_in_child=_TAGS.clear)


def push_tag(name: str) -> None:
    """Push a context tag for the calling thread (pair with :func:`pop_tag`)."""
    ident = threading.get_ident()
    stack = _TAGS.get(ident)
    if stack is None:
        stack = _TAGS[ident] = []
    stack.append(name)


def pop_tag() -> None:
    """Pop the calling thread's innermost context tag."""
    ident = threading.get_ident()
    stack = _TAGS.get(ident)
    if stack:
        stack.pop()
        if not stack:
            # Drop the empty list so dead threads do not leak registry rows.
            _TAGS.pop(ident, None)


@contextmanager
def tag(name: str) -> Iterator[None]:
    """Tag every sample taken of this thread while the block runs.

    This is how code *without* a live tracer labels its hot sections —
    the serve workers wrap their batched forward in ``tag("worker.forward")``
    so cross-process samples still carry the serving-stage ancestry.
    """
    push_tag(name)
    try:
        yield
    finally:
        pop_tag()


def current_tags(ident: Optional[int] = None) -> Tuple[str, ...]:
    """The tag stack of a thread (default: the calling thread), outermost first."""
    stack = _TAGS.get(ident if ident is not None else threading.get_ident())
    return tuple(stack) if stack else ()


# ----------------------------------------------------------------------
# Profile: the serializable aggregate
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Profile:
    """An aggregated folded-stack profile (schema ``repro.obs.profile/1``).

    ``stacks`` maps a folded stack (``;``-joined, root first) to its
    sample count. ``interval_s`` converts counts to seconds:
    one sample ≈ ``interval_s`` seconds of wall time on that stack.
    """

    stacks: Dict[str, int] = dataclasses.field(default_factory=dict)
    samples: int = 0
    duration_s: float = 0.0
    interval_s: float = 1.0 / DEFAULT_HZ
    meta: Dict[str, Any] = dataclasses.field(default_factory=dict)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": PROFILE_SCHEMA,
            "stacks": dict(self.stacks),
            "samples": self.samples,
            "duration_s": self.duration_s,
            "interval_s": self.interval_s,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Profile":
        schema = payload.get("schema")
        if schema != PROFILE_SCHEMA:
            raise ValueError(
                f"not a profile (schema {schema!r}, expected {PROFILE_SCHEMA!r})"
            )
        return cls(
            stacks={str(k): int(v) for k, v in payload.get("stacks", {}).items()},
            samples=int(payload.get("samples", 0)),
            duration_s=float(payload.get("duration_s", 0.0)),
            interval_s=float(payload.get("interval_s", 1.0 / DEFAULT_HZ)),
            meta=dict(payload.get("meta", {})),
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Profile":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    # -- views ----------------------------------------------------------
    def folded(self) -> str:
        """The profile in folded-stack text (one ``stack count`` per line).

        This is the interchange format every flamegraph tool reads, so a
        profile captured here can also feed external renderers.
        """
        return "\n".join(
            f"{stack} {count}"
            for stack, count in sorted(self.stacks.items())
        )

    @classmethod
    def from_folded(cls, text: str, **kwargs) -> "Profile":
        stacks: Dict[str, int] = {}
        total = 0
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            stack, _, count = line.rpartition(" ")
            n = int(count)
            stacks[stack] = stacks.get(stack, 0) + n
            total += n
        return cls(stacks=stacks, samples=total, **kwargs)

    def self_counts(self) -> Dict[str, int]:
        """Per-frame *self* samples: samples whose stack ends at the frame."""
        out: Dict[str, int] = {}
        for stack, count in self.stacks.items():
            leaf = stack.rsplit(SEP, 1)[-1]
            out[leaf] = out.get(leaf, 0) + count
        return out

    def total_counts(self) -> Dict[str, int]:
        """Per-frame *total* samples: samples whose stack contains the frame."""
        out: Dict[str, int] = {}
        for stack, count in self.stacks.items():
            for frame in set(stack.split(SEP)):
                out[frame] = out.get(frame, 0) + count
        return out

    def self_seconds(self) -> Dict[str, float]:
        """Per-frame self time in seconds (``self samples × interval``)."""
        return {
            frame: count * self.interval_s
            for frame, count in self.self_counts().items()
        }

    def subtract(self, earlier: "Profile") -> "Profile":
        """The activity between an ``earlier`` snapshot and this one.

        Counts clamp at zero, so a window capture over a continuously
        running profiler never reports phantom negative stacks.
        """
        stacks = {}
        for stack, count in self.stacks.items():
            delta = count - earlier.stacks.get(stack, 0)
            if delta > 0:
                stacks[stack] = delta
        samples = max(0, self.samples - earlier.samples)
        duration = max(0.0, self.duration_s - earlier.duration_s)
        return Profile(
            stacks=stacks,
            samples=samples,
            duration_s=duration,
            interval_s=(duration / samples) if samples else self.interval_s,
            meta=dict(self.meta),
        )

    def prefixed(self, root: str) -> "Profile":
        """A copy with every stack re-rooted under ``root`` (merge helper)."""
        return dataclasses.replace(
            self,
            stacks={f"{root}{SEP}{stack}": count for stack, count in self.stacks.items()},
            meta=dict(self.meta),
        )


def merge_profiles(
    parts: Dict[str, Optional[Profile]], meta: Optional[Dict[str, Any]] = None
) -> Profile:
    """Merge per-process profiles into one, keyed by a prefix root frame.

    ``parts`` maps a root label (``"shard0"``, ``"frontend"``) to that
    process's profile (``None`` entries — a worker that had no profiler —
    are skipped). The merged profile's stacks all start with their root
    label, so the flamegraph splits by shard at the first level and
    per-shard totals stay recoverable.
    """
    merged = Profile(stacks={}, samples=0, duration_s=0.0, meta=dict(meta or {}))
    intervals: List[float] = []
    keyed: Dict[str, Dict[str, Any]] = {}
    for label in sorted(parts):
        part = parts[label]
        if part is None:
            continue
        for stack, count in part.prefixed(label).stacks.items():
            merged.stacks[stack] = merged.stacks.get(stack, 0) + count
        merged.samples += part.samples
        merged.duration_s = max(merged.duration_s, part.duration_s)
        intervals.append(part.interval_s)
        keyed[label] = {"samples": part.samples, "duration_s": part.duration_s}
    if intervals:
        merged.interval_s = sum(intervals) / len(intervals)
    merged.meta["parts"] = keyed
    return merged


# ----------------------------------------------------------------------
# The sampler
# ----------------------------------------------------------------------
class SamplingProfiler:
    """Background-thread sampling profiler over ``sys._current_frames``.

    Parameters
    ----------
    interval:
        Seconds between samples (default 10 ms = 100 Hz).
    max_depth:
        Frames kept per stack, nearest the leaf; deeper ancestry collapses
        into a ``…`` frame so pathological recursion cannot bloat keys.
    tag_context:
        Weave span names and active autograd ops into the folded stacks
        (installs the tracer observer and the op tag hook while running).

    One profiler may run per process at a time (the context hooks are
    process-global). The profiler is fork-safe: see the module docstring.
    """

    def __init__(
        self,
        interval: float = 1.0 / DEFAULT_HZ,
        *,
        max_depth: int = 64,
        tag_context: bool = True,
    ):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval = float(interval)
        self.max_depth = int(max_depth)
        self.tag_context = tag_context
        self._counts: Dict[str, int] = {}
        self._samples = 0
        self._active_before = 0.0
        self._started_at = 0.0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._pid: Optional[int] = None
        self._prev_span_observer = None
        self._prev_op_tag = None
        #: sampling iterations that raised (exposed for tests; a sampler
        #: must never take down the process it observes)
        self.sample_errors = 0

    # -- lifecycle ------------------------------------------------------
    @property
    def running(self) -> bool:
        """True while this process's own sampler thread is alive."""
        return (
            self._pid == os.getpid()
            and self._thread is not None
            and self._thread.is_alive()
        )

    def _reset_if_forked(self) -> None:
        """Drop state inherited across ``fork()``.

        The child inherits the counts dict and the ``running`` flags but
        not the sampler thread; counting the parent's samples into the
        child's profile would double-attribute every pre-fork stack.
        """
        if self._pid is not None and self._pid != os.getpid():
            self._counts = {}
            self._samples = 0
            self._active_before = 0.0
            self._started_at = 0.0
            self._thread = None
            self._pid = None
            self._stop = threading.Event()
            self._lock = threading.Lock()
            self.sample_errors = 0

    def start(self) -> "SamplingProfiler":
        self._reset_if_forked()
        if self.running:
            raise RuntimeError("SamplingProfiler already running")
        self._pid = os.getpid()
        self._started_at = time()
        self._stop.clear()
        if self.tag_context:
            self._prev_span_observer = set_span_observer((push_tag, pop_tag))
            self._prev_op_tag = set_op_tag_hook((push_tag, pop_tag))
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-flame-sampler"
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        self._reset_if_forked()
        if self._thread is not None:
            self._stop.set()
            self._thread.join(5.0)
            self._thread = None
            if self._started_at:
                self._active_before += time() - self._started_at
                self._started_at = 0.0
        if self.tag_context and self._pid is not None:
            set_span_observer(self._prev_span_observer)
            set_op_tag_hook(self._prev_op_tag)
            self._prev_span_observer = None
            self._prev_op_tag = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sampling loop --------------------------------------------------
    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval):
            try:
                self._sample_once(own)
            except Exception:
                # A racing thread teardown can invalidate a frame mid-walk;
                # losing one sample is fine, killing the sampler is not.
                self.sample_errors += 1

    def _sample_once(self, own_ident: int) -> None:
        frames = sys._current_frames()
        names = {t.ident: t.name for t in threading.enumerate()}
        rows: List[str] = []
        for ident, frame in frames.items():
            if ident == own_ident:
                continue
            stack = self._fold(frame)
            if not stack:
                continue
            parts = [names.get(ident, f"thread-{ident}")]
            tags = _TAGS.get(ident)
            if tags:
                parts.extend(tuple(tags))
            parts.extend(stack)
            rows.append(SEP.join(parts))
        with self._lock:
            for row in rows:
                self._counts[row] = self._counts.get(row, 0) + 1
            self._samples += 1

    def _fold(self, frame) -> List[str]:
        """Root-first frame names, depth-capped nearest the leaf."""
        stack: List[str] = []
        node = frame
        while node is not None:
            code = node.f_code
            module = node.f_globals.get("__name__", code.co_filename)
            stack.append(f"{module}.{code.co_name}")
            node = node.f_back
        stack.reverse()
        if len(stack) > self.max_depth:
            stack = ["…"] + stack[-self.max_depth:]
        return stack

    # -- reporting ------------------------------------------------------
    def snapshot(self, meta: Optional[Dict[str, Any]] = None) -> Profile:
        """A consistent copy of the accumulated profile (sampler keeps going).

        ``interval_s`` is the *effective* interval — active wall seconds
        divided by samples taken — so ``self_seconds`` attributes real
        wall time even when a sampling pass costs more than the nominal
        interval and the achieved rate drops below the requested Hz.
        """
        self._reset_if_forked()
        with self._lock:
            stacks = dict(self._counts)
            samples = self._samples
        active = self._active_before
        if self._started_at:
            active += time() - self._started_at
        base = {"pid": os.getpid(), "hz": round(1.0 / self.interval, 3)}
        base.update(meta or {})
        return Profile(
            stacks=stacks,
            samples=samples,
            duration_s=active,
            interval_s=(active / samples) if samples else self.interval,
            meta=base,
        )

    def reset(self) -> None:
        self._reset_if_forked()
        with self._lock:
            self._counts = {}
            self._samples = 0
        self._active_before = 0.0
        if self._thread is not None and self._thread.is_alive():
            self._started_at = time()
        else:
            self._started_at = 0.0


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------
def diff_profiles(
    a: Profile, b: Profile, *, limit: Optional[int] = None
) -> Dict[str, Any]:
    """Per-frame self-time comparison (schema ``repro.obs.profile_diff/1``).

    Frames are compared by *self seconds* (samples where the frame is the
    stack leaf, scaled by each profile's interval) — the quantity an
    optimization actually moves. Entries sort by absolute delta, largest
    first, so "what changed" is the top row; shares are relative to each
    profile's own total so runs of different lengths stay comparable.
    """
    self_a = a.self_seconds()
    self_b = b.self_seconds()
    total_a = sum(self_a.values()) or 1.0
    total_b = sum(self_b.values()) or 1.0
    entries = []
    for frame in set(self_a) | set(self_b):
        sa = self_a.get(frame, 0.0)
        sb = self_b.get(frame, 0.0)
        entries.append({
            "frame": frame,
            "a_seconds": sa,
            "b_seconds": sb,
            "delta_seconds": sb - sa,
            "a_share": sa / total_a,
            "b_share": sb / total_b,
        })
    entries.sort(key=lambda e: (-abs(e["delta_seconds"]), e["frame"]))
    if limit is not None:
        entries = entries[:limit]
    return {
        "schema": PROFILE_DIFF_SCHEMA,
        "a": {"samples": a.samples, "duration_s": a.duration_s,
              "self_seconds": total_a, "meta": dict(a.meta)},
        "b": {"samples": b.samples, "duration_s": b.duration_s,
              "self_seconds": total_b, "meta": dict(b.meta)},
        "entries": entries,
    }


def render_diff(diff: Dict[str, Any], limit: int = 25) -> str:
    """The :func:`diff_profiles` report as an aligned table."""
    lines = [
        "profile diff (self time per frame; B − A):",
        f"  A: {diff['a']['samples']} samples / "
        f"{diff['a']['self_seconds']:.2f}s   "
        f"B: {diff['b']['samples']} samples / "
        f"{diff['b']['self_seconds']:.2f}s",
        f"  {'frame':<52s} {'A s':>8s} {'B s':>8s} {'Δ s':>8s} {'Δ':>7s}",
    ]
    for entry in diff["entries"][:limit]:
        frame = entry["frame"]
        if len(frame) > 52:
            frame = "…" + frame[-51:]
        sign = "+" if entry["delta_seconds"] >= 0 else "-"
        lines.append(
            f"  {frame:<52s} {entry['a_seconds']:>8.2f} "
            f"{entry['b_seconds']:>8.2f} {entry['delta_seconds']:>+8.2f} "
            f"{sign}{100.0 * abs(entry['b_share'] - entry['a_share']):>5.1f}%"
        )
    return "\n".join(lines)


def render_top(profile: Profile, limit: int = 20) -> str:
    """Top frames by self time — the quick text view of one profile."""
    selfs = profile.self_seconds()
    total = sum(selfs.values()) or 1.0
    rows = sorted(selfs.items(), key=lambda kv: (-kv[1], kv[0]))[:limit]
    lines = [
        f"sampling profile: {profile.samples} samples over "
        f"{profile.duration_s:.2f}s at "
        f"{1.0 / profile.interval_s:.0f} Hz",
        f"  {'frame (self time)':<60s} {'self s':>8s} {'share':>7s}",
    ]
    for frame, seconds in rows:
        if len(frame) > 60:
            frame = "…" + frame[-59:]
        lines.append(
            f"  {frame:<60s} {seconds:>8.2f} {100.0 * seconds / total:>6.1f}%"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Flamegraph SVG
# ----------------------------------------------------------------------
def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;")
        .replace(">", "&gt;").replace('"', "&quot;")
    )


def _frame_color(name: str, heat: float = 0.0) -> str:
    """Deterministic warm color per frame name.

    ``heat`` in [-1, 1] shifts toward red (regressed) or blue (improved)
    for differential flamegraphs; 0 keeps the classic warm palette.
    """
    seed = 0
    for ch in name:
        seed = (seed * 131 + ord(ch)) & 0xFFFFFF
    if heat > 0:
        base = (230, int(120 - 70 * heat), int(80 - 50 * heat))
    elif heat < 0:
        base = (int(110 + 40 * heat), int(150 + 30 * heat), 235)
    else:
        base = (205 + seed % 50, 90 + (seed >> 8) % 90, 40 + (seed >> 16) % 40)
    r, g, b = (max(0, min(255, int(c))) for c in base)
    return f"rgb({r},{g},{b})"


class _Node:
    """One flamegraph tree node (built from folded stacks)."""

    __slots__ = ("name", "count", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.children: Dict[str, "_Node"] = {}

    def add(self, frames: Sequence[str], count: int) -> None:
        self.count += count
        if not frames:
            return
        head = frames[0]
        child = self.children.get(head)
        if child is None:
            child = self.children[head] = _Node(head)
        child.add(frames[1:], count)


def build_tree(profile: Profile, root_name: str = "all") -> _Node:
    root = _Node(root_name)
    root.count = 0
    for stack, count in sorted(profile.stacks.items()):
        root.add(stack.split(SEP), count)
    return root


def render_flamegraph_svg(
    profile: Profile,
    *,
    title: Optional[str] = None,
    baseline: Optional[Profile] = None,
    width: int = 1200,
    row_height: int = 17,
    min_frac: float = 0.0015,
) -> str:
    """A self-contained flamegraph SVG (no JS, no external assets).

    Rectangles nest root-at-top ("icicle" orientation); hovering shows the
    full frame name, sample count and share via native ``<title>``
    tooltips. With ``baseline`` given, frames are heat-colored by how
    their self-time share moved against it (red = grew, blue = shrank) —
    a differential flamegraph for the ``--diff`` workflow.
    """
    root = build_tree(profile)
    total = root.count or 1
    heat: Dict[str, float] = {}
    if baseline is not None:
        self_a = baseline.self_seconds()
        self_b = profile.self_seconds()
        norm_a = sum(self_a.values()) or 1.0
        norm_b = sum(self_b.values()) or 1.0
        spread = max(
            (abs(self_b.get(f, 0.0) / norm_b - self_a.get(f, 0.0) / norm_a)
             for f in set(self_a) | set(self_b)),
            default=0.0,
        ) or 1.0
        for frame in set(self_a) | set(self_b):
            delta = self_b.get(frame, 0.0) / norm_b - self_a.get(frame, 0.0) / norm_a
            heat[frame] = max(-1.0, min(1.0, delta / spread))

    rects: List[str] = []
    max_depth = 0

    def emit(node: _Node, x: float, depth: int) -> None:
        nonlocal max_depth
        frac = node.count / total
        if frac < min_frac:
            return
        max_depth = max(max_depth, depth)
        w = frac * width
        y = depth * row_height
        color = _frame_color(node.name, heat.get(node.name, 0.0))
        share = 100.0 * frac
        tip = _escape(
            f"{node.name} — {node.count} samples ({share:.2f}%)"
        )
        label = ""
        if w >= 40:
            chars = max(1, int(w / 7.2) - 1)
            text = node.name if len(node.name) <= chars else node.name[: chars - 1] + "…"
            label = (
                f'<text x="{x + 3:.2f}" y="{y + row_height - 5}" '
                f'font-size="11" font-family="monospace">{_escape(text)}</text>'
            )
        rects.append(
            f'<g><rect x="{x:.2f}" y="{y}" width="{max(w, 0.5):.2f}" '
            f'height="{row_height - 1}" fill="{color}" rx="1">'
            f"<title>{tip}</title></rect>{label}</g>"
        )
        cx = x
        for name in sorted(node.children):
            child = node.children[name]
            emit(child, cx, depth + 1)
            cx += child.count / total * width
        del cx

    emit(root, 0.0, 0)
    height = (max_depth + 1) * row_height + 34
    caption = title or (
        f"{profile.samples} samples · {profile.duration_s:.2f}s · "
        f"{1.0 / profile.interval_s:.0f} Hz"
    )
    if baseline is not None:
        caption += " · differential (red = grew, blue = shrank)"
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
        f'<rect width="{width}" height="{height}" fill="#fdf6ee"/>'
        f'<text x="6" y="{height - 12}" font-size="12" '
        f'font-family="monospace">{_escape(caption)}</text>'
        + "".join(rects)
        + "</svg>"
    )


def write_flamegraph(
    profile: Profile,
    path: Union[str, Path],
    *,
    baseline: Optional[Profile] = None,
    title: Optional[str] = None,
) -> Path:
    """Render and write the flamegraph SVG; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        render_flamegraph_svg(profile, baseline=baseline, title=title),
        encoding="utf-8",
    )
    return path
