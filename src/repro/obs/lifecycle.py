"""Process-exit flushing for buffered observability writers.

JSONL event sinks, span tracers and periodic exporters all buffer through
file objects; an exit path that skips their ``close()`` (an unhandled
exception in a script, ``sys.exit`` deep in a CLI) would truncate the last
buffered lines — exactly the lines that explain the crash. Writers register
here once and :func:`flush_all` runs from a single ``atexit`` hook.

Registration is *weak*: the registry never keeps a writer alive, so a
garbage-collected sink simply drops out. Flush failures at interpreter
shutdown are counted, not raised — a half-dead stream must not mask the
real exit reason.
"""

from __future__ import annotations

import atexit
import threading
import weakref

_LOCK = threading.Lock()
_FLUSHABLES: "weakref.WeakSet" = weakref.WeakSet()
_HOOKED = False

#: flush() calls that raised during flush_all(); exposed for tests.
flush_failures = 0


def flush_at_exit(obj):
    """Register ``obj`` (anything with ``flush()``) for exit-time flushing.

    Idempotent and weak — registering the same writer twice is a no-op and
    the registry never extends the writer's lifetime. Returns ``obj`` so
    constructors can tail-call it.
    """
    global _HOOKED
    with _LOCK:
        _FLUSHABLES.add(obj)
        if not _HOOKED:
            atexit.register(flush_all)
            _HOOKED = True
    return obj


def unregister_flush(obj) -> None:
    """Drop ``obj`` from the exit-flush registry (e.g. after close())."""
    with _LOCK:
        _FLUSHABLES.discard(obj)


def flush_all() -> int:
    """Flush every registered writer; returns how many were flushed.

    Runs at interpreter exit but is also callable directly (tests, a
    crash handler). Exceptions from individual writers are swallowed into
    :data:`flush_failures` so one broken stream cannot block the rest.
    """
    global flush_failures
    with _LOCK:
        writers = list(_FLUSHABLES)
    flushed = 0
    for writer in writers:
        flush = getattr(writer, "flush", None)
        if flush is None:
            continue
        try:
            flush()
            flushed += 1
        except Exception:
            # At shutdown the stream may already be closed by the runtime;
            # count it so tests can assert nothing systematic is failing.
            flush_failures += 1
    return flushed
