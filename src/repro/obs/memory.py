"""Tape memory profiler: per-op bytes, live-tensor census, lifetimes.

The op profiler (:mod:`repro.obs.profiler`) made autograd *compute* hot
spots visible; this module does the same for *memory*. It rides the same
instrumented-op seam — the value-check hook of
:func:`repro.autograd.tensor.set_check_hook`, which hands the profiler every
tensor an instrumented op produces (forward) and every gradient array a
backward closure returns — so no tape op needs re-wrapping.

What it measures, per op name:

- **allocated bytes and counts** — forward output arrays and backward
  gradient arrays, attributed to the op that created the node;
- **peak live bytes** — both globally and per op, tracked through
  ``weakref.finalize`` on the produced tensors, so frees are observed the
  moment the graph lets go of a node;
- **allocation lifetimes** — seconds between an output's creation and its
  collection, the signal that separates transient intermediates from
  arrays pinned by long-lived closures;
- **live census** — the currently live tensors grouped by (shape, dtype),
  which is how an unexpectedly fat training step is usually diagnosed.

Usage::

    with MemoryProfiler() as prof:
        detector.fit(dataset, split)
    print(prof.table())          # top-k ops by allocated bytes
    print(prof.peak_live_bytes)  # high-water mark

Like the op profiler, the accumulation path is deliberately lock-free
(dict upserts under the GIL, targeting the single-threaded training loop);
:meth:`snapshot` materializes consistent copies. The profiler composes with
an already-installed check hook (e.g. the :mod:`repro.analysis` sanitizer)
by chaining to it.
"""

from __future__ import annotations

import itertools
import weakref
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..autograd.tensor import set_check_hook

#: snapshot()/to_dict() field order for per-op forward stats.
_FWD_ALLOCS, _FWD_BYTES, _FWD_LIVE, _FWD_PEAK, _FWD_FREED, _FWD_LIFETIME = range(6)


class MemoryProfiler:
    """Attributes tape memory traffic to the ops that allocated it."""

    def __init__(self):
        self._previous = None
        self._running = False
        self._tokens = itertools.count(1)
        #: token -> (op, nbytes, shape, dtype, perf_counter at alloc)
        self._live: Dict[int, Tuple[str, int, Tuple[int, ...], str, float]] = {}
        # op -> [allocs, bytes, live_bytes, peak_live_bytes, freed, lifetime_s]
        self._forward: Dict[str, List[float]] = {}
        # op -> [allocs, bytes]
        self._backward: Dict[str, List[float]] = {}
        self.live_bytes = 0
        self.peak_live_bytes = 0

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "MemoryProfiler":
        if self._running:
            raise RuntimeError("MemoryProfiler already running")
        self._previous = set_check_hook(self._check)
        self._running = True
        return self

    def stop(self) -> "MemoryProfiler":
        if self._running:
            set_check_hook(self._previous)
            self._previous = None
            self._running = False
        return self

    def __enter__(self) -> "MemoryProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._running

    def reset(self) -> None:
        """Drop accumulated statistics (live tracking of old tensors too)."""
        self._live = {}
        self._forward = {}
        self._backward = {}
        self.live_bytes = 0
        self.peak_live_bytes = 0

    # -- the hot path ---------------------------------------------------
    def _check(self, phase: str, op: str, payload) -> None:
        previous = self._previous
        if previous is not None:
            previous(phase, op, payload)
        if phase == "forward":
            self._record_forward(op, payload)
        else:
            self._record_backward(op, payload)

    def _record_forward(self, op: str, tensor) -> None:
        array = tensor.data
        nbytes = int(array.nbytes)
        entry = self._forward.get(op)
        if entry is None:
            entry = self._forward[op] = [0, 0, 0, 0, 0, 0.0]
        entry[_FWD_ALLOCS] += 1
        entry[_FWD_BYTES] += nbytes
        entry[_FWD_LIVE] += nbytes
        if entry[_FWD_LIVE] > entry[_FWD_PEAK]:
            entry[_FWD_PEAK] = entry[_FWD_LIVE]
        self.live_bytes += nbytes
        if self.live_bytes > self.peak_live_bytes:
            self.peak_live_bytes = self.live_bytes
        token = next(self._tokens)
        self._live[token] = (
            op, nbytes, tuple(array.shape), str(array.dtype), perf_counter()
        )
        try:
            weakref.finalize(tensor, self._freed, token)
        except TypeError:
            # Not weakref-able (exotic Tensor subclass): count the bytes as
            # immediately freed rather than pinning them live forever.
            self._freed(token)

    def _record_backward(self, op: str, payload) -> None:
        _tensor, grads = payload
        if grads is None:
            return
        nbytes = 0
        count = 0
        for grad in grads:
            if grad is None:
                continue
            if type(grad) is not np.ndarray:
                grad = np.asarray(grad)
            nbytes += int(grad.nbytes)
            count += 1
        if count == 0:
            return
        entry = self._backward.get(op)
        if entry is None:
            entry = self._backward[op] = [0, 0]
        entry[0] += count
        entry[1] += nbytes

    def _freed(self, token: int) -> None:
        info = self._live.pop(token, None)
        if info is None:
            return
        op, nbytes, _shape, _dtype, born = info
        self.live_bytes -= nbytes
        entry = self._forward.get(op)
        if entry is not None:
            entry[_FWD_LIVE] -= nbytes
            entry[_FWD_FREED] += 1
            entry[_FWD_LIFETIME] += perf_counter() - born

    # -- reporting ------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """``{"forward": {op: stats}, "backward": {op: stats}}``.

        Forward stats: ``allocs``, ``bytes``, ``live_bytes``,
        ``peak_live_bytes``, ``freed`` and ``mean_lifetime_s`` (over freed
        allocations). Backward stats: ``allocs``, ``bytes`` of gradient
        arrays produced by the op's backward closure.
        """
        forward = {}
        for op, entry in list(self._forward.items()):
            allocs, nbytes, live, peak, freed, lifetime = entry
            forward[op] = {
                "allocs": float(allocs),
                "bytes": float(nbytes),
                "live_bytes": float(live),
                "peak_live_bytes": float(peak),
                "freed": float(freed),
                "mean_lifetime_s": lifetime / freed if freed else 0.0,
            }
        backward = {
            op: {"allocs": float(entry[0]), "bytes": float(entry[1])}
            for op, entry in list(self._backward.items())
        }
        return {"forward": forward, "backward": backward}

    def census(self) -> List[Dict[str, object]]:
        """Currently live tensors grouped by (shape, dtype), fattest first."""
        groups: Dict[Tuple[Tuple[int, ...], str], List[int]] = {}
        for _op, nbytes, shape, dtype, _born in list(self._live.values()):
            entry = groups.get((shape, dtype))
            if entry is None:
                entry = groups[(shape, dtype)] = [0, 0]
            entry[0] += 1
            entry[1] += nbytes
        rows = [
            {
                "shape": list(shape),
                "dtype": dtype,
                "count": count,
                "bytes": nbytes,
            }
            for (shape, dtype), (count, nbytes) in groups.items()
        ]
        rows.sort(key=lambda r: (-r["bytes"], str(r["shape"])))
        return rows

    def total_bytes(self, phase: Optional[str] = None) -> float:
        """Total bytes allocated (forward outputs and/or backward grads)."""
        total = 0.0
        if phase in (None, "forward"):
            total += sum(entry[_FWD_BYTES] for entry in self._forward.values())
        if phase in (None, "backward"):
            total += sum(entry[1] for entry in self._backward.values())
        return total

    def to_dict(self) -> Dict:
        """JSONL-embeddable record (``type: "memory"``)."""
        return {
            "type": "memory",
            "ops": self.snapshot(),
            "live_bytes": float(self.live_bytes),
            "peak_live_bytes": float(self.peak_live_bytes),
            "total_bytes": self.total_bytes(),
            "census": self.census(),
        }

    def table(self, limit: Optional[int] = 10) -> str:
        """Top-k report sorted by combined forward+backward bytes."""
        return render_memory(self.to_dict(), limit=limit)


def _mib(nbytes: float) -> float:
    return nbytes / (1024.0 * 1024.0)


def render_memory(profile: Dict, limit: Optional[int] = 10) -> str:
    """Render a :meth:`MemoryProfiler.to_dict` record as aligned tables."""
    ops = profile.get("ops", {})
    forward = ops.get("forward", {})
    backward = ops.get("backward", {})
    names = sorted(set(forward) | set(backward))
    rows = []
    for op in names:
        f = forward.get(op, {})
        b = backward.get(op, {})
        total = f.get("bytes", 0.0) + b.get("bytes", 0.0)
        rows.append(
            (op, f.get("allocs", 0.0), f.get("bytes", 0.0),
             f.get("peak_live_bytes", 0.0), f.get("mean_lifetime_s", 0.0),
             b.get("bytes", 0.0), total)
        )
    rows.sort(key=lambda r: -r[6])
    grand_total = sum(r[6] for r in rows) or 1.0
    if limit is not None:
        rows = rows[:limit]
    lines = [
        "memory profile (bytes by allocating op):",
        f"  {'op':<20s} {'allocs':>8s} {'fwd MiB':>9s} {'peak MiB':>9s} "
        f"{'life ms':>8s} {'bwd MiB':>9s} {'total MiB':>10s} {'share':>7s}",
    ]
    for op, allocs, fbytes, peak, life, bbytes, total in rows:
        lines.append(
            f"  {op:<20s} {int(allocs):>8d} {_mib(fbytes):>9.2f} "
            f"{_mib(peak):>9.2f} {1e3 * life:>8.2f} {_mib(bbytes):>9.2f} "
            f"{_mib(total):>10.2f} {100.0 * total / grand_total:>6.1f}%"
        )
    lines.append(
        f"  peak live {_mib(profile.get('peak_live_bytes', 0.0)):.2f} MiB, "
        f"now live {_mib(profile.get('live_bytes', 0.0)):.2f} MiB, "
        f"allocated {_mib(profile.get('total_bytes', 0.0)):.2f} MiB total"
    )
    census = profile.get("census", [])
    if census:
        lines.append("  live census (top shapes):")
        for row in census[: limit or 10]:
            shape = "x".join(str(d) for d in row["shape"]) or "scalar"
            lines.append(
                f"    {shape:<18s} {row['dtype']:<10s} "
                f"count={row['count']:<6d} {_mib(row['bytes']):>8.2f} MiB"
            )
    return "\n".join(lines)
