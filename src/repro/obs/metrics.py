"""Metrics registry: named counters, gauges and windowed histograms.

One process-global :class:`MetricsRegistry` (or per-component instances)
holds every operational number behind a stable name, so snapshots are a
single call and no subsystem grows its own ad-hoc counter fields.
:class:`repro.serve.ServingMetrics` is a facade over this registry — the
latency percentiles it reports come from the shared :func:`percentile` /
:class:`Histogram` implementation below.

All mutation is lock-guarded per metric; snapshots lock briefly per metric
rather than stopping the world.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Union

Number = Union[int, float]

#: Default bounded window for histogram percentile estimates.
DEFAULT_WINDOW = 4096


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over pre-sorted values (0.0 on empty input).

    This is the one percentile implementation in the codebase; serving
    latency and histogram snapshots both call it.
    """
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
    return float(sorted_values[idx])


class Counter:
    """Monotonically increasing count (float increments allowed)."""

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value: float = 0.0

    def inc(self, amount: Number = 1) -> float:
        if amount < 0:
            raise ValueError("counters only move forward; use a Gauge")
        with self._lock:
            self._value += amount
            return self._value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """Last-write-wins instantaneous value."""

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value: float = 0.0

    def set(self, value: Number) -> float:
        with self._lock:
            self._value = float(value)
            return self._value

    def add(self, delta: Number) -> float:
        with self._lock:
            self._value += delta
            return self._value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Cumulative count/sum plus a bounded window for percentiles."""

    def __init__(self, name: str, window: int = DEFAULT_WINDOW):
        if window <= 0:
            raise ValueError("histogram window must be positive")
        self.name = name
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._window: Deque[float] = deque(maxlen=window)

    def observe(self, value: Number) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._window.append(value)

    def observe_many(self, values: Sequence[Number]) -> None:
        with self._lock:
            for value in values:
                self._count += 1
                self._sum += float(value)
                self._window.append(float(value))

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def values(self) -> List[float]:
        """Copy of the current window (newest last)."""
        with self._lock:
            return list(self._window)

    def quantile(self, fraction: float) -> float:
        with self._lock:
            ordered = sorted(self._window)
        return percentile(ordered, fraction)

    def snapshot(self) -> Dict[str, float]:
        """Window statistics plus cumulative totals.

        ``count``/``sum`` are cumulative over the histogram's lifetime (the
        monotone series Prometheus summaries need); ``min``/``max``/``mean``
        and the percentiles describe the bounded window, whose current
        occupancy is ``window`` — exporters use it to judge how much data
        backs the quantiles.
        """
        with self._lock:
            ordered = sorted(self._window)
            count, total = self._count, self._sum
        return {
            "count": float(count),
            "sum": total,
            "mean": (sum(ordered) / len(ordered)) if ordered else 0.0,
            "min": ordered[0] if ordered else 0.0,
            "max": ordered[-1] if ordered else 0.0,
            "p50": percentile(ordered, 0.50),
            "p95": percentile(ordered, 0.95),
            "p99": percentile(ordered, 0.99),
            "window": float(len(ordered)),
        }

    def reset(self) -> None:
        with self._lock:
            self._count = 0
            self._sum = 0.0
            self._window.clear()


class MetricsRegistry:
    """Get-or-create registry of named metrics with a flat snapshot."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, kind, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, window: int = DEFAULT_WINDOW) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name, window))

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def items(self) -> List:
        """Sorted ``(name, metric)`` pairs — the exporters' iteration seam."""
        with self._lock:
            return sorted(self._metrics.items())

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{name: value}`` dict; histograms expand to dotted keys."""
        with self._lock:
            metrics = dict(self._metrics)
        out: Dict[str, float] = {}
        for name, metric in sorted(metrics.items()):
            if isinstance(metric, Histogram):
                for key, value in metric.snapshot().items():
                    out[f"{name}.{key}"] = value
            else:
                out[name] = metric.value  # type: ignore[union-attr]
        return out

    def reset(self) -> None:
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()  # type: ignore[union-attr]


# ----------------------------------------------------------------------
# Process-global registry
# ----------------------------------------------------------------------
_REGISTRY_LOCK = threading.Lock()
_REGISTRY: Optional[MetricsRegistry] = None


def get_registry() -> MetricsRegistry:
    """The process-global registry (created on first use)."""
    global _REGISTRY
    with _REGISTRY_LOCK:
        if _REGISTRY is None:
            _REGISTRY = MetricsRegistry()
        return _REGISTRY


def reset_registry() -> None:
    """Drop the global registry (tests); next get_registry() rebuilds it."""
    global _REGISTRY
    with _REGISTRY_LOCK:
        _REGISTRY = None
