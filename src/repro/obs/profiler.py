"""Autograd op profiler: wall time and call counts per tape op.

Hooks :func:`repro.autograd.tensor.set_op_hook`, which every instrumented
tape op (matmul, sigmoid, tanh, concat, gather_segment_mean, …) reports to
for both the forward call and the backward closure it produced. When no
profiler is running the ops take an un-instrumented fast path, so the
disabled overhead is one global read per op.

Usage::

    with OpProfiler() as prof:
        detector.fit(dataset, split)
    print(prof.table())

The accumulation path is deliberately lock-free (a dict upsert per op,
safe under the GIL for the single-threaded training loop this targets);
:meth:`snapshot` materializes a consistent copy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..autograd.tensor import set_op_hook

PHASES = ("forward", "backward")


class OpProfiler:
    """Accumulates per-(phase, op) call counts and wall seconds."""

    def __init__(self):
        # (phase, op) -> [calls, seconds]; mutated in the hot hook.
        self._stats: Dict[Tuple[str, str], List[float]] = {}
        self._previous = None
        self._running = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "OpProfiler":
        if self._running:
            raise RuntimeError("OpProfiler already running")
        self._previous = set_op_hook(self._record)
        self._running = True
        return self

    def stop(self) -> "OpProfiler":
        if self._running:
            set_op_hook(self._previous)
            self._previous = None
            self._running = False
        return self

    def __enter__(self) -> "OpProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._running

    def reset(self) -> None:
        self._stats = {}

    # -- the hot path ---------------------------------------------------
    def _record(self, phase: str, op: str, seconds: float) -> None:
        entry = self._stats.get((phase, op))
        if entry is None:
            self._stats[(phase, op)] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    # -- reporting ------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """``{phase: {op: {"calls": n, "seconds": s}}}`` plus totals."""
        out: Dict[str, Dict[str, Dict[str, float]]] = {p: {} for p in PHASES}
        for (phase, op), (calls, seconds) in list(self._stats.items()):
            out.setdefault(phase, {})[op] = {
                "calls": float(calls),
                "seconds": seconds,
            }
        return out

    def total_seconds(self, phase: Optional[str] = None) -> float:
        return sum(
            seconds
            for (p, _op), (_calls, seconds) in list(self._stats.items())
            if phase is None or p == phase
        )

    def to_dict(self) -> Dict:
        """JSONL-embeddable record (``type: "profile"``)."""
        return {
            "type": "profile",
            "ops": self.snapshot(),
            "total_seconds": self.total_seconds(),
        }

    def table(self, limit: Optional[int] = None) -> str:
        """Per-op table sorted by combined forward+backward time."""
        return render_profile(self.to_dict(), limit=limit)


def render_profile(profile: Dict, limit: Optional[int] = None) -> str:
    """Render a :meth:`OpProfiler.to_dict` record as an aligned table."""
    ops = profile.get("ops", {})
    forward = ops.get("forward", {})
    backward = ops.get("backward", {})
    names = sorted(set(forward) | set(backward))
    rows = []
    for op in names:
        f = forward.get(op, {"calls": 0.0, "seconds": 0.0})
        b = backward.get(op, {"calls": 0.0, "seconds": 0.0})
        rows.append(
            (op, f["calls"], f["seconds"], b["calls"], b["seconds"],
             f["seconds"] + b["seconds"])
        )
    rows.sort(key=lambda r: -r[5])
    total = sum(r[5] for r in rows) or 1.0
    if limit is not None:
        rows = rows[:limit]
    lines = [
        "op profile (forward + backward):",
        f"  {'op':<20s} {'fwd calls':>10s} {'fwd ms':>10s} "
        f"{'bwd calls':>10s} {'bwd ms':>10s} {'total ms':>10s} {'share':>7s}",
    ]
    for op, fc, fs, bc, bs, ts in rows:
        lines.append(
            f"  {op:<20s} {int(fc):>10d} {1e3 * fs:>10.2f} "
            f"{int(bc):>10d} {1e3 * bs:>10.2f} {1e3 * ts:>10.2f} "
            f"{100.0 * ts / total:>6.1f}%"
        )
    lines.append(f"  {'total':<20s} {'':>10s} {'':>10s} {'':>10s} {'':>10s} "
                 f"{1e3 * sum(r[5] for r in rows):>10.2f}")
    return "\n".join(lines)
