"""Render trace JSONL files: span self-time trees and op-profile tables.

The trace file format (see :mod:`repro.obs.tracing`) is a stream of JSON
records distinguished by ``type``:

- ``span`` — one closed span (ids, times, attrs); children precede parents
  because spans are streamed at close time.
- ``profile`` — an op-profiler dump (:meth:`OpProfiler.to_dict`).
- ``event`` — a structured log record sharing the file.
- ``drift`` — a drift breach/recover transition from
  :class:`repro.obs.drift.DriftMonitor`.
- ``trace_start`` — wall-clock anchor written when the tracer opens.

:func:`render_trace_file` is what ``repro obs report`` prints;
:func:`render_timeline` is the per-request view behind
``repro obs trace <trace_id>``, ordering one merged distributed trace
(schema ``repro.obs.trace/1``) by wall-clock start.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .memory import render_memory
from .profiler import render_profile
from .tracing import read_trace


def self_times(spans: List[Dict[str, Any]]) -> Dict[int, float]:
    """Per-span self time: duration minus the sum of direct children."""
    child_total: Dict[Optional[int], float] = {}
    for span in spans:
        child_total[span.get("parent_id")] = (
            child_total.get(span.get("parent_id"), 0.0) + float(span["duration"])
        )
    return {
        span["span_id"]: max(
            0.0, float(span["duration"]) - child_total.get(span["span_id"], 0.0)
        )
        for span in spans
    }


def aggregate_spans(
    spans: List[Dict[str, Any]],
) -> List[Tuple[Tuple[str, ...], int, float, float]]:
    """Aggregate spans by name-path: ``(path, count, total_s, self_s)``.

    Spans sharing the same ancestry of names (e.g. the 50 ``fit/epoch``
    spans of a run) collapse into one row, keeping the output readable for
    long runs. Rows come back in depth-first order.
    """
    by_id = {span["span_id"]: span for span in spans}

    def path_of(span: Dict[str, Any]) -> Tuple[str, ...]:
        names: List[str] = []
        node: Optional[Dict[str, Any]] = span
        while node is not None:
            names.append(node["name"])
            parent_id = node.get("parent_id")
            node = by_id.get(parent_id) if parent_id is not None else None
        return tuple(reversed(names))

    selfs = self_times(spans)
    stats: Dict[Tuple[str, ...], List[float]] = {}
    for span in spans:
        path = path_of(span)
        entry = stats.setdefault(path, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += float(span["duration"])
        entry[2] += selfs[span["span_id"]]

    def sort_key(path: Tuple[str, ...]):
        # Depth-first: a path sorts under its prefix chain.
        return path

    return [
        (path, int(stats[path][0]), stats[path][1], stats[path][2])
        for path in sorted(stats, key=sort_key)
    ]


def render_spans(spans: List[Dict[str, Any]]) -> str:
    """Indented self-time tree aggregated by span path."""
    if not spans:
        return "span tree: (no spans)"
    rows = aggregate_spans(spans)
    total = sum(r[1] for r in rows if len(r[0]) == 1) or 1.0
    lines = [
        "span tree (aggregated by path):",
        f"  {'span':<42s} {'count':>7s} {'total s':>10s} {'self s':>10s} {'share':>7s}",
    ]
    for path, count, total_s, self_s in rows:
        label = "  " * (len(path) - 1) + path[-1]
        lines.append(
            f"  {label:<42s} {count:>7d} {total_s:>10.4f} {self_s:>10.4f} "
            f"{100.0 * total_s / total:>6.1f}%"
        )
    return "\n".join(lines)


#: Schema tag of the machine-readable trace report.
REPORT_SCHEMA = "repro.obs.report/1"


def report_to_dict(path: Union[str, Path]) -> Dict[str, Any]:
    """Machine-readable form of the ``repro obs report`` rendering.

    Stable schema ``repro.obs.report/1`` (mirroring ``repro lint --json``):
    record counts, path-aggregated span rows, every embedded profile
    record verbatim, and the event tail.
    """
    records = read_trace(path)
    spans = [r for r in records if r.get("type") == "span"]
    profiles = [r for r in records if r.get("type") == "profile"]
    memories = [r for r in records if r.get("type") == "memory"]
    events = [r for r in records if r.get("type") == "event"]
    drifts = [r for r in records if r.get("type") == "drift"]
    return {
        "schema": REPORT_SCHEMA,
        "trace": str(path),
        "counts": {
            "spans": len(spans),
            "profiles": len(profiles),
            "memory_profiles": len(memories),
            "events": len(events),
            "drift_transitions": len(drifts),
        },
        "spans": [
            {
                "path": list(span_path),
                "count": count,
                "total_seconds": total_s,
                "self_seconds": self_s,
            }
            for span_path, count, total_s, self_s in aggregate_spans(spans)
        ],
        "profiles": profiles,
        "memory_profiles": memories,
        "events": events,
        "drift": drifts,
    }


def render_trace_file(path: Union[str, Path]) -> str:
    """Full ``repro obs report`` rendering of one trace JSONL file."""
    records = read_trace(path)
    spans = [r for r in records if r.get("type") == "span"]
    profiles = [r for r in records if r.get("type") == "profile"]
    memories = [r for r in records if r.get("type") == "memory"]
    events = [r for r in records if r.get("type") == "event"]
    drifts = [r for r in records if r.get("type") == "drift"]

    sections = [f"trace report: {path}"]
    sections.append(
        f"records: {len(spans)} spans, {len(profiles)} profiles, "
        f"{len(memories)} memory profiles, {len(events)} events, "
        f"{len(drifts)} drift transitions"
    )
    sections.append("")
    sections.append(render_spans(spans))
    for profile in profiles:
        sections.append("")
        sections.append(render_profile(profile))
    for memory in memories:
        sections.append("")
        sections.append(render_memory(memory))
    if drifts:
        sections.append("")
        sections.append(render_drift(drifts))
    if events:
        sections.append("")
        sections.append("events:")
        for event in events[-20:]:
            fields = " ".join(
                f"{k}={v}" for k, v in event.get("fields", {}).items()
            )
            sections.append(f"  {event.get('level', '?'):<7s} {event['name']}  {fields}")
    return "\n".join(sections)


def render_drift(drifts: List[Dict[str, Any]]) -> str:
    """Summarize drift breach/recover transitions embedded in a trace."""
    if not drifts:
        return "drift: (no transitions)"
    breaches = sum(1 for d in drifts if d.get("event") == "breach")
    lines = [
        f"drift transitions: {breaches} breach(es), "
        f"{len(drifts) - breaches} recover(ies)",
    ]
    for record in drifts:
        shard = record.get("shard")
        where = f" shard={shard}" if shard is not None else ""
        metrics = " ".join(
            f"{key}={record[key]:.4f}"
            for key in ("class_psi", "confidence_psi", "feature_psi")
            if isinstance(record.get(key), (int, float))
        )
        lines.append(
            f"  {record.get('event', '?'):<8s}{where} {metrics} "
            f"(threshold={record.get('threshold')}, "
            f"samples={record.get('samples')})"
        )
    return "\n".join(lines)


TRACE_RENDER_SCHEMA = "repro.obs.trace_render/1"


def _timeline_rows(
    records: List[Dict[str, Any]],
) -> "tuple[Optional[Dict[str, Any]], List[Dict[str, Any]]]":
    """The shared timeline model: ``(trace_meta, rows sorted by start)``.

    Rows sort by wall-clock ``start`` (ties broken by span id) no matter
    which process emitted them, so the rendering stays monotone even when
    worker clocks skew slightly against the front-end's. Depth follows the
    parent chain; orphan parents — e.g. a worker span whose front-end
    parent record was lost — land at depth 0 rather than being dropped.
    """
    spans = [r for r in records if r.get("type") == "span"]
    meta = next((r for r in records if r.get("type") == "trace_meta"), None)
    if not spans:
        return meta, []

    by_id = {span["span_id"]: span for span in spans}

    def depth_of(span: Dict[str, Any]) -> int:
        depth, node, seen = 0, span, set()
        while True:
            parent_id = node.get("parent_id")
            if parent_id is None or parent_id not in by_id or parent_id in seen:
                return depth
            seen.add(parent_id)
            node = by_id[parent_id]
            depth += 1

    origin = min(float(s["start"]) for s in spans)
    rows = []
    for span in sorted(spans, key=lambda s: (float(s["start"]), s["span_id"])):
        rows.append({
            "name": span["name"],
            "span_id": span["span_id"],
            "parent_id": span.get("parent_id"),
            "trace_id": span.get("trace_id"),
            "depth": depth_of(span),
            "offset_ms": 1e3 * (float(span["start"]) - origin),
            "duration_ms": 1e3 * float(span["duration"]),
            "attrs": dict(span.get("attrs") or {}),
        })
    return meta, rows


def timeline_to_dict(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """A merged trace as machine-consumable JSON (``repro.obs.trace_render/1``).

    The same sorted/depth-annotated rows :func:`render_timeline` prints,
    plus the trace metadata — what ``repro obs trace <id> --json`` emits.
    """
    meta, rows = _timeline_rows(records)
    return {
        "schema": TRACE_RENDER_SCHEMA,
        "trace_id": meta.get("trace_id") if meta else None,
        "trace_schema": meta.get("schema") if meta else None,
        "span_count": len(rows),
        "duration_ms": max(
            (row["offset_ms"] + row["duration_ms"] for row in rows), default=0.0
        ),
        "spans": rows,
    }


def render_timeline(records: List[Dict[str, Any]]) -> str:
    """One merged distributed trace as a wall-clock timeline.

    Spans (from every process that touched the request) are sorted by
    ``start`` and indented by parent depth; the offset column is
    milliseconds since the earliest span (see :func:`_timeline_rows` for
    the ordering and orphan-parent rules).
    """
    meta, rows = _timeline_rows(records)
    header = []
    if meta is not None:
        header.append(
            f"trace {meta.get('trace_id', '?')} ({meta.get('schema', '?')})"
        )
    if not rows:
        header.append("(no spans)")
        return "\n".join(header)
    lines = header + [
        f"{'offset ms':>10s} {'dur ms':>9s}  span",
    ]
    for row in rows:
        detail = " ".join(f"{k}={v}" for k, v in row["attrs"].items())
        label = f"{'  ' * row['depth']}{row['name']}"
        if detail:
            label += f"  [{detail}]"
        lines.append(
            f"{row['offset_ms']:>10.2f} {row['duration_ms']:>9.2f}  {label}"
        )
    return "\n".join(lines)
