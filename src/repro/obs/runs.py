"""Persistent run registry: one JSON record per run, plus regression diffing.

Every training, benchmark or serving run that matters leaves a record in
``results/runs/<run_id>.json`` (schema ``repro.obs.run/1``): the config and
its digest, the git SHA, scalar summary ``metrics`` (final loss, latency
percentiles, memory peaks, accuracy) and per-epoch ``series`` (losses,
gradient norms). That turns the ``results/`` directory from a pile of
hand-rolled snapshots into a longitudinal trajectory: any two records are
comparable, and ``repro obs diff <a> <b>`` exits nonzero when a watched
metric regresses beyond its threshold — the CI gate the bench trajectory
was missing.

Thresholds are relative by default (5%) with the regression *direction*
inferred from the metric name (``accuracy``/``f1``/``throughput``-style
metrics must not fall, everything else — losses, seconds, bytes — must not
rise); both are overridable per metric.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

RUN_SCHEMA = "repro.obs.run/1"
DIFF_SCHEMA = "repro.obs.diff/1"

#: Default relative tolerance before a metric movement counts as regression.
DEFAULT_TOLERANCE = 0.05

#: Metric-name fragments whose value is better when *higher*.
_HIGHER_IS_BETTER = (
    "accuracy", "acc", "f1", "precision", "recall", "auc", "throughput",
    "hit_rate", "rps",
)


def default_runs_dir() -> Path:
    """``$REPRO_RUNS_DIR`` when set, else ``results/runs`` under the cwd."""
    return Path(os.environ.get("REPRO_RUNS_DIR", "") or Path("results") / "runs")


def config_digest(config: Dict) -> str:
    """Stable short digest of a config dict (order-insensitive)."""
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:12]


def current_git_sha(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The repository HEAD SHA, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd else None,
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def higher_is_better(metric: str) -> bool:
    """Regression direction inferred from the metric name."""
    lowered = metric.lower()
    return any(frag in lowered for frag in _HIGHER_IS_BETTER)


@dataclasses.dataclass
class RunRecord:
    """One persisted run: identity, provenance, metrics, series."""

    run_id: str
    kind: str                      # "train" | "benchmark" | "serve"
    created_ts: float
    config: Dict = dataclasses.field(default_factory=dict)
    config_digest: str = ""
    git_sha: Optional[str] = None
    #: scalar summary metrics (losses, percentiles, peaks, accuracies)
    metrics: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: per-epoch / per-step trajectories (losses, grad norms, seconds)
    series: Dict[str, List[float]] = dataclasses.field(default_factory=dict)
    notes: str = ""

    def to_dict(self) -> Dict:
        return {
            "schema": RUN_SCHEMA,
            "run_id": self.run_id,
            "kind": self.kind,
            "created_ts": self.created_ts,
            "config": self.config,
            "config_digest": self.config_digest,
            "git_sha": self.git_sha,
            "metrics": self.metrics,
            "series": self.series,
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunRecord":
        schema = payload.get("schema")
        if schema != RUN_SCHEMA:
            raise ValueError(
                f"not a run record (schema {schema!r}, expected {RUN_SCHEMA!r})"
            )
        return cls(
            run_id=str(payload["run_id"]),
            kind=str(payload.get("kind", "train")),
            created_ts=float(payload.get("created_ts", 0.0)),
            config=dict(payload.get("config", {})),
            config_digest=str(payload.get("config_digest", "")),
            git_sha=payload.get("git_sha"),
            metrics={k: float(v) for k, v in payload.get("metrics", {}).items()},
            series={
                k: [float(x) for x in v]
                for k, v in payload.get("series", {}).items()
            },
            notes=str(payload.get("notes", "")),
        )


class RunRegistry:
    """Filesystem-backed registry of :class:`RunRecord` JSON files."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else default_runs_dir()

    # -- writing -------------------------------------------------------
    def new_run_id(self, kind: str) -> str:
        """``<kind>-<utc stamp>-<entropy>``, unique within the registry."""
        stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
        suffix = hashlib.sha1(
            f"{time.time_ns()}-{os.getpid()}".encode()
        ).hexdigest()[:6]
        return f"{kind}-{stamp}-{suffix}"

    def record(
        self,
        kind: str,
        config: Optional[Dict] = None,
        metrics: Optional[Dict[str, float]] = None,
        series: Optional[Dict[str, Sequence[float]]] = None,
        notes: str = "",
        run_id: Optional[str] = None,
    ) -> RunRecord:
        """Build, persist and return a run record."""
        config = dict(config or {})
        record = RunRecord(
            run_id=run_id or self.new_run_id(kind),
            kind=kind,
            created_ts=time.time(),
            config=config,
            config_digest=config_digest(config),
            git_sha=current_git_sha(),
            metrics={k: float(v) for k, v in (metrics or {}).items()},
            series={k: [float(x) for x in v] for k, v in (series or {}).items()},
            notes=notes,
        )
        self.save(record)
        return record

    def save(self, record: RunRecord) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(record.run_id)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
        return path

    def path_for(self, run_id: str) -> Path:
        return self.root / f"{run_id}.json"

    # -- profile artifacts ---------------------------------------------
    def profile_path_for(self, run_id: str) -> Path:
        """Sidecar path of a run's sampling profile (``<id>.profile.json``).

        Profiles live next to the run record so ``repro obs flame <run>``
        resolves them by run id; :meth:`list` skips them (they carry the
        ``repro.obs.profile/1`` schema, not a run record's).
        """
        return self.root / f"{run_id}.profile.json"

    def save_profile(self, run_id: str, profile: "Profile") -> Path:
        """Persist a :class:`repro.obs.flame.Profile` alongside its run."""
        self.root.mkdir(parents=True, exist_ok=True)
        return profile.save(self.profile_path_for(run_id))

    def load_profile(self, ref: Union[str, Path]) -> "Profile":
        """Load a profile by run id (within this registry) or explicit path."""
        from .flame import Profile

        path = Path(ref)
        if path.suffix != ".json":
            path = self.profile_path_for(str(ref))
        if not path.exists():
            raise FileNotFoundError(f"no profile at {path}")
        return Profile.load(path)

    # -- reading -------------------------------------------------------
    def load(self, ref: Union[str, Path]) -> RunRecord:
        """Load by run id (within this registry) or by explicit JSON path."""
        path = Path(ref)
        if not path.suffix == ".json":
            path = self.path_for(str(ref))
        if not path.exists():
            raise FileNotFoundError(f"no run record at {path}")
        return RunRecord.from_dict(json.loads(path.read_text(encoding="utf-8")))

    def list(self, kind: Optional[str] = None) -> List[RunRecord]:
        """All records (optionally one kind), oldest first."""
        if not self.root.exists():
            return []
        records = []
        for path in sorted(self.root.glob("*.json")):
            try:
                record = RunRecord.from_dict(
                    json.loads(path.read_text(encoding="utf-8"))
                )
            except (ValueError, KeyError, json.JSONDecodeError):
                continue  # foreign JSON in the runs dir is not a record
            if kind is None or record.kind == kind:
                records.append(record)
        records.sort(key=lambda r: (r.created_ts, r.run_id))
        return records

    def latest(self, kind: Optional[str] = None, n: int = 1) -> List[RunRecord]:
        """The ``n`` most recent records, newest last."""
        return self.list(kind=kind)[-n:]


# ----------------------------------------------------------------------
# Regression diffing
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Threshold:
    """Regression gate for one metric."""

    metric: str
    tolerance: float = DEFAULT_TOLERANCE       # relative movement allowed
    higher_is_better: Optional[bool] = None    # None = infer from the name

    def direction(self) -> bool:
        if self.higher_is_better is None:
            return higher_is_better(self.metric)
        return self.higher_is_better


#: Metrics gated by default when present in both records.
DEFAULT_THRESHOLDS: Dict[str, Threshold] = {
    name: Threshold(name, tolerance)
    for name, tolerance in (
        ("final_loss", 0.05),
        ("total_seconds", 0.35),        # wall time is noisy; gate loosely
        ("mean_epoch_seconds", 0.35),
        ("latency_p95_ms", 0.35),
        ("latency_p50_ms", 0.35),
        ("peak_live_mib", 0.10),
        ("article_bi_accuracy", 0.05),
        ("article_macro_f1", 0.10),
    )
}


@dataclasses.dataclass(frozen=True)
class DiffEntry:
    """One compared metric between run A (baseline) and run B (candidate)."""

    metric: str
    a: Optional[float]
    b: Optional[float]
    ratio: Optional[float]          # b / a when defined
    status: str                     # "ok" | "regression" | "improved" |
                                    # "info" | "only_a" | "only_b"
    tolerance: Optional[float] = None

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class RunDiff:
    """The full comparison of two run records."""

    a: str
    b: str
    entries: List[DiffEntry]

    @property
    def regressions(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict:
        return {
            "schema": DIFF_SCHEMA,
            "a": self.a,
            "b": self.b,
            "ok": self.ok,
            "regressions": [e.metric for e in self.regressions],
            "entries": [e.to_dict() for e in self.entries],
        }

    def render(self) -> str:
        lines = [
            f"run diff: {self.a} (baseline) vs {self.b} (candidate)",
            f"  {'metric':<26s} {'baseline':>12s} {'candidate':>12s} "
            f"{'ratio':>8s}  status",
        ]
        for entry in self.entries:
            a = f"{entry.a:.6g}" if entry.a is not None else "-"
            b = f"{entry.b:.6g}" if entry.b is not None else "-"
            ratio = f"{entry.ratio:.3f}" if entry.ratio is not None else "-"
            lines.append(
                f"  {entry.metric:<26s} {a:>12s} {b:>12s} {ratio:>8s}  "
                f"{entry.status}"
            )
        verdict = "OK" if self.ok else (
            f"REGRESSION in {', '.join(e.metric for e in self.regressions)}"
        )
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


def _compare_metric(
    metric: str, a: float, b: float, threshold: Optional[Threshold]
) -> DiffEntry:
    ratio = (b / a) if a else None
    if threshold is None:
        return DiffEntry(metric, a, b, ratio, "info")
    tolerance = threshold.tolerance
    scale = abs(a) if a else 1.0
    delta = b - a
    worse = -delta if threshold.direction() else delta
    if worse > tolerance * scale:
        status = "regression"
    elif worse < -tolerance * scale:
        status = "improved"
    else:
        status = "ok"
    return DiffEntry(metric, a, b, ratio, status, tolerance=tolerance)


def diff_runs(
    a: RunRecord,
    b: RunRecord,
    thresholds: Optional[Dict[str, Threshold]] = None,
) -> RunDiff:
    """Compare two records metric-by-metric against the thresholds.

    Metrics without a threshold are reported as ``info`` and never gate;
    metrics present in only one record surface as ``only_a``/``only_b`` so
    silently vanished series are visible in review.
    """
    gates = dict(DEFAULT_THRESHOLDS)
    if thresholds:
        gates.update(thresholds)
    entries: List[DiffEntry] = []
    for metric in sorted(set(a.metrics) | set(b.metrics)):
        in_a, in_b = metric in a.metrics, metric in b.metrics
        if in_a and in_b:
            entries.append(
                _compare_metric(
                    metric, a.metrics[metric], b.metrics[metric],
                    gates.get(metric),
                )
            )
        elif in_a:
            entries.append(DiffEntry(metric, a.metrics[metric], None, None, "only_a"))
        else:
            entries.append(DiffEntry(metric, None, b.metrics[metric], None, "only_b"))
    return RunDiff(a=a.run_id, b=b.run_id, entries=entries)


def parse_threshold_specs(specs: Sequence[str]) -> Dict[str, Threshold]:
    """CLI ``--threshold metric=tolerance[,higher|lower]`` parser."""
    out: Dict[str, Threshold] = {}
    for spec in specs:
        spec = spec.strip()
        if not spec:
            continue
        if "=" not in spec:
            raise ValueError(
                f"malformed threshold {spec!r} (expected metric=tolerance)"
            )
        metric, rest = spec.split("=", 1)
        metric = metric.strip()
        parts = [p.strip() for p in rest.split(",") if p.strip()]
        if not parts:
            raise ValueError(f"missing tolerance in threshold {spec!r}")
        tolerance = float(parts[0])
        direction: Optional[bool] = None
        if len(parts) > 1:
            if parts[1] not in ("higher", "lower"):
                raise ValueError(
                    f"threshold direction must be 'higher' or 'lower', "
                    f"got {parts[1]!r}"
                )
            direction = parts[1] == "higher"
        out[metric] = Threshold(metric, tolerance, direction)
    return out
