"""Serving SLO monitor: rolling-window alert rules over live signals.

The serving path ("millions of users" on the ROADMAP) needs a health signal
that reacts while the process runs, not a post-mortem snapshot. An
:class:`SloMonitor` holds a set of :class:`SloRule` objects — each one
"aggregate of a signal over a rolling time window, compared to a
threshold" — and is fed observations by :class:`repro.serve.InferenceSession`
(per-request latency) and :class:`repro.serve.BatchQueue` (queue wait,
queue depth, handler errors).

Breaches are *edge-triggered* structured events: the monitor emits one
``obs.slo.breach`` warning when a rule crosses into violation and one
``obs.slo.recover`` info event when it heals, rather than spamming every
evaluation. Current state is available as :meth:`health` in exactly the
shape :class:`repro.obs.export.MetricsServer` expects for ``/healthz``,
so a breached SLO flips the endpoint to 503 — the conventional
load-balancer eject signal.

Signals are windows of ``(monotonic_ts, value)`` pairs. The ``error_rate``
aggregate treats values as 0/1 failure flags; ``p50``/``p95``/``p99``/
``mean``/``max``/``last`` aggregate the raw values.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .events import get_logger
from .metrics import MetricsRegistry, percentile

#: Aggregates a rule may apply over its window.
AGGREGATES = ("p50", "p95", "p99", "mean", "max", "last", "error_rate")


@dataclasses.dataclass(frozen=True)
class SloRule:
    """One alert rule: aggregate(signal over window) must stay ≤ threshold."""

    name: str                   # e.g. "latency_p95"
    signal: str                 # e.g. "latency_seconds"
    aggregate: str              # one of AGGREGATES
    threshold: float
    window_seconds: float = 60.0
    min_samples: int = 3        # don't alert off one unlucky request

    def __post_init__(self):
        if self.aggregate not in AGGREGATES:
            raise ValueError(
                f"unknown aggregate {self.aggregate!r} (expected {AGGREGATES})"
            )
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")


@dataclasses.dataclass(frozen=True)
class SloStatus:
    """Point-in-time evaluation of one rule."""

    rule: str
    signal: str
    value: Optional[float]      # None: not enough samples yet
    threshold: float
    breached: bool
    samples: int

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)


def default_serving_rules(
    p95_latency_s: Optional[float] = None,
    error_rate: Optional[float] = None,
    queue_wait_p95_s: Optional[float] = None,
    queue_depth: Optional[float] = None,
    drift_psi: Optional[float] = None,
    window_seconds: float = 60.0,
) -> List[SloRule]:
    """The standard serving rule set, one rule per provided threshold."""
    rules: List[SloRule] = []
    if drift_psi is not None:
        rules.append(SloRule(
            "drift_psi", "drift_class_psi", "mean", drift_psi,
            window_seconds=window_seconds,
        ))
    if p95_latency_s is not None:
        rules.append(SloRule(
            "latency_p95", "latency_seconds", "p95", p95_latency_s,
            window_seconds=window_seconds,
        ))
    if error_rate is not None:
        rules.append(SloRule(
            "error_rate", "errors", "error_rate", error_rate,
            window_seconds=window_seconds,
        ))
    if queue_wait_p95_s is not None:
        rules.append(SloRule(
            "queue_wait_p95", "queue_wait_seconds", "p95", queue_wait_p95_s,
            window_seconds=window_seconds,
        ))
    if queue_depth is not None:
        rules.append(SloRule(
            "queue_depth", "queue_depth", "max", queue_depth,
            window_seconds=window_seconds, min_samples=1,
        ))
    return rules


class SloMonitor:
    """Evaluates rolling-window rules and emits breach/recover events.

    Parameters
    ----------
    rules:
        The :class:`SloRule` set to evaluate.
    logger:
        Structured event logger; defaults to ``get_logger("obs.slo")``.
        Breaches are ``warning`` events named ``breach``, recoveries are
        ``info`` events named ``recover``.
    registry:
        Optional :class:`MetricsRegistry`; when given, the monitor keeps
        ``obs.slo.breaches`` (counter of breach transitions) and
        ``obs.slo.breached`` (gauge of currently breached rules) so the
        exporter surfaces alert state on ``/metrics``.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        rules: List[SloRule],
        logger=None,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {names}")
        self.rules = list(rules)
        self._logger = logger if logger is not None else get_logger("obs.slo")
        self._clock = clock
        self._lock = threading.Lock()
        self._windows: Dict[str, Deque[Tuple[float, float]]] = {}
        self._breached: Dict[str, bool] = {rule.name: False for rule in rules}
        self._breach_counter = None
        self._breached_gauge = None
        if registry is not None:
            self._breach_counter = registry.counter("obs.slo.breaches")
            self._breached_gauge = registry.gauge("obs.slo.breached")

    # -- feeding -------------------------------------------------------
    def observe(self, signal: str, value: float) -> None:
        """Append one sample to ``signal``'s rolling window."""
        now = self._clock()
        with self._lock:
            window = self._windows.get(signal)
            if window is None:
                window = self._windows[signal] = deque()
            window.append((now, float(value)))
            self._trim(signal, now)

    def observe_latency(self, seconds: float) -> None:
        self.observe("latency_seconds", seconds)

    def observe_queue_wait(self, seconds: float) -> None:
        self.observe("queue_wait_seconds", seconds)

    def observe_queue_depth(self, depth: int) -> None:
        self.observe("queue_depth", float(depth))

    def record_success(self, n: int = 1) -> None:
        for _ in range(n):
            self.observe("errors", 0.0)

    def record_error(self, n: int = 1) -> None:
        for _ in range(n):
            self.observe("errors", 1.0)

    def _trim(self, signal: str, now: float) -> None:
        horizon = max(rule.window_seconds for rule in self.rules) if self.rules else 0.0
        window = self._windows[signal]
        while window and now - window[0][0] > horizon:
            window.popleft()

    # -- evaluation ----------------------------------------------------
    def _aggregate(self, rule: SloRule, now: float) -> Tuple[Optional[float], int]:
        with self._lock:
            window = self._windows.get(rule.signal, ())
            values = [v for ts, v in window if now - ts <= rule.window_seconds]
        if len(values) < rule.min_samples:
            return None, len(values)
        if rule.aggregate == "error_rate":
            return sum(1.0 for v in values if v > 0) / len(values), len(values)
        if rule.aggregate == "mean":
            return sum(values) / len(values), len(values)
        if rule.aggregate == "max":
            return max(values), len(values)
        if rule.aggregate == "last":
            return values[-1], len(values)
        ordered = sorted(values)
        fraction = {"p50": 0.50, "p95": 0.95, "p99": 0.99}[rule.aggregate]
        return percentile(ordered, fraction), len(values)

    def evaluate(self) -> List[SloStatus]:
        """Evaluate every rule now; emit events on breach/recover edges."""
        now = self._clock()
        statuses: List[SloStatus] = []
        for rule in self.rules:
            value, samples = self._aggregate(rule, now)
            breached = value is not None and value > rule.threshold
            statuses.append(SloStatus(
                rule=rule.name,
                signal=rule.signal,
                value=value,
                threshold=rule.threshold,
                breached=breached,
                samples=samples,
            ))
            was = self._breached[rule.name]
            if breached and not was:
                self._breached[rule.name] = True
                if self._breach_counter is not None:
                    self._breach_counter.inc(1)
                self._logger.warning(
                    "breach",
                    rule=rule.name,
                    signal=rule.signal,
                    aggregate=rule.aggregate,
                    value=value,
                    threshold=rule.threshold,
                    samples=samples,
                )
            elif was and not breached and value is not None:
                self._breached[rule.name] = False
                self._logger.info(
                    "recover",
                    rule=rule.name,
                    signal=rule.signal,
                    value=value,
                    threshold=rule.threshold,
                )
        if self._breached_gauge is not None:
            self._breached_gauge.set(sum(self._breached.values()))
        return statuses

    # -- reporting -----------------------------------------------------
    @property
    def breached_rules(self) -> List[str]:
        return sorted(name for name, hit in self._breached.items() if hit)

    def health(self) -> Dict:
        """``/healthz`` payload: ``status`` plus per-rule detail."""
        statuses = self.evaluate()
        breached = [s.rule for s in statuses if s.breached]
        return {
            "status": "degraded" if breached else "ok",
            "breached": breached,
            "rules": [s.to_dict() for s in statuses],
        }
