"""Span tracing: nested timed sections with attributes, exported as JSONL.

Usage::

    with trace("epoch", epoch=3) as span:
        ...
        span.set(loss=0.42, grad_norm=1.7)

Spans nest through a per-thread stack, so the exported trace reconstructs
the call tree (``parent_id`` linkage) and :mod:`repro.obs.report` can render
a self-time breakdown. When no tracer is installed, :func:`trace` returns a
shared no-op span — the instrumented hot paths pay one global read and one
``is None`` test, nothing else.

A :class:`Tracer` both retains finished spans in memory (``tracer.spans``)
and, when given a path, streams each span as a JSON line the moment it
closes. Spans are written post-order (children before parents), which is
exactly what a streaming writer can do without buffering; readers rebuild
the tree from ids.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from time import perf_counter, time
from typing import Any, Callable, Dict, List, Optional, TextIO, Union

from .context import current_context
from .lifecycle import flush_at_exit, unregister_flush

_IDS = itertools.count(1)
_ID_LOCK = threading.Lock()

#: Global span lifecycle observer, installed by :mod:`repro.obs.flame`:
#: an ``(enter, exit)`` pair called as ``enter(span.name)`` when a span
#: opens and ``exit()`` when it closes, on the span's own thread. This is
#: how the sampling profiler learns the open-span path of each thread so
#: samples carry span ancestry (``serve.request;…``). Pops on an empty
#: observer stack must be no-ops: spans opened before the observer was
#: installed close through it.
_SPAN_OBSERVER: Optional[
    "tuple[Callable[[str], None], Callable[[], None]]"
] = None


def set_span_observer(
    observer: Optional["tuple[Callable[[str], None], Callable[[], None]]"],
) -> Optional["tuple[Callable[[str], None], Callable[[], None]]"]:
    """Install (or clear, with ``None``) the global span observer pair.

    Returns the previous observer so nested profilers restore cleanly.
    """
    global _SPAN_OBSERVER
    previous = _SPAN_OBSERVER
    _SPAN_OBSERVER = observer
    return previous


def new_span_id() -> int:
    """A span id unique across threads *and* forked workers.

    The naive module-level counter collides after ``fork()``: every child
    inherits the same counter state, so two workers both emit span 7. The
    id is therefore salted with the pid in the high bits — the counter
    disambiguates within a process, the pid across processes — while still
    fitting the 64-bit ``traceparent`` span field.
    """
    with _ID_LOCK:
        serial = next(_IDS)
    return ((os.getpid() & 0xFFFFFF) << 40) | (serial & 0xFFFFFFFFFF)


class Span:
    """One timed section. Context manager; attributes via :meth:`set`."""

    __slots__ = (
        "name", "span_id", "parent_id", "trace_id",
        "start", "end", "attrs", "_tracer",
    )

    def __init__(self, name: str, tracer: "Tracer", attrs: Optional[Dict] = None):
        self.name = name
        self.span_id = new_span_id()
        self.parent_id: Optional[int] = None
        self.trace_id: Optional[str] = None
        self.start: float = 0.0
        self.end: float = 0.0
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self._tracer = tracer

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = self._tracer._clock()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": self.attrs,
        }
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        return record


class _NullSpan:
    """Shared do-nothing span returned by trace() when tracing is off."""

    __slots__ = ()
    name = ""
    attrs: Dict[str, Any] = {}
    duration = 0.0

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans per thread; optionally streams them to a JSONL file.

    Parameters
    ----------
    path:
        Optional JSONL output; each span is written when it closes, plus
        any extra records passed to :meth:`write`.
    keep:
        Retain finished spans in :attr:`spans` (default). Disable for
        long-running servers that only want the streamed file.
    sink:
        Optional callable invoked with each finished span's dict — how the
        serving front-end routes request spans into a :class:`TraceStore`.
    clock:
        Timestamp source (default :func:`time.perf_counter`). Distributed
        traces that must merge spans from several processes pass
        :func:`time.time`: ``perf_counter`` readings are only comparable
        within one process.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        keep: bool = True,
        *,
        sink: Optional[Callable[[Dict[str, Any]], None]] = None,
        clock: Callable[[], float] = perf_counter,
    ):
        self.spans: List[Span] = []
        self._keep = keep
        self._sink = sink
        self._clock = clock
        self._local = threading.local()
        self._lock = threading.Lock()
        self._file: Optional[TextIO] = None
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            self._file = open(self.path, "w", encoding="utf-8")
            self.write({"type": "trace_start", "wall_time": time()})
            # Crash-adjacent exits flush the stream instead of truncating
            # the spans that explain the crash.
            flush_at_exit(self)

    # -- span lifecycle -----------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        return Span(name, self, attrs)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            span.parent_id = stack[-1].span_id
            span.trace_id = stack[-1].trace_id
        else:
            # Top-level span: adopt the ambient request context, if any,
            # so cross-process children link back to the remote parent.
            context = current_context()
            if context is not None:
                span.trace_id = context.trace_id
                if context.span_id is not None:
                    span.parent_id = context.span_id
        stack.append(span)
        observer = _SPAN_OBSERVER
        if observer is not None:
            observer[0](span.name)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        observer = _SPAN_OBSERVER
        # Tolerate mismatched exits rather than corrupting the stack; the
        # observer pops once per span unwound so its view stays aligned.
        while stack:
            top = stack.pop()
            if observer is not None:
                observer[1]()
            if top is span:
                break
        self._finish(span)

    def _finish(self, span: Span) -> None:
        with self._lock:
            if self._keep:
                self.spans.append(span)
            if self._file is not None:
                self._file.write(json.dumps(span.to_dict(), default=str) + "\n")
        if self._sink is not None:
            self._sink(span.to_dict())

    # -- export ---------------------------------------------------------
    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def write(self, record: Dict[str, Any]) -> None:
        """Append an arbitrary JSON record (e.g. an op profile) to the file."""
        with self._lock:
            if self._file is not None:
                self._file.write(json.dumps(record, default=str) + "\n")

    def dump(self, path: Union[str, Path]) -> Path:
        """Write every retained span (and nothing else) as JSONL."""
        path = Path(path)
        with self._lock, open(path, "w", encoding="utf-8") as handle:
            for span in self.spans:
                handle.write(json.dumps(span.to_dict(), default=str) + "\n")
        return path

    def flush(self) -> None:
        """Flush the streamed JSONL file (no-op when not streaming)."""
        with self._lock:
            if self._file is not None and not self._file.closed:
                self._file.flush()

    def close(self) -> None:
        unregister_flush(self)
        with self._lock:
            if self._file is not None:
                self._file.flush()
                self._file.close()
                self._file = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Process-global tracer
# ----------------------------------------------------------------------
_TRACER: Optional[Tracer] = None


def install_tracer(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the process-global target of :func:`trace`."""
    global _TRACER
    _TRACER = tracer
    return tracer


def uninstall_tracer() -> Optional[Tracer]:
    """Remove the global tracer; subsequent trace() calls become no-ops."""
    global _TRACER
    tracer, _TRACER = _TRACER, None
    return tracer


def get_tracer() -> Optional[Tracer]:
    return _TRACER


def trace(name: str, **attrs: Any):
    """Open a span on the global tracer, or a no-op span if none installed."""
    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def read_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a trace JSONL file into raw record dicts (all types)."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
# Distributed trace assembly
# ----------------------------------------------------------------------
TRACE_SCHEMA = "repro.obs.trace/1"


def span_record(
    name: str,
    *,
    trace_id: str,
    parent_id: Optional[int],
    start: float,
    end: float,
    span_id: Optional[int] = None,
    **attrs: Any,
) -> Dict[str, Any]:
    """Build a span dict by hand — for code that measures a section without
    a live :class:`Tracer` (workers timestamp queue wait / batch assembly
    with :func:`time.time` and ship the records over the response queue).
    """
    return {
        "type": "span",
        "span_id": span_id if span_id is not None else new_span_id(),
        "parent_id": parent_id,
        "trace_id": trace_id,
        "name": name,
        "start": start,
        "end": end,
        "duration": max(0.0, end - start),
        "attrs": attrs,
    }


class TraceStore:
    """A directory of per-request trace files, one ``<trace_id>.jsonl`` each.

    The front-end request span and every worker span that carries the same
    ``trace_id`` are appended to the same file, so one ``POST /v1/predict``
    yields exactly one merged trace regardless of how many processes
    touched it. The first line of each file is a ``trace_meta`` record
    naming the schema (``repro.obs.trace/1``); the rest are span records in
    arrival order (readers re-sort by ``start``).
    """

    #: open append handles retained (spans of one request arrive in a
    #: burst — re-opening the file per span dominates the write cost)
    _MAX_HANDLES = 8
    #: max staleness of buffered writes; a live reader (CLI tailing the
    #: directory) sees a trace at most this many seconds late
    _FLUSH_INTERVAL = 0.05

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._handles: "OrderedDict[str, TextIO]" = OrderedDict()
        self._last_flush = 0.0
        # A short-lived process (one-shot batch scoring, tests) may exit
        # inside the 50 ms flush window; without this the last request's
        # spans would be truncated mid-line in the trace file.
        flush_at_exit(self)

    def path_for(self, trace_id: str) -> Path:
        if not _is_hex_id(trace_id):
            raise ValueError(f"malformed trace id: {trace_id!r}")
        return self.root / f"{trace_id}.jsonl"

    def _handle(self, trace_id: str) -> TextIO:
        """The trace's append handle, opened (and meta-stamped) on demand.

        Handles are kept in a small LRU so the burst of spans one request
        produces shares a single open file; writes are flushed on a short
        interval (and on eviction, :meth:`read` and :meth:`close`), so a
        per-span sink pays buffered writes, not one syscall each.
        """
        handle = self._handles.get(trace_id)
        if handle is not None and not handle.closed:
            self._handles.move_to_end(trace_id)
            return handle
        path = self.path_for(trace_id)
        fresh = not path.exists()
        handle = open(path, "a", encoding="utf-8")
        if fresh:
            meta = {
                "type": "trace_meta",
                "schema": TRACE_SCHEMA,
                "trace_id": trace_id,
                "created": time(),
            }
            handle.write(json.dumps(meta) + "\n")
        self._handles[trace_id] = handle
        while len(self._handles) > self._MAX_HANDLES:
            _, oldest = self._handles.popitem(last=False)
            oldest.close()
        return handle

    def add_spans(self, trace_id: str, spans: List[Dict[str, Any]]) -> None:
        """Append span records to the trace's file (creating it if new)."""
        if not spans:
            return
        with self._lock:
            handle = self._handle(trace_id)
            for span in spans:
                handle.write(json.dumps(span, default=str) + "\n")
            now = time()
            if now - self._last_flush >= self._FLUSH_INTERVAL:
                self._last_flush = now
                for open_handle in self._handles.values():
                    open_handle.flush()

    def sink(self, record: Dict[str, Any]) -> None:
        """A :class:`Tracer` ``sink=`` adapter: file spans by trace id."""
        trace_id = record.get("trace_id")
        if trace_id:
            self.add_spans(str(trace_id), [record])

    def read(self, trace_id: str) -> List[Dict[str, Any]]:
        with self._lock:
            for handle in self._handles.values():
                handle.flush()
        path = self.path_for(trace_id)
        if not path.exists():
            raise FileNotFoundError(f"no trace {trace_id} under {self.root}")
        return read_trace(path)

    def trace_ids(self) -> List[str]:
        return sorted(p.stem for p in self.root.glob("*.jsonl"))

    def flush(self) -> None:
        """Flush every retained append handle (atexit-safe, idempotent)."""
        with self._lock:
            for handle in self._handles.values():
                if not handle.closed:
                    handle.flush()

    def close(self) -> None:
        """Close every retained append handle (flushing buffered writes)."""
        unregister_flush(self)
        with self._lock:
            while self._handles:
                _, handle = self._handles.popitem(last=False)
                handle.close()


def _is_hex_id(value: str) -> bool:
    return bool(value) and len(value) <= 64 and all(
        c in "0123456789abcdef" for c in value
    )
