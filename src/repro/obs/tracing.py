"""Span tracing: nested timed sections with attributes, exported as JSONL.

Usage::

    with trace("epoch", epoch=3) as span:
        ...
        span.set(loss=0.42, grad_norm=1.7)

Spans nest through a per-thread stack, so the exported trace reconstructs
the call tree (``parent_id`` linkage) and :mod:`repro.obs.report` can render
a self-time breakdown. When no tracer is installed, :func:`trace` returns a
shared no-op span — the instrumented hot paths pay one global read and one
``is None`` test, nothing else.

A :class:`Tracer` both retains finished spans in memory (``tracer.spans``)
and, when given a path, streams each span as a JSON line the moment it
closes. Spans are written post-order (children before parents), which is
exactly what a streaming writer can do without buffering; readers rebuild
the tree from ids.
"""

from __future__ import annotations

import itertools
import json
import threading
from pathlib import Path
from time import perf_counter, time
from typing import Any, Dict, List, Optional, TextIO, Union

from .lifecycle import flush_at_exit, unregister_flush

_IDS = itertools.count(1)


class Span:
    """One timed section. Context manager; attributes via :meth:`set`."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "attrs", "_tracer")

    def __init__(self, name: str, tracer: "Tracer", attrs: Optional[Dict] = None):
        self.name = name
        self.span_id = next(_IDS)
        self.parent_id: Optional[int] = None
        self.start: float = 0.0
        self.end: float = 0.0
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self._tracer = tracer

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = perf_counter()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared do-nothing span returned by trace() when tracing is off."""

    __slots__ = ()
    name = ""
    attrs: Dict[str, Any] = {}
    duration = 0.0

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans per thread; optionally streams them to a JSONL file.

    Parameters
    ----------
    path:
        Optional JSONL output; each span is written when it closes, plus
        any extra records passed to :meth:`write`.
    keep:
        Retain finished spans in :attr:`spans` (default). Disable for
        long-running servers that only want the streamed file.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None, keep: bool = True):
        self.spans: List[Span] = []
        self._keep = keep
        self._local = threading.local()
        self._lock = threading.Lock()
        self._file: Optional[TextIO] = None
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            self._file = open(self.path, "w", encoding="utf-8")
            self.write({"type": "trace_start", "wall_time": time()})
            # Crash-adjacent exits flush the stream instead of truncating
            # the spans that explain the crash.
            flush_at_exit(self)

    # -- span lifecycle -----------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        return Span(name, self, attrs)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            span.parent_id = stack[-1].span_id
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate mismatched exits rather than corrupting the stack.
        while stack:
            top = stack.pop()
            if top is span:
                break
        self._finish(span)

    def _finish(self, span: Span) -> None:
        with self._lock:
            if self._keep:
                self.spans.append(span)
            if self._file is not None:
                self._file.write(json.dumps(span.to_dict(), default=str) + "\n")

    # -- export ---------------------------------------------------------
    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def write(self, record: Dict[str, Any]) -> None:
        """Append an arbitrary JSON record (e.g. an op profile) to the file."""
        with self._lock:
            if self._file is not None:
                self._file.write(json.dumps(record, default=str) + "\n")

    def dump(self, path: Union[str, Path]) -> Path:
        """Write every retained span (and nothing else) as JSONL."""
        path = Path(path)
        with self._lock, open(path, "w", encoding="utf-8") as handle:
            for span in self.spans:
                handle.write(json.dumps(span.to_dict(), default=str) + "\n")
        return path

    def flush(self) -> None:
        """Flush the streamed JSONL file (no-op when not streaming)."""
        with self._lock:
            if self._file is not None and not self._file.closed:
                self._file.flush()

    def close(self) -> None:
        unregister_flush(self)
        with self._lock:
            if self._file is not None:
                self._file.flush()
                self._file.close()
                self._file = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Process-global tracer
# ----------------------------------------------------------------------
_TRACER: Optional[Tracer] = None


def install_tracer(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the process-global target of :func:`trace`."""
    global _TRACER
    _TRACER = tracer
    return tracer


def uninstall_tracer() -> Optional[Tracer]:
    """Remove the global tracer; subsequent trace() calls become no-ops."""
    global _TRACER
    tracer, _TRACER = _TRACER, None
    return tracer


def get_tracer() -> Optional[Tracer]:
    return _TRACER


def trace(name: str, **attrs: Any):
    """Open a span on the global tracer, or a no-op span if none installed."""
    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def read_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a trace JSONL file into raw record dicts (all types)."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
