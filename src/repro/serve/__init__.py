"""Persistent inference subsystem: checkpoints, sessions, batching, metrics.

The serving stack, bottom-up:

- :mod:`repro.serve.checkpoint` — ``save_detector``/``load_detector``
  round-trip a fitted :class:`repro.FakeDetector` through an on-disk
  directory (also exposed as ``FakeDetector.save``/``FakeDetector.load``).
- :class:`InferenceSession` — runs the full-graph forward once, caches the
  creator/subject GDU states, then scores new articles in O(batch).
- :class:`BatchQueue` — micro-batching request queue for concurrent clients.
- :class:`LRUCache` — text-feature cache keyed on article-text hash.
- :class:`ServingMetrics` — latency/throughput/cache counters with
  ``snapshot()`` reporting.

Typical server::

    detector = FakeDetector.load("checkpoints/politifact")
    session = InferenceSession(detector)
    with BatchQueue(session.predict_articles, max_batch_size=64) as queue:
        prediction = queue.predict(ArticleRequest("id1", "claim text ..."))
    print(session.snapshot())
"""

from ..core.predictions import Prediction, predictions_from_logits
from .batching import BatchQueue, PendingResult, QueueStopped
from .cache import LRUCache
from .checkpoint import CHECKPOINT_FORMAT, load_detector, save_detector
from .metrics import ServingMetrics
from .session import ArticleRequest, InferenceSession

__all__ = [
    "Prediction",
    "predictions_from_logits",
    "InferenceSession",
    "ArticleRequest",
    "BatchQueue",
    "PendingResult",
    "QueueStopped",
    "LRUCache",
    "ServingMetrics",
    "save_detector",
    "load_detector",
    "CHECKPOINT_FORMAT",
]
