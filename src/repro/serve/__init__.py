"""Persistent inference subsystem: checkpoints, sessions, service, batching.

The serving stack, bottom-up:

- :mod:`repro.serve.checkpoint` — ``save_detector``/``load_detector``
  round-trip a fitted :class:`repro.FakeDetector` through an on-disk
  directory (also exposed as ``FakeDetector.save``/``FakeDetector.load``);
  :func:`checkpoint_digest` identifies a build on the wire.
- :class:`InferenceSession` — runs the full-graph forward once, caches the
  creator/subject GDU states, then scores via one keyword-driven
  :meth:`InferenceSession.predict` (new articles and/or known node ids).
- :class:`BatchQueue` — in-process micro-batching queue (the ``serve
  batch`` path).
- :class:`ShardPlan` — community partitioning of the News-HSN plus the
  deterministic article → shard router.
- :mod:`repro.serve.worker` / :class:`PredictionService` — the
  multi-process pool behind ``repro serve http``: model replicas with
  shard-local diffusion context, dynamic batching, admission control and
  the versioned HTTP API (``POST /v1/predict``).
- :mod:`repro.serve.protocol` — the ``repro.serve.request/1`` /
  ``response/1`` / ``error/1`` wire schemas every surface serializes
  through.
- :mod:`repro.serve.loadgen` — load harness: concurrency sweeps,
  p50/p95/p99, saturation point.
- :class:`LRUCache` / :class:`ServingMetrics` — feature cache and
  latency/throughput/cache counters.

Typical service::

    service = PredictionService("checkpoints/politifact", workers=4, shards=2)
    with service:
        print(service.url)          # POST /v1/predict, GET /v1/healthz, /metrics
        ...

Typical embedded session::

    detector = FakeDetector.load("checkpoints/politifact")
    session = InferenceSession(detector)
    predictions = session.predict([ArticleRequest("id1", "claim text ...")])
"""

from ..core.predictions import Prediction, predictions_from_logits
from .batching import BatchQueue, PendingResult, QueueStopped
from .cache import LRUCache
from .checkpoint import (
    CHECKPOINT_FORMAT,
    checkpoint_digest,
    load_detector,
    save_detector,
)
from .metrics import ServingMetrics
from .protocol import (
    ERROR_SCHEMA,
    REQUEST_SCHEMA,
    RESPONSE_REVISION,
    RESPONSE_SCHEMA,
    PredictRequest,
    PredictResponse,
    ProtocolError,
    encode_prediction,
    error_body,
)
from .service import (
    PredictionService,
    ServiceOverloaded,
    ServiceTimeout,
    ServiceUnavailable,
)
from .loadgen import LoadResult, run_load, saturation_point, sweep_concurrency
from .session import ArticleRequest, InferenceSession
from .shard import ShardPlan

__all__ = [
    "Prediction",
    "predictions_from_logits",
    "InferenceSession",
    "ArticleRequest",
    "BatchQueue",
    "PendingResult",
    "QueueStopped",
    "LRUCache",
    "ServingMetrics",
    "save_detector",
    "load_detector",
    "checkpoint_digest",
    "CHECKPOINT_FORMAT",
    "PredictRequest",
    "PredictResponse",
    "ProtocolError",
    "encode_prediction",
    "error_body",
    "REQUEST_SCHEMA",
    "RESPONSE_SCHEMA",
    "RESPONSE_REVISION",
    "ERROR_SCHEMA",
    "ShardPlan",
    "PredictionService",
    "ServiceOverloaded",
    "ServiceTimeout",
    "ServiceUnavailable",
    "LoadResult",
    "run_load",
    "saturation_point",
    "sweep_concurrency",
]
