"""Micro-batching request queue for the inference server.

Concurrent callers submit single items; a worker thread coalesces them into
batches bounded by ``max_batch_size`` and ``max_wait`` seconds, hands each
batch to a user handler (e.g. ``InferenceSession.predict``), and
resolves every caller's :class:`PendingResult`. Batching amortizes the
per-forward overhead of the numpy substrate across simultaneous requests —
the standard dynamic-batching pattern of model servers.

Observability: :meth:`BatchQueue.submit` stamps each
:class:`PendingResult` with its enqueue time, so when the queue is given a
:class:`repro.serve.ServingMetrics` it records the *true* per-request
latency (queue wait + compute) rather than the handler's compute-share
estimate. Each handler invocation also runs inside a ``serve.batch`` trace
span carrying batch size and queue-wait attributes.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, List, Optional, Sequence

from ..obs import trace

_SENTINEL = object()


class QueueStopped(RuntimeError):
    """Raised by :meth:`PendingResult.result` when the queue shut down first."""


class PendingResult:
    """Future-like handle for one submitted item."""

    def __init__(self):
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None
        #: perf_counter timestamp set by BatchQueue.submit; the basis of
        #: true per-request latency accounting.
        self.enqueued_at: Optional[float] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the batch containing this item was processed."""
        if not self._event.wait(timeout):
            raise TimeoutError("request did not complete in time")
        if self._error is not None:
            raise self._error
        return self._value

    # internal -----------------------------------------------------------
    def _resolve(self, value: Any) -> None:
        self._value = value
        self._event.set()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class BatchQueue:
    """Coalesce concurrent single-item submissions into handler batches.

    Parameters
    ----------
    handler:
        ``handler(items) -> results`` with ``len(results) == len(items)``.
    max_batch_size:
        Hard cap on items per handler call.
    max_wait:
        Seconds the worker waits for more items after the first one
        arrives. Larger values trade latency for bigger batches.
    metrics:
        Optional :class:`repro.serve.ServingMetrics`. When set, every
        resolved request records its true latency (enqueue to resolve)
        and queue wait; the handler runs under
        :meth:`ServingMetrics.deferred_latency` so a session sharing the
        same metrics object does not double-record.
    slo:
        Optional :class:`repro.obs.SloMonitor`. The queue feeds it the
        signals only it can see — per-batch max queue wait, the post-batch
        queue depth, and handler success/error counts — and evaluates the
        rules after every batch, so breach events fire while the server
        runs. Pass the same monitor to the :class:`InferenceSession` to add
        the compute-latency signal.
    """

    def __init__(
        self,
        handler: Callable[[List[Any]], Sequence[Any]],
        max_batch_size: int = 32,
        max_wait: float = 0.01,
        metrics=None,
        slo=None,
    ):
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        self.handler = handler
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait
        self.metrics = metrics
        self.slo = slo
        self._queue: "queue.Queue" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        #: number of handler invocations (exposed for tests/benchmarks)
        self.batches_processed = 0

    # ------------------------------------------------------------------
    def start(self) -> "BatchQueue":
        if self._thread is not None and self._thread.is_alive():
            raise RuntimeError("BatchQueue already started")
        self._stopping.clear()
        self._thread = threading.Thread(target=self._run, daemon=True, name="repro-batch-queue")
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Drain-free shutdown: pending items are rejected with QueueStopped."""
        if self._thread is None:
            return
        self._stopping.set()
        self._queue.put(_SENTINEL)
        self._thread.join(timeout)
        self._thread = None
        self._reject_pending()

    def __enter__(self) -> "BatchQueue":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def submit(self, item: Any) -> PendingResult:
        """Enqueue one item; returns a handle to wait on."""
        if self._thread is None or not self._thread.is_alive():
            raise RuntimeError("BatchQueue is not running (call start())")
        pending = PendingResult()
        pending.enqueued_at = time.perf_counter()
        self._queue.put((item, pending))
        return pending

    def predict(self, item: Any, timeout: Optional[float] = None) -> Any:
        """Submit and block for the result (the synchronous client call)."""
        return self.submit(item).result(timeout)

    # ------------------------------------------------------------------
    def _collect_batch(self, first) -> List:
        batch = [first]
        deadline = time.monotonic() + self.max_wait
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                entry = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if entry is _SENTINEL:
                # Preserve shutdown: the main loop re-reads it next round.
                self._queue.put(_SENTINEL)
                break
            batch.append(entry)
        return batch

    def _run(self) -> None:
        while True:
            try:
                entry = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._stopping.is_set():
                    return
                continue
            if entry is _SENTINEL:
                return
            batch = self._collect_batch(entry)
            items = [item for item, _ in batch]
            pendings = [pending for _, pending in batch]
            compute_start = time.perf_counter()
            queue_waits = [
                compute_start - p.enqueued_at
                for p in pendings
                if p.enqueued_at is not None
            ]
            with trace("serve.batch", size=len(items)) as span:
                try:
                    if self.metrics is not None:
                        with self.metrics.deferred_latency():
                            results = self.handler(items)
                    else:
                        results = self.handler(items)
                    if len(results) != len(items):
                        raise RuntimeError(
                            f"handler returned {len(results)} results "
                            f"for {len(items)} items"
                        )
                except BaseException as exc:  # propagate to every waiter
                    for pending in pendings:
                        pending._reject(exc)
                    if self.slo is not None:
                        self.slo.record_error(len(pendings))
                        self.slo.evaluate()
                    continue
                done = time.perf_counter()
                span.set(
                    compute_seconds=done - compute_start,
                    queue_wait_max_seconds=max(queue_waits, default=0.0),
                )
            self.batches_processed += 1
            for pending, result in zip(pendings, results):
                pending._resolve(result)
            if self.metrics is not None:
                resolved = time.perf_counter()
                self.metrics.record_queued(
                    latencies=[
                        resolved - p.enqueued_at
                        for p in pendings
                        if p.enqueued_at is not None
                    ],
                    queue_waits=queue_waits,
                )
            if self.slo is not None:
                self.slo.observe_queue_wait(max(queue_waits, default=0.0))
                self.slo.observe_queue_depth(self._queue.qsize())
                self.slo.record_success(len(pendings))
                self.slo.evaluate()

    def _reject_pending(self) -> None:
        while True:
            try:
                entry = self._queue.get_nowait()
            except queue.Empty:
                return
            if entry is _SENTINEL:
                continue
            entry[1]._reject(QueueStopped("BatchQueue stopped before processing"))
