"""Thread-safe LRU cache for serve-time text features.

Feature extraction (tokenize → bag-of-words → padded index sequence) is the
per-request CPU cost that does not shrink with batching; viral statements
arrive many times, so an LRU keyed on the article-text hash removes repeat
work entirely.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional


class LRUCache:
    """Bounded least-recently-used mapping with hit/miss accounting.

    ``maxsize=0`` disables caching entirely (every ``get`` misses and
    ``put`` is a no-op), which keeps call sites branch-free.
    """

    def __init__(self, maxsize: int = 1024):
        if maxsize < 0:
            raise ValueError("maxsize must be >= 0")
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value (refreshing recency) or ``None``."""
        with self._lock:
            if key not in self._data:
                self.misses += 1
                return None
            self.hits += 1
            self._data.move_to_end(key)
            return self._data[key]

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh a value, evicting the least recently used entry."""
        if self.maxsize == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hit_rate,
            }
