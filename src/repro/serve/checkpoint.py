"""Full-detector persistence: a fitted FakeDetector as an on-disk directory.

A checkpoint captures everything inference needs — config, vocabulary, the
three discriminative word-set extractors, per-entity feature arrays, the
graph index and the model weights — so a server process can
:func:`load_detector` and answer requests without ever seeing the training
corpus. Layout::

    <dir>/detector.json        format tag, config, vocab, extractors, entity ids
    <dir>/arrays.npz           explicit/sequence/label matrices + graph edge lists
    <dir>/model.npz            module state dict (repro.autograd.save_state)
    <dir>/drift_baseline.json  training-corpus drift profile
                               (repro.obs.drift_baseline/1, optional)

Arrays round-trip bit-exactly through ``.npz`` and floats round-trip
exactly through JSON, so a loaded detector reproduces bit-identical
``predict_logits`` output (asserted in tests/test_serve_checkpoint.py).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Union

import numpy as np

from ..autograd import load_arrays, load_state, save_arrays, save_state
from ..core.config import FakeDetectorConfig
from ..core.pipeline import EntityFeatures, GraphIndex, PipelineOutput
from ..text.features import BagOfWordsExtractor
from ..text.vocabulary import Vocabulary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.trainer import FakeDetector

PathLike = Union[str, Path]

CHECKPOINT_FORMAT = "fakedetector-checkpoint/1"

_MANIFEST = "detector.json"
_ARRAYS = "arrays.npz"
_MODEL = "model.npz"
_KINDS = ("article", "creator", "subject")


def save_detector(detector: "FakeDetector", path: PathLike) -> Path:
    """Write a fitted detector to ``path`` (a directory, created if needed)."""
    if detector.model is None or detector.features is None or detector.graph is None:
        raise RuntimeError("cannot save an unfitted FakeDetector")
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)

    features = detector.features
    manifest = {
        "format": CHECKPOINT_FORMAT,
        "config": dataclasses.asdict(detector.config),
        "vocab": features.vocab.to_dict(),
        "extractors": {
            kind: extractor.to_dict()
            for kind, extractor in features.extractors.items()
        },
        "ids": {kind: list(features.by_type(kind).ids) for kind in _KINDS},
    }
    (path / _MANIFEST).write_text(json.dumps(manifest))

    arrays = {}
    for kind in _KINDS:
        entity = features.by_type(kind)
        arrays[f"{kind}.explicit"] = entity.explicit
        arrays[f"{kind}.sequences"] = entity.sequences
        arrays[f"{kind}.labels"] = entity.labels
    for field in dataclasses.fields(GraphIndex):
        arrays[f"graph.{field.name}"] = getattr(detector.graph, field.name)
    save_arrays(arrays, path / _ARRAYS)
    save_state(detector.model, path / _MODEL)

    # Serving-time drift monitoring compares against this profile; it is
    # deliberately outside checkpoint_digest() (which hashes only weights +
    # manifest) so adding it never changes a deployment's identity.
    from ..obs.drift import BaselineProfile

    BaselineProfile.from_detector(detector).save(path)
    return path


def checkpoint_digest(path: PathLike) -> str:
    """Short stable digest identifying a checkpoint's exact weights.

    SHA-256 over ``model.npz`` and ``detector.json`` bytes, truncated to 16
    hex chars — enough to tell two deployments apart. Stamped on every
    ``repro.serve.response/1`` document as ``model_digest`` so clients can
    attribute predictions to the model build that produced them.
    """
    path = Path(path)
    digest = hashlib.sha256()
    for name in (_MODEL, _MANIFEST):
        digest.update((path / name).read_bytes())
    return digest.hexdigest()[:16]


def load_detector(path: PathLike) -> "FakeDetector":
    """Rebuild a fitted detector from a :func:`save_detector` directory."""
    from ..core.model import FakeDetectorModel
    from ..core.trainer import FakeDetector

    path = Path(path)
    manifest_path = path / _MANIFEST
    if not manifest_path.exists():
        raise FileNotFoundError(f"not a detector checkpoint: {path}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(
            f"unsupported checkpoint format {manifest.get('format')!r} "
            f"(expected {CHECKPOINT_FORMAT!r})"
        )

    config = FakeDetectorConfig(**manifest["config"])
    vocab = Vocabulary.from_dict(manifest["vocab"])
    extractors = {
        kind: BagOfWordsExtractor.from_dict(payload)
        for kind, payload in manifest["extractors"].items()
    }
    arrays = load_arrays(path / _ARRAYS)

    def entity(kind: str) -> EntityFeatures:
        ids = [str(eid) for eid in manifest["ids"][kind]]
        return EntityFeatures(
            ids=ids,
            index={eid: i for i, eid in enumerate(ids)},
            explicit=arrays[f"{kind}.explicit"],
            sequences=arrays[f"{kind}.sequences"],
            labels=arrays[f"{kind}.labels"],
        )

    features = PipelineOutput(
        articles=entity("article"),
        creators=entity("creator"),
        subjects=entity("subject"),
        vocab=vocab,
        extractors=extractors,
    )
    graph = GraphIndex(
        **{
            field.name: arrays[f"graph.{field.name}"].astype(np.intp)
            for field in dataclasses.fields(GraphIndex)
        }
    )

    detector = FakeDetector(config)
    detector.features = features
    detector.graph = graph
    detector.model = FakeDetectorModel(
        config,
        explicit_dims={
            kind: features.by_type(kind).explicit.shape[1] for kind in _KINDS
        },
    )
    load_state(detector.model, path / _MODEL)
    detector.model.eval()
    return detector
