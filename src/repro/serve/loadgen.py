"""Load-generation harness for the prediction service.

Replays synthetic traffic against a running :class:`PredictionService` (or
any endpoint speaking ``repro.serve.request/1``) at a configurable
concurrency and reports client-side percentiles:

- :func:`run_load` — ``concurrency`` threads issue ``requests`` POSTs
  round-robin over a payload set, returning a :class:`LoadResult` with
  p50/p95/p99 latency, throughput and the 200/429/error split;
- :func:`sweep_concurrency` — repeats :func:`run_load` over increasing
  concurrency levels and finds the **saturation point**: the first level
  where throughput stops improving by ``min_gain`` (or starts drawing
  429s), i.e. where extra concurrency buys queueing instead of work.

``benchmarks/test_serve_scale.py`` drives this against 1-shard and 2-shard
pools and records the whole sweep to ``results/BENCH_serve_scale.json``.
"""

from __future__ import annotations

import dataclasses
import http.client
import itertools
import json
import socket
import threading
import time
import urllib.parse
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.context import TraceContext, inject
from ..obs.metrics import percentile


__all__ = [
    "LoadResult",
    "run_load",
    "saturation_point",
    "sweep_concurrency",
]


@dataclasses.dataclass
class LoadResult:
    """Client-side view of one constant-concurrency load run."""

    concurrency: int
    requests: int
    ok: int
    rejected: int            # HTTP 429 (admission control)
    errors: int              # transport failures and 5xx
    seconds: float
    throughput_rps: float
    latency_ms: Dict[str, float]   # p50/p95/p99/mean/max over successes
    #: trace ids this run minted (``trace=True`` only) — one per request,
    #: matching the server-side merged trace files.
    trace_ids: List[str] = dataclasses.field(default_factory=list)

    def to_dict(self) -> Dict:
        payload = dataclasses.asdict(self)
        # The id list can be huge; the report only needs the count.
        payload["trace_ids"] = len(self.trace_ids)
        return payload


def _split_url(url: str) -> Tuple[str, int, str]:
    parts = urllib.parse.urlsplit(url)
    if parts.scheme != "http" or parts.hostname is None:
        raise ValueError(f"loadgen needs an http:// URL, got {url!r}")
    return parts.hostname, parts.port or 80, parts.path or "/"


class _Client:
    """One persistent keep-alive connection (per load thread).

    A fresh TCP connect per request would measure the client's socket
    churn, not the service — and would spawn one short-lived server thread
    per request in :class:`http.server.ThreadingHTTPServer`. HTTP/1.1
    keep-alive pins each load thread to one server thread instead.
    """

    def __init__(self, host: str, port: int, timeout: float):
        self._host, self._port, self._timeout = host, port, timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def post(
        self, path: str, body: bytes, headers: Optional[Dict[str, str]] = None
    ) -> int:
        """One POST; returns the HTTP status (transport failures → -1)."""
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
            self._conn.connect()
            # small POSTs each fit one segment; Nagle would hold them back
            # ~40ms against the server's delayed ACK
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        try:
            self._conn.request(
                "POST", path, body=body,
                headers={"Content-Type": "application/json", **(headers or {})},
            )
            reply = self._conn.getresponse()
            reply.read()
            return reply.status
        except (http.client.HTTPException, OSError, TimeoutError):
            self.close()   # drop the broken connection; reconnect next call
            return -1

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None


def run_load(
    url: str,
    payloads: Sequence[Dict],
    *,
    concurrency: int,
    requests: int,
    timeout: float = 30.0,
    trace: bool = False,
) -> LoadResult:
    """Fire ``requests`` POSTs at ``url`` from ``concurrency`` threads.

    ``payloads`` are ``repro.serve.request/1`` documents cycled round-robin;
    each is serialized once up front so the measured latency is wire + server
    time, not JSON encoding. With ``trace=True`` every request carries a
    fresh client-minted ``traceparent`` header, and the minted trace ids
    come back on :attr:`LoadResult.trace_ids` so a caller can pull the
    server-side merged traces afterwards.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if not payloads:
        raise ValueError("need at least one payload")
    host, port, path = _split_url(url)
    bodies = [json.dumps(p).encode("utf-8") for p in payloads]
    body_cycle = itertools.cycle(bodies)
    work = [next(body_cycle) for _ in range(requests)]
    trace_headers: List[Optional[Dict[str, str]]] = [None] * len(work)
    trace_ids: List[str] = []
    if trace:
        contexts = [TraceContext.new() for _ in work]
        trace_headers = [inject(ctx, {}) for ctx in contexts]
        trace_ids = [ctx.trace_id for ctx in contexts]

    counters = {"ok": 0, "rejected": 0, "errors": 0}
    latencies: List[float] = []
    lock = threading.Lock()
    cursor = itertools.count()

    def client() -> None:
        connection = _Client(host, port, timeout)
        try:
            while True:
                index = next(cursor)
                if index >= len(work):
                    return
                begin = time.perf_counter()
                status = connection.post(
                    path, work[index], headers=trace_headers[index]
                )
                elapsed = time.perf_counter() - begin
                with lock:
                    if status == 200:
                        counters["ok"] += 1
                        latencies.append(elapsed)
                    elif status == 429:
                        counters["rejected"] += 1
                    else:
                        counters["errors"] += 1
        finally:
            connection.close()

    threads = [
        threading.Thread(target=client, daemon=True, name=f"repro-loadgen-{i}")
        for i in range(concurrency)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - start

    ordered = sorted(latencies)
    latency_ms = {
        "p50": 1e3 * percentile(ordered, 0.50),
        "p95": 1e3 * percentile(ordered, 0.95),
        "p99": 1e3 * percentile(ordered, 0.99),
        "mean": 1e3 * (sum(ordered) / len(ordered)) if ordered else 0.0,
        "max": 1e3 * ordered[-1] if ordered else 0.0,
    }
    return LoadResult(
        concurrency=concurrency,
        requests=requests,
        ok=counters["ok"],
        rejected=counters["rejected"],
        errors=counters["errors"],
        seconds=seconds,
        throughput_rps=counters["ok"] / seconds if seconds > 0 else 0.0,
        latency_ms=latency_ms,
        trace_ids=trace_ids,
    )


def saturation_point(
    results: Sequence[LoadResult], min_gain: float = 0.10
) -> Optional[Dict]:
    """The first level where extra concurrency stopped paying off.

    Saturation is declared at level ``i`` when its throughput improves on
    level ``i-1`` by less than ``min_gain`` (fractional), or when admission
    control started rejecting (any 429 seen). Returns ``None`` when the
    sweep never saturated (every step kept scaling cleanly).
    """
    for i, result in enumerate(results):
        if result.rejected > 0:
            return {
                "concurrency": result.concurrency,
                "throughput_rps": result.throughput_rps,
                "reason": "admission_control",
            }
        if i > 0:
            previous = results[i - 1].throughput_rps
            if previous > 0 and (
                result.throughput_rps < previous * (1.0 + min_gain)
            ):
                return {
                    "concurrency": result.concurrency,
                    "throughput_rps": result.throughput_rps,
                    "reason": "throughput_plateau",
                }
    return None


def sweep_concurrency(
    url: str,
    payloads: Sequence[Dict],
    *,
    levels: Sequence[int] = (1, 2, 4, 8, 16),
    requests_per_level: int = 64,
    timeout: float = 30.0,
    min_gain: float = 0.10,
) -> Dict:
    """Run :func:`run_load` per level; report the sweep + saturation point."""
    results = [
        run_load(
            url,
            payloads,
            concurrency=level,
            requests=requests_per_level,
            timeout=timeout,
        )
        for level in levels
    ]
    return {
        "levels": [r.to_dict() for r in results],
        "saturation": saturation_point(results, min_gain=min_gain),
        "peak_throughput_rps": max(r.throughput_rps for r in results),
    }
