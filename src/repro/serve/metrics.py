"""Serving observability: request/batch/cache counters and latency stats.

One :class:`ServingMetrics` instance rides along an
:class:`repro.serve.InferenceSession`; every prediction batch records its
size and wall time, and :meth:`snapshot` renders the operational picture
(throughput, latency percentiles, micro-batch efficiency, cache hit rate)
as a plain dict ready for JSON export.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict

#: Bounded window of per-request latencies kept for percentile estimates.
LATENCY_WINDOW = 4096


class ServingMetrics:
    """Thread-safe counters for a serving session."""

    def __init__(self, latency_window: int = LATENCY_WINDOW):
        self._lock = threading.Lock()
        self._started = time.perf_counter()
        self.requests = 0
        self.batches = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.total_seconds = 0.0
        self._latencies: Deque[float] = deque(maxlen=latency_window)

    # ------------------------------------------------------------------
    def record_batch(self, size: int, seconds: float) -> None:
        """Account one prediction batch of ``size`` requests."""
        if size <= 0:
            return
        per_request = seconds / size
        with self._lock:
            self.requests += size
            self.batches += 1
            self.total_seconds += seconds
            self._latencies.extend([per_request] * size)

    def record_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    # ------------------------------------------------------------------
    @staticmethod
    def _percentile(sorted_values, fraction: float) -> float:
        if not sorted_values:
            return 0.0
        idx = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
        return sorted_values[idx]

    def snapshot(self) -> Dict[str, float]:
        """Point-in-time report of everything the session has served."""
        with self._lock:
            elapsed = time.perf_counter() - self._started
            latencies = sorted(self._latencies)
            cache_total = self.cache_hits + self.cache_misses
            return {
                "requests": self.requests,
                "batches": self.batches,
                "mean_batch_size": self.requests / self.batches if self.batches else 0.0,
                "throughput_rps": self.requests / elapsed if elapsed > 0 else 0.0,
                "uptime_seconds": elapsed,
                "busy_seconds": self.total_seconds,
                "latency_mean_ms": 1e3 * sum(latencies) / len(latencies) if latencies else 0.0,
                "latency_p50_ms": 1e3 * self._percentile(latencies, 0.50),
                "latency_p95_ms": 1e3 * self._percentile(latencies, 0.95),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_hit_rate": self.cache_hits / cache_total if cache_total else 0.0,
            }

    def render(self) -> str:
        """Human-readable one-per-line snapshot (the CLI footer)."""
        snap = self.snapshot()
        lines = ["serving metrics:"]
        for key, value in snap.items():
            if isinstance(value, float):
                lines.append(f"  {key:18s} {value:.4f}")
            else:
                lines.append(f"  {key:18s} {value}")
        return "\n".join(lines)
