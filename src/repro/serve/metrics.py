"""Serving observability: request/batch/cache counters and latency stats.

One :class:`ServingMetrics` instance rides along an
:class:`repro.serve.InferenceSession`. Since the ``repro.obs`` subsystem
landed this class is a thin facade over a
:class:`repro.obs.metrics.MetricsRegistry` — counters, the bounded latency
window and the percentile math all come from the shared implementation —
while :meth:`snapshot` keeps its historical keys, so existing dashboards
and tests read the same report.

Latency accounting distinguishes two paths:

- **direct** calls (``InferenceSession.predict`` with no queue):
  every request in the batch is charged the compute share
  ``seconds / size``, which *is* its latency because nothing waited;
- **queued** calls (:class:`repro.serve.BatchQueue` with ``metrics=``):
  the queue stamps each request's enqueue time and reports the true
  end-to-end latency (queue wait + compute) per request, replacing the
  compute-share approximation. The handler's in-batch ``record_batch``
  runs under :meth:`deferred_latency` so the window never double-counts.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Dict, Optional, Sequence

from ..obs.metrics import MetricsRegistry, percentile

#: Bounded window of per-request latencies kept for percentile estimates.
LATENCY_WINDOW = 4096


class ServingMetrics:
    """Thread-safe counters for a serving session."""

    def __init__(
        self,
        latency_window: int = LATENCY_WINDOW,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.registry = registry or MetricsRegistry()
        self._started = time.perf_counter()
        self._requests = self.registry.counter("serve.requests")
        self._batches = self.registry.counter("serve.batches")
        self._busy = self.registry.counter("serve.busy_seconds")
        self._cache_hits = self.registry.counter("serve.cache_hits")
        self._cache_misses = self.registry.counter("serve.cache_misses")
        self._latency = self.registry.histogram(
            "serve.latency_seconds", window=latency_window
        )
        self._queue_wait = self.registry.histogram(
            "serve.queue_wait_seconds", window=latency_window
        )
        self._local = threading.local()

    # -- counter views (historical attribute API) ----------------------
    @property
    def requests(self) -> int:
        return int(self._requests.value)

    @property
    def batches(self) -> int:
        return int(self._batches.value)

    @property
    def cache_hits(self) -> int:
        return int(self._cache_hits.value)

    @property
    def cache_misses(self) -> int:
        return int(self._cache_misses.value)

    @property
    def total_seconds(self) -> float:
        return self._busy.value

    # ------------------------------------------------------------------
    def record_batch(self, size: int, seconds: float) -> None:
        """Account one prediction batch of ``size`` requests.

        Outside a queue the per-request latency is the compute share
        ``seconds / size``; under :meth:`deferred_latency` the window is
        left to the caller, who knows the true per-request waits.
        """
        if size <= 0:
            return
        self._requests.inc(size)
        self._batches.inc(1)
        self._busy.inc(seconds)
        if not getattr(self._local, "defer_latency", False):
            self._latency.observe_many([seconds / size] * size)

    @contextlib.contextmanager
    def deferred_latency(self):
        """Suppress record_batch's synthetic latency entries on this thread.

        :class:`repro.serve.BatchQueue` wraps handler invocations in this so
        it can record the true enqueue-to-resolve latency per request
        afterwards, instead of the handler's compute-share estimate.
        """
        self._local.defer_latency = True
        try:
            yield
        finally:
            self._local.defer_latency = False

    def record_queued(
        self, latencies: Sequence[float], queue_waits: Sequence[float]
    ) -> None:
        """True per-request latency (queue wait + compute) for one batch."""
        self._latency.observe_many(latencies)
        self._queue_wait.observe_many(queue_waits)

    def record_cache(self, hit: bool) -> None:
        (self._cache_hits if hit else self._cache_misses).inc(1)

    # ------------------------------------------------------------------
    @staticmethod
    def _percentile(sorted_values, fraction: float) -> float:
        # Retained alias; the shared implementation lives in repro.obs.
        return percentile(sorted_values, fraction)

    def snapshot(self) -> Dict[str, float]:
        """Point-in-time report of everything the session has served."""
        elapsed = time.perf_counter() - self._started
        latency = self._latency.snapshot()
        queue_wait = self._queue_wait.snapshot()
        requests = self.requests
        batches = self.batches
        cache_hits = self.cache_hits
        cache_misses = self.cache_misses
        cache_total = cache_hits + cache_misses
        return {
            "requests": requests,
            "batches": batches,
            "mean_batch_size": requests / batches if batches else 0.0,
            "throughput_rps": requests / elapsed if elapsed > 0 else 0.0,
            "uptime_seconds": elapsed,
            "busy_seconds": self.total_seconds,
            "latency_mean_ms": 1e3 * latency["mean"],
            "latency_p50_ms": 1e3 * latency["p50"],
            "latency_p95_ms": 1e3 * latency["p95"],
            "cache_hits": cache_hits,
            "cache_misses": cache_misses,
            "cache_hit_rate": cache_hits / cache_total if cache_total else 0.0,
            "queued_requests": int(queue_wait["count"]),
            "queue_wait_mean_ms": 1e3 * queue_wait["mean"],
            "queue_wait_p50_ms": 1e3 * queue_wait["p50"],
            "queue_wait_p95_ms": 1e3 * queue_wait["p95"],
        }

    def render(self) -> str:
        """Human-readable one-per-line snapshot (the CLI footer)."""
        snap = self.snapshot()
        lines = ["serving metrics:"]
        for key, value in snap.items():
            if isinstance(value, float):
                lines.append(f"  {key:18s} {value:.4f}")
            else:
                lines.append(f"  {key:18s} {value}")
        return "\n".join(lines)
