"""Versioned wire schemas for the prediction service.

Every prediction surface — ``POST /v1/predict``, ``repro infer`` and
``repro serve batch`` — serializes through the same two documents instead
of ad-hoc dicts, so clients can pin a schema version and the server can
reject what it does not speak:

- ``repro.serve.request/1`` — a batch of article payloads plus options::

      {"schema": "repro.serve.request/1",
       "articles": [{"article_id": "a1", "text": "claim ...",
                     "creator_id": "creator_3", "subject_ids": ["s_1"]}],
       "return_proba": false}

- ``repro.serve.response/1`` — aligned predictions plus provenance::

      {"schema": "repro.serve.response/1",
       "model_digest": "2f6ab91c03d4e5f6",
       "predictions": [{"entity_id": "a1", "class_index": 4,
                        "label": "Mostly True", "shard": 0}],
       "timing": {"total_ms": 3.1, "compute_ms": 1.4},
       "meta": {"revision": 2, "request_id": "9f2...", "trace_id": "43f..."}}

  The ``meta`` block is an *additive* revision-2 extension: it carries the
  request/trace correlation ids and a ``revision`` marker. Revision-1
  clients that ignore unknown keys keep parsing unchanged, and revision-2
  decoders accept documents without any ``meta`` block at all.

- ``repro.serve.error/1`` — the structured error body every non-2xx HTTP
  reply carries (``code`` is machine-readable: ``bad_schema``,
  ``bad_request``, ``overloaded``, ``unavailable``, ``timeout``).

Decoding raises :class:`ProtocolError` with the matching error ``code``;
:func:`error_body` turns one into the error document. Unknown schema
versions are rejected, never guessed at.

Besides the HTTP documents, the parent↔worker queues carry a small
control plane (:data:`PROFILE_CONTROL`): the profiler messages
``("profile_start", hz)`` / ``("profile_snapshot", req_id)`` /
``("profile_stop",)`` ride the per-worker request queues, and snapshots
come back as ``("profile_result", worker_id, req_id, payload)`` where
``payload`` is a ``repro.obs.profile/1`` document (or ``None`` when the
worker has no armed profiler). Control messages serialize FIFO behind
in-flight predict batches and never count against the admission budget.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..core.predictions import Prediction
from .session import ArticleRequest

#: Schema tags understood by this build.
REQUEST_SCHEMA = "repro.serve.request/1"
RESPONSE_SCHEMA = "repro.serve.response/1"
ERROR_SCHEMA = "repro.serve.error/1"

#: Minor revision of the response document within schema version 1.
#: Revision 2 added the additive ``meta`` block (request_id / trace_id).
RESPONSE_REVISION = 2

#: Profiler control-plane message kinds on the parent↔worker queues (see
#: the module docstring); workers treat any non-``predict`` kind as
#: control and never batch it.
PROFILE_CONTROL = ("profile_start", "profile_snapshot", "profile_stop")


class ProtocolError(ValueError):
    """A malformed or version-incompatible wire document."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


def error_body(code: str, message: str, **detail) -> Dict:
    """The ``repro.serve.error/1`` document for one failure."""
    payload: Dict = {
        "schema": ERROR_SCHEMA,
        "error": {"code": code, "message": message},
    }
    if detail:
        payload["error"]["detail"] = dict(detail)
    return payload


def _require_schema(payload: Dict, expected: str) -> None:
    if not isinstance(payload, dict):
        raise ProtocolError("bad_request", "document must be a JSON object")
    schema = payload.get("schema")
    if schema != expected:
        raise ProtocolError(
            "bad_schema",
            f"unsupported schema {schema!r} (this server speaks {expected!r})",
        )


@dataclasses.dataclass
class PredictRequest:
    """One decoded ``repro.serve.request/1`` document."""

    articles: List[ArticleRequest]
    return_proba: bool = False

    def to_dict(self) -> Dict:
        return {
            "schema": REQUEST_SCHEMA,
            "articles": [
                {
                    "article_id": a.article_id,
                    "text": a.text,
                    "creator_id": a.creator_id,
                    "subject_ids": list(a.subject_ids),
                }
                for a in self.articles
            ],
            "return_proba": bool(self.return_proba),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "PredictRequest":
        _require_schema(payload, REQUEST_SCHEMA)
        raw_articles = payload.get("articles")
        if not isinstance(raw_articles, list) or not raw_articles:
            raise ProtocolError(
                "bad_request", "request needs a non-empty 'articles' list"
            )
        articles = []
        for i, raw in enumerate(raw_articles):
            if not isinstance(raw, dict) or "article_id" not in raw:
                raise ProtocolError(
                    "bad_request", f"articles[{i}] must be an object with 'article_id'"
                )
            articles.append(ArticleRequest.from_dict(raw))
        ids = [a.article_id for a in articles]
        if len(set(ids)) != len(ids):
            raise ProtocolError("bad_request", "duplicate article ids in request")
        return cls(
            articles=articles, return_proba=bool(payload.get("return_proba", False))
        )


def encode_prediction(
    prediction: Prediction, shard: Optional[int] = None
) -> Dict:
    """One prediction as its wire object (proba only when computed)."""
    payload = prediction.to_dict()
    if shard is not None:
        payload["shard"] = int(shard)
    return payload


@dataclasses.dataclass
class PredictResponse:
    """One decoded/deco-dable ``repro.serve.response/1`` document.

    ``predictions`` holds wire objects (plain dicts), not
    :class:`Prediction` records, so a response can round-trip through JSON
    without loss and the decoder needs no numpy.
    """

    predictions: List[Dict]
    model_digest: str = ""
    timing: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: Revision-2 correlation ids (``request_id``, ``trace_id``, ...).
    #: ``None`` values are dropped at encode time.
    meta: Dict = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict:
        meta = {k: v for k, v in self.meta.items() if v is not None}
        meta["revision"] = RESPONSE_REVISION
        return {
            "schema": RESPONSE_SCHEMA,
            "model_digest": self.model_digest,
            "predictions": list(self.predictions),
            "timing": {k: float(v) for k, v in self.timing.items()},
            "meta": meta,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "PredictResponse":
        _require_schema(payload, RESPONSE_SCHEMA)
        predictions = payload.get("predictions")
        if not isinstance(predictions, list):
            raise ProtocolError("bad_request", "response needs a 'predictions' list")
        for i, raw in enumerate(predictions):
            if not isinstance(raw, dict) or "entity_id" not in raw:
                raise ProtocolError(
                    "bad_request",
                    f"predictions[{i}] must be an object with 'entity_id'",
                )
        meta = payload.get("meta")
        if meta is not None and not isinstance(meta, dict):
            raise ProtocolError("bad_request", "'meta' must be an object")
        return cls(
            predictions=list(predictions),
            model_digest=str(payload.get("model_digest", "")),
            timing=dict(payload.get("timing", {})),
            # Revision-1 documents have no meta block; absence is valid.
            meta=dict(meta or {}),
        )

    @classmethod
    def from_predictions(
        cls,
        predictions: Sequence[Prediction],
        *,
        model_digest: str = "",
        shards: Optional[Sequence[Optional[int]]] = None,
        timing: Optional[Dict[str, float]] = None,
    ) -> "PredictResponse":
        """Build the wire document from in-process :class:`Prediction`s."""
        if shards is None:
            shards = [None] * len(predictions)
        return cls(
            predictions=[
                encode_prediction(p, shard=s) for p, s in zip(predictions, shards)
            ],
            model_digest=model_digest,
            timing=dict(timing or {}),
        )
